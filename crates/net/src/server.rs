//! The server side: a threaded accept loop exporting one [`WireService`].
//!
//! One OS thread per connection (bounded by
//! [`ServerConfig::max_connections`]), per-connection read/write
//! timeouts, and a graceful [`ServerHandle::shutdown`] for tests and
//! daemons. The conversation on every connection is:
//!
//! ```text
//! client: Hello            server: Hello
//! client: ExportDtd ""     server: ExportDtd <dtd text>
//! client: Query <q|"">     server: Answer <xml>  |  Err <kind, detail>
//! …repeat…                 (connection closes on EOF or timeout)
//! ```

use crate::admission::{AdmissionConfig, TokenBucket};
use crate::error::NetError;
use crate::msg::Msg;
use mix_obs::{Counter, Histogram, Registry};
use std::collections::HashMap;
use std::io::BufWriter;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A fault the service wants forwarded to the client as an `Err` message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFault {
    /// Stable machine-readable label (the mediator uses
    /// `SourceError::kind()` strings here).
    pub kind: String,
    /// Human-readable detail.
    pub msg: String,
}

impl WireFault {
    /// Builds a fault.
    pub fn new(kind: impl Into<String>, msg: impl Into<String>) -> WireFault {
        WireFault {
            kind: kind.into(),
            msg: msg.into(),
        }
    }
}

/// What a server exports: a DTD and answers, both as text. `mix-mediator`
/// implements this for any of its `Wrapper`s (including stacked-view
/// wrappers), keeping this crate free of mediator types.
pub trait WireService: Send + Sync + 'static {
    /// The exported DTD in the paper's compact notation (what
    /// `mix_dtd::Dtd::to_string` emits and `parse_compact` reads back).
    fn export_dtd(&self) -> String;

    /// Answers a query given as XMAS text; `None` requests the full
    /// exported document (`fetch`). Returns the answer as XML text.
    fn answer(&self, query: Option<&str>) -> Result<String, WireFault>;

    /// The service's observability snapshot as `mix-obs/1` JSON — what a
    /// [`crate::msg::Msg::Stats`] request returns. The default (`None`)
    /// makes the server answer `Err { kind: "unsupported" }`, so plain
    /// services need not know about observability at all.
    fn stats(&self) -> Option<String> {
        None
    }
}

/// Server knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Concurrent connections served; excess connections are turned away
    /// with an `Err { kind: "unavailable" }` and closed.
    pub max_connections: usize,
    /// Per-connection read *and* write deadline. An idle client holds a
    /// thread for at most this long.
    pub io_timeout: Duration,
    /// Per-client admission control: every connection gets its own
    /// [`TokenBucket`] with these knobs, and a `Query` that finds it
    /// empty is answered with [`Msg::Throttled`] instead of being
    /// dispatched. `None` (the default) admits everything.
    pub admission: Option<AdmissionConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            io_timeout: Duration::from_secs(30),
            admission: None,
        }
    }
}

/// The live connections of a running server, keyed by an admission
/// counter. Handler threads deregister themselves on exit; shutdown
/// closes every registered socket, which doubles as the "daemon kill"
/// signal — blocked reads in handlers return immediately.
type ConnTable = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// Server-side traffic and lifecycle instruments, resolved once against
/// one [`Registry`] ([`Registry::noop`] unless
/// [`Server::with_registry`] is called) and cloned into every handler
/// thread.
#[derive(Clone)]
struct NetInstruments {
    registry: Registry,
    conns_opened: Counter,
    conns_closed: Counter,
    conns_refused: Counter,
    frames_in: Counter,
    frames_out: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    deadline_expiries: Counter,
    requests_shed: Counter,
    rpc_latency: Histogram,
}

impl NetInstruments {
    fn new(registry: &Registry) -> NetInstruments {
        NetInstruments {
            registry: registry.clone(),
            conns_opened: registry.counter("net_connections_opened_total"),
            conns_closed: registry.counter("net_connections_closed_total"),
            conns_refused: registry.counter("net_connections_refused_total"),
            frames_in: registry.counter("net_frames_in_total"),
            frames_out: registry.counter("net_frames_out_total"),
            bytes_in: registry.counter("net_bytes_in_total"),
            bytes_out: registry.counter("net_bytes_out_total"),
            deadline_expiries: registry.counter("net_deadline_expiries_total"),
            requests_shed: registry.counter("net_requests_shed_total"),
            rpc_latency: registry.histogram("net_rpc_latency_ns"),
        }
    }

    fn read(&self, msg: &Msg) {
        self.frames_in.inc();
        self.bytes_in.add(msg.wire_size());
    }

    fn wrote(&self, msg: &Msg) {
        self.frames_out.inc();
        self.bytes_out.add(msg.wire_size());
    }
}

/// A bound, not-yet-running server.
pub struct Server<S: WireService> {
    listener: TcpListener,
    service: Arc<S>,
    config: ServerConfig,
    obs: NetInstruments,
}

/// A running server spawned on a background thread.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    conns: ConnTable,
    join: Option<JoinHandle<()>>,
}

impl<S: WireService> Server<S> {
    /// Binds `addr` (use port 0 for an OS-assigned port, then read
    /// [`Server::local_addr`]).
    pub fn bind(addr: &str, service: Arc<S>, config: ServerConfig) -> Result<Server<S>, NetError> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            service,
            config,
            obs: NetInstruments::new(&Registry::noop()),
        })
    }

    /// Records connection lifecycle, frame/byte traffic, deadline
    /// expiries, and per-RPC serve latency into `registry` (all under
    /// `net_*` metric names). Without this call every instrument is a
    /// no-op.
    pub fn with_registry(mut self, registry: &Registry) -> Server<S> {
        self.obs = NetInstruments::new(registry);
        self
    }

    /// The address actually bound.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Runs the accept loop on the calling thread, forever (until the
    /// process exits). This is what `mixctl serve-source` calls.
    pub fn run(self) -> Result<(), NetError> {
        let stop = Arc::new(AtomicBool::new(false));
        let conns: ConnTable = Arc::new(Mutex::new(HashMap::new()));
        self.accept_loop(&stop, &conns);
        Ok(())
    }

    /// Runs the accept loop on a background thread and returns a handle
    /// that can shut it down — the daemon form used by benches and tests.
    pub fn spawn(self) -> Result<ServerHandle, NetError> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: ConnTable = Arc::new(Mutex::new(HashMap::new()));
        let loop_stop = Arc::clone(&stop);
        let loop_conns = Arc::clone(&conns);
        let join = std::thread::spawn(move || self.accept_loop(&loop_stop, &loop_conns));
        Ok(ServerHandle {
            addr,
            stop,
            conns,
            join: Some(join),
        })
    }

    fn accept_loop(self, stop: &AtomicBool, conns: &ConnTable) {
        let next_id = AtomicU64::new(0);
        for stream in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // connection cap: admit-or-refuse is decided here, so a slow
            // client can never queue unbounded threads
            let id = next_id.fetch_add(1, Ordering::SeqCst);
            {
                let mut live = lock(conns);
                if live.len() >= self.config.max_connections {
                    drop(live);
                    self.obs.conns_refused.inc();
                    refuse(stream, self.config);
                    continue;
                }
                if let Ok(clone) = stream.try_clone() {
                    live.insert(id, clone);
                }
            }
            self.obs.conns_opened.inc();
            let service = Arc::clone(&self.service);
            let config = self.config;
            let conns = Arc::clone(conns);
            let obs = self.obs.clone();
            std::thread::spawn(move || {
                // errors on one connection (disconnects, timeouts,
                // protocol garbage) end that connection only
                let _ = handle_connection(stream, service.as_ref(), config, &obs);
                obs.conns_closed.inc();
                lock(&conns).remove(&id);
            });
        }
    }
}

fn lock(conns: &ConnTable) -> std::sync::MutexGuard<'_, HashMap<u64, TcpStream>> {
    conns
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl ServerHandle {
    /// The served address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops the daemon: no new connections are accepted and every live
    /// connection's socket is closed, so in-flight exchanges fail on the
    /// client side — the loopback stand-in for killing the process.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(join) = self.join.take() else { return };
        self.stop.store(true, Ordering::SeqCst);
        // unblock the blocking accept with one throwaway connection
        let _ = TcpStream::connect(self.addr);
        let _ = join.join();
        // kill live connections; blocked handler reads return immediately
        for (_, s) in lock(&self.conns).drain() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Turn away an over-cap connection with a polite `Err`.
fn refuse(stream: TcpStream, config: ServerConfig) {
    let _ = stream.set_write_timeout(Some(config.io_timeout));
    let mut w = BufWriter::new(stream);
    let _ = Msg::Err {
        kind: "unavailable".into(),
        msg: "connection limit reached".into(),
    }
    .write_to(&mut w);
}

/// One connection's conversation: handshake, then request/response until
/// EOF, timeout, or a protocol violation.
fn handle_connection(
    stream: TcpStream,
    service: &dyn WireService,
    config: ServerConfig,
    obs: &NetInstruments,
) -> Result<(), NetError> {
    stream.set_read_timeout(Some(config.io_timeout))?;
    stream.set_write_timeout(Some(config.io_timeout))?;
    stream.set_nodelay(true)?;
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);
    // per-client admission: this connection's private budget
    let bucket = config.admission.map(TokenBucket::new);

    match Msg::read_from(&mut reader)? {
        Msg::Hello => {
            obs.read(&Msg::Hello);
            Msg::Hello.write_to(&mut writer)?;
            obs.wrote(&Msg::Hello);
        }
        other => {
            let e = Msg::Err {
                kind: "protocol".into(),
                msg: format!("expected Hello, got {:?}", other.msg_type()),
            };
            e.write_to(&mut writer)?;
            return Err(NetError::protocol("handshake violation"));
        }
    }

    loop {
        let msg = match Msg::read_from(&mut reader) {
            Ok(m) => m,
            // EOF/timeout/reset: the client is done (or gone). A timeout
            // is a deadline expiry and is counted as one.
            Err(NetError::Io(e)) => {
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    obs.deadline_expiries.inc();
                }
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        obs.read(&msg);
        let started = obs.registry.now_ns();
        let reply = match msg {
            Msg::ExportDtd(_) => Msg::ExportDtd(service.export_dtd()),
            // only the data plane is admission-gated; handshakes, DTD
            // exports, and stats probes always go through
            Msg::Query(q) => match bucket.as_ref().map(TokenBucket::try_acquire) {
                Some(Err(retry_after_ms)) => {
                    obs.requests_shed.inc();
                    Msg::Throttled { retry_after_ms }
                }
                _ => {
                    let query = if q.is_empty() { None } else { Some(q.as_str()) };
                    match service.answer(query) {
                        Ok(xml) => Msg::Answer(xml),
                        Err(fault) => Msg::Err {
                            kind: fault.kind,
                            msg: fault.msg,
                        },
                    }
                }
            },
            Msg::Stats(_) => match service.stats() {
                Some(json) => Msg::Stats(json),
                None => Msg::Err {
                    kind: "unsupported".into(),
                    msg: "this service exports no statistics".into(),
                },
            },
            Msg::Hello => Msg::Hello, // a re-handshake is harmless
            Msg::Answer(_) | Msg::Err { .. } | Msg::Throttled { .. } => {
                let e = Msg::Err {
                    kind: "protocol".into(),
                    msg: "clients send ExportDtd/Query, not Answer/Err/Throttled".into(),
                };
                e.write_to(&mut writer)?;
                return Err(NetError::protocol("client sent a server-only message"));
            }
        };
        reply.write_to(&mut writer)?;
        obs.wrote(&reply);
        obs.rpc_latency
            .observe(obs.registry.now_ns().saturating_sub(started));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientConfig, Connection};

    /// A service echoing canned text — protocol-level tests only; the
    /// real DTD/query round-trips live in `mix-mediator`.
    struct Echo;

    impl WireService for Echo {
        fn export_dtd(&self) -> String {
            "{<r : a*> <a : PCDATA>}".into()
        }

        fn answer(&self, query: Option<&str>) -> Result<String, WireFault> {
            match query {
                None => Ok("<r><a>1</a><a>2</a></r>".into()),
                Some("boom") => Err(WireFault::new("unavailable", "scripted outage")),
                Some(q) => Ok(format!("<echo>{q}</echo>")),
            }
        }
    }

    fn spawn_echo(config: ServerConfig) -> ServerHandle {
        Server::bind("127.0.0.1:0", Arc::new(Echo), config)
            .expect("bind")
            .spawn()
            .expect("spawn")
    }

    #[test]
    fn handshake_dtd_query_and_fault() {
        let h = spawn_echo(ServerConfig::default());
        let mut c =
            Connection::connect(&h.addr().to_string(), &ClientConfig::default()).expect("connect");
        assert_eq!(
            c.request(Msg::ExportDtd(String::new())).unwrap(),
            Msg::ExportDtd("{<r : a*> <a : PCDATA>}".into())
        );
        assert_eq!(
            c.request(Msg::Query(String::new())).unwrap(),
            Msg::Answer("<r><a>1</a><a>2</a></r>".into())
        );
        match c.request(Msg::Query("boom".into())) {
            Err(NetError::Remote { kind, msg }) => {
                assert_eq!(kind, "unavailable");
                assert_eq!(msg, "scripted outage");
            }
            other => panic!("expected remote fault, got {other:?}"),
        }
        // the connection survives a remote fault: it was an answer, not a
        // transport failure
        assert_eq!(
            c.request(Msg::Query("q".into())).unwrap(),
            Msg::Answer("<echo>q</echo>".into())
        );
        h.shutdown();
    }

    /// Echo plus a canned stats snapshot.
    struct WithStats;

    impl WireService for WithStats {
        fn export_dtd(&self) -> String {
            "{<r : a*> <a : PCDATA>}".into()
        }

        fn answer(&self, _query: Option<&str>) -> Result<String, WireFault> {
            Ok("<r/>".into())
        }

        fn stats(&self) -> Option<String> {
            Some(r#"{"schema":"mix-obs/1"}"#.into())
        }
    }

    #[test]
    fn stats_request_returns_snapshot_or_unsupported() {
        // a service without stats answers with an `unsupported` fault…
        let h = spawn_echo(ServerConfig::default());
        let mut c =
            Connection::connect(&h.addr().to_string(), &ClientConfig::default()).expect("connect");
        match c.request(Msg::Stats(String::new())) {
            Err(NetError::Remote { kind, .. }) => assert_eq!(kind, "unsupported"),
            other => panic!("expected unsupported fault, got {other:?}"),
        }
        h.shutdown();
        // …a service with stats returns the snapshot verbatim
        let h = Server::bind("127.0.0.1:0", Arc::new(WithStats), ServerConfig::default())
            .unwrap()
            .spawn()
            .unwrap();
        let mut c =
            Connection::connect(&h.addr().to_string(), &ClientConfig::default()).expect("connect");
        assert_eq!(
            c.request(Msg::Stats(String::new())).unwrap(),
            Msg::Stats(r#"{"schema":"mix-obs/1"}"#.into())
        );
        h.shutdown();
    }

    #[test]
    fn instrumented_server_counts_connections_frames_and_bytes() {
        let registry = Registry::new();
        let h = Server::bind("127.0.0.1:0", Arc::new(Echo), ServerConfig::default())
            .unwrap()
            .with_registry(&registry)
            .spawn()
            .unwrap();
        let mut c =
            Connection::connect(&h.addr().to_string(), &ClientConfig::default()).expect("connect");
        let q = Msg::Query("q".into());
        let sent =
            Msg::Hello.wire_size() + Msg::ExportDtd(String::new()).wire_size() + q.wire_size();
        c.request(Msg::ExportDtd(String::new())).unwrap();
        c.request(q).unwrap();
        drop(c);
        h.shutdown();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["net_connections_opened_total"], 1);
        assert_eq!(snap.counters["net_connections_closed_total"], 1);
        // Hello + ExportDtd + Query read; Hello + ExportDtd + Answer written
        assert_eq!(snap.counters["net_frames_in_total"], 3);
        assert_eq!(snap.counters["net_frames_out_total"], 3);
        assert_eq!(snap.counters["net_bytes_in_total"], sent);
        // the two non-handshake exchanges each landed one latency sample
        assert_eq!(snap.histograms["net_rpc_latency_ns"].count, 2);
    }

    #[test]
    fn connection_cap_turns_excess_away() {
        let h = spawn_echo(ServerConfig {
            max_connections: 1,
            io_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        });
        let addr = h.addr().to_string();
        let cfg = ClientConfig::default();
        let first = Connection::connect(&addr, &cfg).expect("first connects");
        // give the accept loop a moment to hand the first connection off
        std::thread::sleep(Duration::from_millis(50));
        match Connection::connect(&addr, &cfg) {
            Err(NetError::Remote { kind, .. }) => assert_eq!(kind, "unavailable"),
            other => panic!("expected over-cap refusal, got {other:?}"),
        }
        drop(first);
        h.shutdown();
    }

    #[test]
    fn admission_sheds_over_budget_queries_per_client() {
        let registry = Registry::new();
        let h = Server::bind(
            "127.0.0.1:0",
            Arc::new(Echo),
            ServerConfig {
                admission: Some(AdmissionConfig {
                    burst: 2,
                    refill_per_sec: 0,
                }),
                ..ServerConfig::default()
            },
        )
        .unwrap()
        .with_registry(&registry)
        .spawn()
        .unwrap();
        let addr = h.addr().to_string();
        let cfg = ClientConfig::default();
        let mut c = Connection::connect(&addr, &cfg).expect("connect");
        // the handshake and the DTD export are not admission-gated …
        c.request(Msg::ExportDtd(String::new())).unwrap();
        // … the burst of two queries goes through …
        c.request(Msg::Query(String::new())).unwrap();
        c.request(Msg::Query(String::new())).unwrap();
        // … and the third is shed with a backoff hint, on a live socket
        match c.request(Msg::Query(String::new())) {
            Err(NetError::Throttled { retry_after_ms }) => assert_eq!(retry_after_ms, 60_000),
            other => panic!("expected throttle, got {other:?}"),
        }
        // the budget is per client: a fresh connection has its own burst
        let mut c2 = Connection::connect(&addr, &cfg).expect("connect");
        c2.request(Msg::Query(String::new())).unwrap();
        drop((c, c2));
        h.shutdown();
        assert_eq!(registry.snapshot().counters["net_requests_shed_total"], 1);
    }

    #[test]
    fn shutdown_refuses_new_connections() {
        let h = spawn_echo(ServerConfig::default());
        let addr = h.addr().to_string();
        h.shutdown();
        assert!(Connection::connect(&addr, &ClientConfig::default()).is_err());
    }
}
