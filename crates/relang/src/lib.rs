//! # mix-relang — regular expressions over element names
//!
//! The foundation of the MIX view-DTD inference reproduction
//! (Papakonstantinou & Velikhov, ICDE 1999). A DTD maps each element name
//! to a *type*: a regular expression over element names (Definition 2.2);
//! a specialized DTD uses *tagged* regular expressions over tagged names
//! (Definition 3.8). This crate provides:
//!
//! * interned [`Name`]s and tagged [`Sym`]bols,
//! * the [`Regex`] AST with normalizing smart constructors,
//! * a parser ([`parse_regex`]) and pretty-printer for the paper's
//!   content-model notation,
//! * Glushkov [`Nfa`]s and complete [`Dfa`]s with product, complement and
//!   minimization,
//! * the language-level decision procedures behind *tightness*
//!   ([`is_subset`], [`equivalent`]), plus counting and enumeration used by
//!   the quantitative tightness metrics,
//! * a language-preserving [`simplify()`] pass (the "can be simplified to
//!   (D2)" step of Example 4.3),
//! * budget-steered random [`sample_word`] generation for workloads.

#![warn(missing_docs)]

pub mod ast;
pub mod derivative;
pub mod determinism;
pub mod dfa;
mod display;
pub mod memo;
pub mod nfa;
pub mod ops;
pub mod parser;
pub mod pool;
pub mod sample;
pub mod simplify;
pub mod symbol;

pub use ast::Regex;
pub use derivative::{derivative, derivative_id, matches_by_derivative};
pub use determinism::{ambiguity, is_deterministic, Ambiguity};
pub use dfa::Dfa;
pub use memo::{
    clear_memo, export_inclusions, import_inclusions, memo_footprint, memo_stats, MemoFootprint,
    MemoStats,
};
pub use nfa::Nfa;
pub use ops::{
    count_words_by_len, count_words_upto, enumerate_words, equivalent, equivalent_id,
    equivalent_uncached, image_cached, is_proper_subset, is_subset, is_subset_id,
    is_subset_uncached, language_is_empty, map_syms_cached, matches, min_word_len,
};
pub use parser::{parse_regex, ParseError};
pub use pool::{
    boxed_baseline, export_arena, import_arena, intern, pool_stats, set_boxed_baseline, to_regex,
    ImportedArena, PoolStats, PortableEntry, PortableNode, ReId, ReNode,
};
pub use sample::{sample_word, SampleConfig};
pub use simplify::{simplify, simplify_id};
pub use symbol::{name, sym, Name, Sym, Tag};
