//! Log₂-bucketed histograms.
//!
//! A value `v` lands in the bucket indexed by its bit length: bucket 0
//! holds exactly `{0}`, bucket *i* (1 ≤ *i* ≤ 63) holds `[2^(i-1),
//! 2^i − 1]`, and bucket 64 holds everything from `2^63` up. Each bucket's
//! inclusive upper bound (`le`) is therefore `2^i − 1` (with bucket 64
//! reported as `+Inf`/`u64::MAX`). Recording is two relaxed atomic adds —
//! cheap enough for per-request latencies in nanoseconds.
//!
//! Quantiles are defined *exactly* on the bucket counts: the q-quantile
//! is the `le` bound of the bucket containing the ⌈q·count⌉-th smallest
//! observation. That makes them coarse (within 2× of the true value) but
//! deterministic and property-testable — the suite recomputes them from
//! sorted inputs and demands equality.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of buckets: one for zero, one per bit length, one overflow.
pub const NUM_BUCKETS: usize = 65;

/// The bucket a value lands in: its bit length.
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` stands for +Inf).
pub fn bucket_le(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// Shared histogram storage behind a [`crate::Histogram`] handle.
pub(crate) struct HistCore {
    pub(crate) buckets: [AtomicU64; NUM_BUCKETS],
    pub(crate) sum: AtomicU64,
}

impl HistCore {
    pub(crate) fn new() -> HistCore {
        HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    pub(crate) fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
    }
}

/// The q-quantile over `(le, count)` buckets with `total` observations:
/// the `le` of the bucket holding the ⌈q·total⌉-th smallest value.
/// Returns 0 for an empty histogram.
pub fn quantile_from_buckets(buckets: &[(u64, u64)], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for &(le, n) in buckets {
        cumulative += n;
        if cumulative >= rank {
            return le;
        }
    }
    buckets.last().map_or(0, |&(le, _)| le)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_le(0), 0);
        assert_eq!(bucket_le(1), 1);
        assert_eq!(bucket_le(2), 3);
        assert_eq!(bucket_le(10), 1023);
        assert_eq!(bucket_le(64), u64::MAX);
        // every value's bucket bound is >= the value
        for v in [0u64, 1, 2, 3, 5, 100, 1 << 40, u64::MAX] {
            assert!(bucket_le(bucket_index(v)) >= v);
        }
    }

    #[test]
    fn quantiles_pick_the_bucket_of_the_ranked_observation() {
        // observations: 0, 1, 2, 3, 100 → buckets le 0, 1, 3, 3, 127
        let buckets = vec![(0, 1), (1, 1), (3, 2), (127, 1)];
        assert_eq!(quantile_from_buckets(&buckets, 5, 0.5), 3); // 3rd smallest = 2
        assert_eq!(quantile_from_buckets(&buckets, 5, 0.95), 127);
        assert_eq!(quantile_from_buckets(&buckets, 5, 0.0), 0); // rank clamps to 1
        assert_eq!(quantile_from_buckets(&[], 0, 0.5), 0);
    }
}
