//! Warm-start smoke over the real binary: a `serve-source` daemon with
//! `--store-dir` is populated, SIGKILLed, and restarted on the same
//! directory. The restarted daemon must (a) show warm-hit and `store_*`
//! counters in its stats exposition and (b) answer byte-identically to
//! the first process. A third run over a bit-flipped store must fall
//! back cold — skipped records counted, answers still byte-identical.

use std::io::BufRead as _;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

const D1: &str = "{<department : name, professor+, gradStudent+, course*>\
  <professor : firstName, lastName, publication+, teaches>\
  <gradStudent : firstName, lastName, publication+>\
  <publication : title, author+, (journal | conference)>\
  <teaches : EMPTY> <journal : EMPTY> <conference : EMPTY> <course : EMPTY>}";

const Q2: &str = "withJournals = SELECT P WHERE <department> <name>CS</name> \
  P:<professor | gradStudent> \
    <publication id=Pub1><journal/></publication> \
    <publication id=Pub2><journal/></publication> \
  </> </> AND Pub1 != Pub2";

const DOC: &str = "<department><name>CS</name>\
  <professor><firstName>Y</firstName><lastName>P</lastName>\
    <publication><title>a</title><author>x</author><journal/></publication>\
    <publication><title>b</title><author>x</author><journal/></publication>\
    <teaches/></professor>\
  <gradStudent><firstName>G</firstName><lastName>S</lastName>\
    <publication><title>c</title><author>x</author><conference/></publication>\
  </gradStudent></department>";

fn fixture(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mix-store-warm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write fixture");
    path
}

fn mixctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mixctl"))
        .args(args)
        .output()
        .expect("binary runs")
}

/// Spawns a view-exporting daemon on the store directory and returns it
/// with its announced address.
fn spawn_daemon(dtd: &str, doc: &str, q: &str, store: &str) -> (Child, String) {
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_mixctl"))
        .args([
            "serve-source",
            "--addr",
            "127.0.0.1:0",
            "--dtd",
            dtd,
            "--doc",
            doc,
            "--query",
            q,
            "--store-dir",
            store,
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut line = String::new();
    std::io::BufReader::new(daemon.stdout.as_mut().expect("piped stdout"))
        .read_line(&mut line)
        .expect("daemon announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_owned();
    (daemon, addr)
}

/// Pulls one counter out of the compact stats JSON (`"name":N`).
fn counter(stats_json: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    let at = stats_json
        .find(&needle)
        .unwrap_or_else(|| panic!("{name} missing from stats: {stats_json}"));
    stats_json[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("counter value parses")
}

fn stats_of(addr: &str) -> String {
    let out = mixctl(&["stats", "--remote", addr]);
    assert!(out.status.success(), "{:?}", out);
    String::from_utf8(out.stdout).expect("stats are utf-8")
}

fn federate_answer(addr: &str, q: &str) -> String {
    let out = mixctl(&["federate", "--query", q, "--remote", addr]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    String::from_utf8(out.stdout).expect("answer is utf-8")
}

#[test]
fn killed_daemon_restarts_warm_with_identical_answers() {
    let dtd = fixture("warm.dtd", D1);
    let doc = fixture("warm.xml", DOC);
    let q = fixture("warm.xmas", Q2);
    let store = std::env::temp_dir().join(format!("mix-store-warm-dir-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let (dtd, doc, q, store) = (
        dtd.to_str().unwrap(),
        doc.to_str().unwrap(),
        q.to_str().unwrap(),
        store.to_str().unwrap().to_owned(),
    );

    // first life: registering the view is the cache miss that the
    // write-behind log captures before we ever answer a query
    let (mut daemon, addr) = spawn_daemon(dtd, doc, q, &store);
    let cold_answer = federate_answer(&addr, q);
    let stats = stats_of(&addr);
    assert!(counter(&stats, "store_writes_total") > 0, "{stats}");
    assert_eq!(
        counter(&stats, "inference_cache_misses_total"),
        1,
        "{stats}"
    );
    // stats carries the pool gauges next to the store counters
    assert!(stats.contains("\"relang_pool_nodes\":"), "{stats}");
    // SIGKILL: no clean shutdown, no compaction — only the wal survives
    daemon.kill().expect("kill");
    daemon.wait().expect("reap");
    assert!(
        std::path::Path::new(&store).join("wal.log").exists(),
        "the write-behind log must exist after a kill"
    );

    // second life: the view must be resident before the first lookup
    let (mut daemon, addr) = spawn_daemon(dtd, doc, q, &store);
    let warm_answer = federate_answer(&addr, q);
    let stats = stats_of(&addr);
    daemon.kill().expect("kill");
    daemon.wait().expect("reap");
    assert_eq!(
        warm_answer, cold_answer,
        "a warm restart changed the answer"
    );
    assert!(counter(&stats, "store_loads_total") > 0, "{stats}");
    assert_eq!(counter(&stats, "store_load_skipped_total"), 0, "{stats}");
    assert_eq!(
        counter(&stats, "inference_cache_misses_total"),
        0,
        "the restart re-inferred instead of warm-starting: {stats}"
    );
    assert!(counter(&stats, "inference_cache_hits_total") > 0, "{stats}");

    // third life: flip a bit in every store file — the daemon must come
    // up cold (skips counted) and still answer byte-identically
    for entry in std::fs::read_dir(&store).expect("store dir").flatten() {
        let path = entry.path();
        let mut bytes = std::fs::read(&path).expect("store file");
        if bytes.len() > 20 {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&path, &bytes).expect("corrupt store file");
        }
    }
    let (mut daemon, addr) = spawn_daemon(dtd, doc, q, &store);
    let corrupt_answer = federate_answer(&addr, q);
    let stats = stats_of(&addr);
    daemon.kill().expect("kill");
    daemon.wait().expect("reap");
    assert_eq!(
        corrupt_answer, cold_answer,
        "a corrupted store changed the answer"
    );
    assert!(counter(&stats, "store_load_skipped_total") > 0, "{stats}");

    let _ = std::fs::remove_dir_all(&store);
}
