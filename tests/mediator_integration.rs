//! Mediator-level integration properties: the three execution paths agree
//! with each other, pruning never changes answers (only skips work), and
//! stacked mediators stay sound.

use mix::dtd::generate::{seeded_dtd, DtdGenConfig};
use mix::dtd::sample::{sample_documents, DocConfig};
use mix::prelude::*;
use mix::relang::symbol::Name;
use mix::xmas::gen::{random_query, random_view_query, QueryGenConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn all_off() -> ProcessorConfig {
    ProcessorConfig {
        use_simplifier: false,
        use_composition: false,
        use_condition_pruning: false,
        use_sat_pruning: false,
    }
}

/// Builds two mediators (all optimizations on / all off) over the same
/// random source and view; both must answer every user query with the same
/// structure.
#[test]
fn optimizations_do_not_change_answers() {
    let mut failures = Vec::new();
    for dtd_seed in 0..25u64 {
        let source_dtd = seeded_dtd(dtd_seed, &DtdGenConfig::default());
        let docs = sample_documents(&source_dtd, 1, dtd_seed, DocConfig::default());
        let mut rng = StdRng::seed_from_u64(dtd_seed + 1000);
        let view_q = {
            let mut q = random_query(&source_dtd, &mut rng, &QueryGenConfig::default());
            q.view_name = Name::intern(&format!("v{dtd_seed}"));
            q
        };
        let build = |cfg: ProcessorConfig| -> Option<Mediator> {
            let mut m = Mediator::with_config(cfg);
            m.add_source(
                "src",
                Arc::new(XmlSource::new(source_dtd.clone(), docs[0].clone()).unwrap()),
            );
            m.register_view("src", &view_q).ok()?;
            Some(m)
        };
        let Some(opt) = build(ProcessorConfig::default()) else {
            continue;
        };
        let plain = build(all_off()).expect("same registration");
        let view_dtd = &opt.view(view_q.view_name).unwrap().inferred.dtd;
        for qi in 0..8 {
            let mut qrng = StdRng::seed_from_u64(dtd_seed * 31 + qi);
            let user = random_view_query(view_dtd, &mut qrng, &QueryGenConfig::default());
            let (Ok(a), Ok(b)) = (opt.query(&user), plain.query(&user)) else {
                continue;
            };
            if !mix::xml::same_structural_class(&a.document.root, &b.document.root) {
                failures.push(format!(
                    "seed {dtd_seed}/{qi} ({:?} vs {:?}):\nview:\n{view_q}\nquery:\n{user}\n\
                     optimized:\n{}\nplain:\n{}",
                    a.path,
                    b.path,
                    write_document(&a.document, WriteConfig::default()),
                    write_document(&b.document, WriteConfig::default()),
                ));
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n---\n"));
}

/// Whatever path answered, the answer satisfies the DTD the upper layer
/// would infer for the user query — the property that makes stacking safe.
#[test]
fn answers_satisfy_inferred_answer_dtds() {
    for dtd_seed in 0..15u64 {
        let source_dtd = seeded_dtd(dtd_seed, &DtdGenConfig::default());
        let docs = sample_documents(&source_dtd, 1, dtd_seed * 3, DocConfig::default());
        let mut rng = StdRng::seed_from_u64(dtd_seed);
        let mut view_q = random_query(&source_dtd, &mut rng, &QueryGenConfig::default());
        view_q.view_name = Name::intern("w");
        let mut m = Mediator::new();
        m.add_source(
            "src",
            Arc::new(XmlSource::new(source_dtd.clone(), docs[0].clone()).unwrap()),
        );
        if m.register_view("src", &view_q).is_err() {
            continue;
        }
        let view_dtd = m.view(view_q.view_name).unwrap().inferred.dtd.clone();
        for qi in 0..5 {
            let mut qrng = StdRng::seed_from_u64(dtd_seed * 77 + qi);
            let user = random_view_query(&view_dtd, &mut qrng, &QueryGenConfig::default());
            let Ok(answer) = m.query(&user) else { continue };
            // infer the DTD of the *answer* from the view DTD
            let Ok(ans_iv) = infer_view_dtd(&user, &view_dtd) else {
                continue;
            };
            assert!(
                validate_document(&ans_iv.dtd, &answer.document).is_ok(),
                "answer violates its inferred DTD (seed {dtd_seed}/{qi}, path {:?})\n\
                 view:\n{view_q}\nquery:\n{user}\nanswer:\n{}\nanswer DTD:\n{}",
                answer.path,
                write_document(&answer.document, WriteConfig::default()),
                ans_iv.dtd,
            );
        }
    }
}

/// A three-level mediator stack on the paper's schema stays consistent
/// with direct evaluation.
#[test]
fn three_level_stack() {
    let d1 = mix::dtd::paper::d1_department();
    let doc = parse_document(
        "<department><name>CS</name>\
           <professor><firstName>Y</firstName><lastName>P</lastName>\
             <publication><title>a</title><author>x</author><journal/></publication>\
             <publication><title>b</title><author>y</author><journal/></publication>\
             <teaches/></professor>\
           <gradStudent><firstName>G</firstName><lastName>S</lastName>\
             <publication><title>c</title><author>z</author><journal/></publication>\
           </gradStudent></department>",
    )
    .unwrap();

    // level 0 → 1: all people with a journal publication
    let mut m1 = Mediator::new();
    m1.add_source("cs", Arc::new(XmlSource::new(d1, doc).unwrap()));
    let v1 = parse_query(
        "people = SELECT X WHERE <department> \
           X:<professor | gradStudent> <publication><journal/></publication> </> </>",
    )
    .unwrap();
    m1.register_view("cs", &v1).unwrap();
    let m1 = Arc::new(m1);

    // level 1 → 2: their publications
    let mut m2 = Mediator::new();
    m2.add_source(
        "people",
        Arc::new(ViewWrapper::new(m1, mix::relang::name("people")).unwrap()),
    );
    let v2 = parse_query(
        "pubs = SELECT Y WHERE <people> <professor | gradStudent> Y:<publication/> </> </>",
    )
    .unwrap();
    m2.register_view("people", &v2).unwrap();
    let m2 = Arc::new(m2);

    // level 2 → 3: their titles
    let mut m3 = Mediator::new();
    m3.add_source(
        "pubs",
        Arc::new(ViewWrapper::new(m2, mix::relang::name("pubs")).unwrap()),
    );
    let v3 =
        parse_query("titles = SELECT T WHERE <pubs> <publication> T:<title/> </> </pubs>").unwrap();
    let reg = m3.register_view("pubs", &v3).unwrap();
    // the DTD inferred across three levels still knows titles are PCDATA
    // under a list root
    let root = reg.inferred.dtd.get(mix::relang::name("titles")).unwrap();
    assert_eq!(root.to_string(), "title*");

    let q = parse_query("ans = SELECT T WHERE <titles> T:<title/> </titles>").unwrap();
    let a = m3.query(&q).unwrap();
    let titles: Vec<&str> = a
        .document
        .root
        .children()
        .iter()
        .filter_map(|e| e.pcdata())
        .collect();
    assert_eq!(titles, ["a", "b", "c"]);
}

/// The simplifier prunes exactly the queries whose answers are empty on
/// every instance: pruned ⟹ the unoptimized answer is empty.
#[test]
fn pruning_is_safe() {
    for dtd_seed in 0..20u64 {
        let source_dtd = seeded_dtd(dtd_seed, &DtdGenConfig::default());
        let docs = sample_documents(&source_dtd, 1, dtd_seed + 500, DocConfig::default());
        let mut rng = StdRng::seed_from_u64(dtd_seed);
        let mut view_q = random_query(&source_dtd, &mut rng, &QueryGenConfig::default());
        view_q.view_name = Name::intern("w");
        let mut with = Mediator::new();
        with.add_source(
            "s",
            Arc::new(XmlSource::new(source_dtd.clone(), docs[0].clone()).unwrap()),
        );
        if with.register_view("s", &view_q).is_err() {
            continue;
        }
        let mut without = Mediator::with_config(all_off());
        without.add_source(
            "s",
            Arc::new(XmlSource::new(source_dtd.clone(), docs[0].clone()).unwrap()),
        );
        without.register_view("s", &view_q).unwrap();
        let view_dtd = with.view(view_q.view_name).unwrap().inferred.dtd.clone();
        for qi in 0..6 {
            let mut qrng = StdRng::seed_from_u64(dtd_seed * 131 + qi);
            // use a chaotic generator so unsatisfiable queries are common
            let cfg = QueryGenConfig {
                chaos_prob: 0.4,
                ..QueryGenConfig::default()
            };
            let user = random_view_query(&view_dtd, &mut qrng, &cfg);
            let (Ok(a), Ok(b)) = (with.query(&user), without.query(&user)) else {
                continue;
            };
            if a.path == AnswerPath::PrunedUnsatisfiable {
                assert!(
                    b.document.root.children().is_empty(),
                    "pruned a non-empty answer (seed {dtd_seed}/{qi})\nquery:\n{user}"
                );
            }
        }
    }
}
