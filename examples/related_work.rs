//! Section 5's related-work comparison, made mechanical: DTDs vs strong
//! DataGuides ([GW97]) on the paper's running view.
//!
//! ```sh
//! cargo run --release --example related_work
//! ```

use mix::dtd::paper::d1_department;
use mix::dtd::sample::sample_documents;
use mix::prelude::*;

fn main() {
    let d1 = d1_department();

    // Build the dataguide of the withJournals *view* over many sources and
    // compare it against the inferred view DTD on the same tightness
    // metric.
    let view = parse_query(
        "withJournals = SELECT P WHERE <department> <name>CS</name> \
           P:<professor | gradStudent> \
             <publication id=Pub1><journal/></publication> \
             <publication id=Pub2><journal/></publication> \
           </> </> AND Pub1 != Pub2",
    )
    .unwrap();
    let iv = infer_view_dtd(&view, &d1).unwrap();

    let sources = sample_documents(&d1, 600, 7, Default::default());
    let views: Vec<_> = sources.iter().map(|doc| evaluate(&iv.query, doc)).collect();
    let guide = DataGuide::of_documents(&views).expect("views share a root");
    println!("dataguide of 600 view instances:\n{guide}\n");

    // every view instance conforms to the guide (it was built from them)
    assert!(views.iter().all(|v| guide.describes(v)));

    // 1. The paper's §5 claim, quantified: the guide admits far more
    //    structures than the view DTD (order/cardinality/siblings lost).
    println!("described structures per size (fewer = tighter):");
    println!(
        "{:>5} {:>14} {:>14} {:>14}",
        "size", "dataguide", "view DTD", "s-DTD"
    );
    let gd = guide.count_conforming_by_size(16);
    let dt = count_documents_by_size(&iv.dtd, 16);
    let sd = count_sdocuments_by_size(&iv.sdtd, 16);
    for s in 1..=16 {
        if gd[s] + dt[s] + sd[s] > 0 {
            println!("{:>5} {:>14} {:>14} {:>14}", s, gd[s], dt[s], sd[s]);
        }
    }
    let (g_sum, d_sum): (u128, u128) = (gd.iter().sum(), dt.iter().sum());
    println!(
        "\nΣ ≤ 16: dataguide {g_sum} vs view DTD {d_sum} ({}× looser)\n",
        g_sum / d_sum.max(1)
    );
    assert!(g_sum > d_sum);

    // 2. A concrete blindness witness on the source schema.
    let witness = mix::dataguide::find_blindness_witness(&d1, &sources[..5])
        .expect("D1 is full of order/cardinality constraints");
    println!(
        "blindness witness — the DTD rejects this reshuffled document, the \
         dataguide of its original cannot tell them apart:\n{}\n",
        write_document(&witness.confused, WriteConfig::default())
    );
    assert!(mix::dataguide::is_blindness_witness(&d1, &witness));

    // 3. The flip side: context-dependent typing ("similar to s-DTDs").
    let ctx = parse_document("<r><x><b><c/></b></x><y><b><d/></b></y></r>").unwrap();
    let g = DataGuide::of_document(&ctx);
    let mixed = parse_document("<r><x><b><d/></b></x><y><b><c/></b></y></r>").unwrap();
    let best_dtd =
        parse_compact("{<r : x, y> <x : b> <y : b> <b : (c | d)?> <c : EMPTY> <d : EMPTY>}")
            .unwrap();
    assert!(validate_document(&best_dtd, &mixed).is_ok()); // DTD fooled
    assert!(!g.describes(&mixed)); // guide not fooled
    println!(
        "context-dependence witness — one DTD type per name must accept the \
         swapped document, the dataguide (like an s-DTD) rejects it ✓"
    );
}
