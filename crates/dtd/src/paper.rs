//! The paper's DTD fixtures (D1, D9, D11, and the recursive `section` DTD
//! of Example 3.5), shared by tests, examples, and benches across the
//! workspace.
//!
//! Where the 1999 scan is internally inconsistent we use the reconstruction
//! argued in `DESIGN.md` §3 (e.g. D11's `gradStudent` has `publication*`,
//! which Example 4.4's *satisfiable* verdict requires).

use crate::model::Dtd;
use crate::parse::parse_compact;

/// (D1) — the running department DTD of Example 3.1.
pub fn d1_department() -> Dtd {
    parse_compact(
        "{<department : name, professor+, gradStudent+, course*>\
          <professor : firstName, lastName, publication+, teaches>\
          <gradStudent : firstName, lastName, publication+>\
          <publication : title, author+, (journal | conference)>\
          <teaches : EMPTY>\
          <journal : EMPTY>\
          <conference : EMPTY>\
          <course : EMPTY>}",
    )
    .expect("D1 is well-formed")
}

/// (D9) — the professor DTD of Example 4.1.
pub fn d9_professor() -> Dtd {
    parse_compact(
        "{<professor : name, (journal | conference)*>\
          <journal : EMPTY>\
          <conference : EMPTY>}",
    )
    .expect("D9 is well-formed")
}

/// (D11) — the department DTD of Example 4.4 (gradStudent has
/// `publication*`; see DESIGN.md §3 note 3).
pub fn d11_department() -> Dtd {
    parse_compact(
        "{<department : name, professor+, gradStudent+, course*>\
          <professor : firstName, lastName, publication+, teaches>\
          <gradStudent : firstName, lastName, publication*>\
          <publication : title, author*, (journal | conference)>\
          <teaches : EMPTY>\
          <journal : EMPTY>\
          <conference : EMPTY>\
          <course : EMPTY>}",
    )
    .expect("D11 is well-formed")
}

/// The recursive `section` DTD of Example 3.5.
pub fn section_recursive() -> Dtd {
    parse_compact(
        "{<section : prolog, section*, conclusion>\
          <prolog : EMPTY>\
          <conclusion : EMPTY>}",
    )
    .expect("section DTD is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_relang::symbol::name;

    #[test]
    fn fixtures_are_closed() {
        for d in [
            d1_department(),
            d9_professor(),
            d11_department(),
            section_recursive(),
        ] {
            assert!(d.undefined_names().is_empty(), "{d}");
        }
    }

    #[test]
    fn d1_shape() {
        let d = d1_department();
        assert_eq!(d.doc_type, name("department"));
        assert!(d.get(name("firstName")).unwrap().is_pcdata());
        assert_eq!(
            d.get(name("publication"))
                .unwrap()
                .regex()
                .unwrap()
                .to_string(),
            "title, author+, (journal | conference)"
        );
    }

    #[test]
    fn d11_gradstudent_publications_are_optional() {
        let d = d11_department();
        let g = d.get(name("gradStudent")).unwrap().regex().unwrap();
        assert_eq!(g.to_string(), "firstName, lastName, publication*");
    }
}
