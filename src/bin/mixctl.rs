//! `mixctl` — command-line front end for the MIX view-DTD inference
//! library.
//!
//! ```text
//! mixctl infer      --dtd D1.dtd --query Q2.xmas     infer the view DTDs
//! mixctl classify   --dtd D1.dtd --query Q2.xmas     valid/satisfiable/unsat
//! mixctl validate   --dtd D1.dtd --doc dept.xml      validate a document
//! mixctl eval       --dtd D1.dtd --doc dept.xml --query Q2.xmas
//! mixctl structure  --dtd D1.dtd                     query-interface summary
//! mixctl explain    --sat --dtd D1.dtd --query Q2.xmas   would the fetch be pruned?
//! mixctl explain    --sat --part D1.dtd:Q3.xmas --part D9.dtd:Q3.xmas
//! mixctl tightness  --dtd D1.dtd --query Q2.xmas --max-size 16
//! mixctl union      --part D1.dtd:Q3.xmas --part D1b.dtd:Q3.xmas
//! mixctl federate   --dtd D1.dtd --query Q3.xmas --doc a.xml --doc b.xml \
//!                   --fail-rate 0.3 --fault-seed 7
//! mixctl serve-source --addr 127.0.0.1:0 --dtd D1.dtd --doc dept.xml
//! mixctl serve-source --addr 127.0.0.1:0 --dtd D1.dtd --doc dept.xml \
//!                   --admit-rps 100 --admit-burst 20
//! mixctl serve-source --addr 127.0.0.1:0 --dtd D1.dtd --doc dept.xml \
//!                   --query Q3.xmas --store-dir /var/lib/mix/store
//! mixctl federate   --query Q3.xmas --remote 127.0.0.1:7801 --remote host:7802
//! mixctl federate   --query Q3.xmas --topology cluster.topo
//! mixctl stats      --remote 127.0.0.1:7801 [--format prom]
//! ```
//!
//! A topology file (`federate --topology`) describes a sharded,
//! replica-aware cluster of `serve-source` daemons:
//!
//! ```text
//! nodes 2
//! source site0 = 127.0.0.1:7801, 127.0.0.1:7811
//! source site1 = 127.0.0.1:7802
//! ```
//!
//! DTD files may use real `<!ELEMENT …>` syntax or the paper's compact
//! `<name : model>` notation (auto-detected).
//!
//! Exit codes (stable, scripts may rely on them):
//!
//! | code | meaning                                                    |
//! |------|------------------------------------------------------------|
//! | 0    | success                                                    |
//! | 1    | internal failure (unreadable file, invalid document, …)    |
//! | 2    | usage error                                                |
//! | 3    | degraded but served: a partial federated answer            |
//! | 4    | a DTD / query / document file failed to parse              |
//! | 5    | the query was rejected (normalization failed)              |
//! | 6    | a source is unavailable (or every federated source failed) |

use mix::infer::metrics::tightness_counts;
use mix::prelude::*;
use std::process::ExitCode;

/// Exit code 3: a federated answer was served, but degraded.
const EXIT_DEGRADED: u8 = 3;
/// Exit code 4: a DTD / query / document file failed to parse.
const EXIT_PARSE: u8 = 4;
/// Exit code 5: the query was rejected (normalization failed).
const EXIT_QUERY: u8 = 5;
/// Exit code 6: a source is unavailable / every federated source failed.
const EXIT_UNAVAILABLE: u8 = 6;

fn usage() -> ! {
    eprintln!(
        "usage: mixctl <infer|classify|validate|eval|structure|explain|tightness|union|\
         federate|serve|serve-source|stats> [--dtd FILE] [--query FILE] [--doc FILE] \
         [--max-size N]\n\
         run `mixctl help` for details"
    );
    std::process::exit(2)
}

/// The exit code a [`SourceError`] maps to.
fn source_error_exit(e: &SourceError) -> u8 {
    match e {
        SourceError::Unavailable(_) => EXIT_UNAVAILABLE,
        SourceError::Query(_) => EXIT_QUERY,
        _ => 1,
    }
}

struct Args {
    command: String,
    dtd: Option<String>,
    query: Option<String>,
    docs: Vec<String>,
    parts: Vec<(String, String)>,
    name: String,
    max_size: usize,
    fail_rate: f64,
    fault_seed: u64,
    retries: u32,
    bench: bool,
    batch: usize,
    threads: Vec<usize>,
    latency_ms: u64,
    out: Option<String>,
    addr: Option<String>,
    remotes: Vec<String>,
    max_conns: usize,
    timeout_ms: u64,
    format: String,
    metrics_file: Option<String>,
    metrics_interval_ms: u64,
    topology: Option<String>,
    admit_rps: Option<u64>,
    admit_burst: Option<u64>,
    workers: usize,
    memo: usize,
    conns: Option<usize>,
    inflight: Option<usize>,
    stream: bool,
    store_dir: Option<String>,
    sat: bool,
}

/// The multiplexed-client configuration the shared flags describe:
/// `--conns` caps the connection set, `--inflight` the pipelined
/// requests per connection.
fn client_config(args: &Args) -> ClientConfig {
    let mut cfg = ClientConfig {
        io_timeout: std::time::Duration::from_millis(args.timeout_ms),
        ..ClientConfig::default()
    };
    if let Some(n) = args.conns {
        cfg.pool_size = n.max(1);
    }
    if let Some(m) = args.inflight {
        cfg.in_flight_per_conn = m.max(1);
    }
    cfg
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| usage());
    let mut args = Args {
        command,
        dtd: None,
        query: None,
        docs: Vec::new(),
        parts: Vec::new(),
        name: "view".to_owned(),
        max_size: 16,
        fail_rate: 0.0,
        fault_seed: 0,
        retries: 2,
        bench: false,
        batch: 20,
        threads: vec![1, 2, 4, 8],
        latency_ms: 10,
        out: None,
        addr: None,
        remotes: Vec::new(),
        max_conns: 64,
        timeout_ms: 10_000,
        format: "json".to_owned(),
        metrics_file: None,
        metrics_interval_ms: 1_000,
        topology: None,
        admit_rps: None,
        admit_burst: None,
        workers: 0,
        memo: 0,
        conns: None,
        inflight: None,
        stream: false,
        store_dir: None,
        sat: false,
    };
    while let Some(flag) = argv.next() {
        let mut grab = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--dtd" => args.dtd = Some(grab()),
            "--query" => args.query = Some(grab()),
            "--doc" => args.docs.push(grab()),
            "--max-size" => {
                args.max_size = grab().parse().unwrap_or_else(|_| usage());
            }
            "--fail-rate" => {
                args.fail_rate = grab().parse().unwrap_or_else(|_| usage());
                if !(0.0..=1.0).contains(&args.fail_rate) {
                    eprintln!("mixctl: --fail-rate must be in [0, 1]");
                    std::process::exit(2)
                }
            }
            "--fault-seed" => {
                args.fault_seed = grab().parse().unwrap_or_else(|_| usage());
            }
            "--retries" => {
                args.retries = grab().parse().unwrap_or_else(|_| usage());
            }
            "--name" => args.name = grab(),
            "--bench" => args.bench = true,
            "--stream" => args.stream = true,
            "--sat" => args.sat = true,
            "--batch" => {
                args.batch = grab().parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                args.threads = grab()
                    .split(',')
                    .map(|t| t.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if args.threads.is_empty() {
                    usage();
                }
            }
            "--latency-ms" => {
                args.latency_ms = grab().parse().unwrap_or_else(|_| usage());
            }
            "--out" => args.out = Some(grab()),
            "--addr" => args.addr = Some(grab()),
            "--remote" => args.remotes.push(grab()),
            "--max-conns" => {
                args.max_conns = grab().parse().unwrap_or_else(|_| usage());
            }
            "--timeout-ms" => {
                args.timeout_ms = grab().parse().unwrap_or_else(|_| usage());
            }
            "--format" => {
                args.format = grab();
                if args.format != "json" && args.format != "prom" {
                    eprintln!("mixctl: --format must be 'json' or 'prom'");
                    std::process::exit(2)
                }
            }
            "--topology" => args.topology = Some(grab()),
            "--admit-rps" => {
                args.admit_rps = Some(grab().parse().unwrap_or_else(|_| usage()));
            }
            "--admit-burst" => {
                args.admit_burst = Some(grab().parse().unwrap_or_else(|_| usage()));
            }
            "--workers" => {
                args.workers = grab().parse().unwrap_or_else(|_| usage());
            }
            "--memo" => {
                args.memo = grab().parse().unwrap_or_else(|_| usage());
            }
            "--conns" => {
                args.conns = Some(grab().parse().unwrap_or_else(|_| usage()));
            }
            "--inflight" => {
                args.inflight = Some(grab().parse().unwrap_or_else(|_| usage()));
            }
            "--store-dir" => args.store_dir = Some(grab()),
            "--metrics-file" => args.metrics_file = Some(grab()),
            "--metrics-interval-ms" => {
                args.metrics_interval_ms = grab().parse().unwrap_or_else(|_| usage());
            }
            "--part" => {
                let spec = grab();
                match spec.split_once(':') {
                    Some((d, q)) => args.parts.push((d.to_owned(), q.to_owned())),
                    None => usage(),
                }
            }
            _ => usage(),
        }
    }
    args
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("mixctl: cannot read '{path}': {e}");
        std::process::exit(1)
    })
}

fn load_dtd_path(path: &str) -> Dtd {
    let text = read(path);
    let parsed = if text.trim_start().starts_with("<!") {
        parse_xml_dtd(&text)
    } else {
        parse_compact(&text)
    };
    parsed.unwrap_or_else(|e| {
        eprintln!("mixctl: {path}: {e}");
        std::process::exit(EXIT_PARSE as i32)
    })
}

fn load_dtd(args: &Args) -> Dtd {
    load_dtd_path(args.dtd.as_deref().unwrap_or_else(|| usage()))
}

fn load_query_path(path: &str) -> Query {
    parse_query(&read(path)).unwrap_or_else(|e| {
        eprintln!("mixctl: {path}: {e}");
        std::process::exit(EXIT_PARSE as i32)
    })
}

fn load_query(args: &Args) -> Query {
    load_query_path(args.query.as_deref().unwrap_or_else(|| usage()))
}

fn load_doc_path(path: &str) -> Document {
    parse_document(&read(path)).unwrap_or_else(|e| {
        eprintln!("mixctl: {path}: {e}");
        std::process::exit(EXIT_PARSE as i32)
    })
}

fn load_doc(args: &Args) -> Document {
    load_doc_path(
        args.docs
            .first()
            .map(String::as_str)
            .unwrap_or_else(|| usage()),
    )
}

/// Opens the `--store-dir` warm-start store against `registry` (so its
/// `store_*` counters sit next to the serving instruments), or `None`
/// when the flag is absent. An unopenable directory is fatal: the user
/// asked for persistence and silently serving cold would lose it.
fn open_store(args: &Args, registry: &Registry) -> Option<std::sync::Arc<Store>> {
    let dir = args.store_dir.as_deref()?;
    match Store::open(dir, registry) {
        Ok(s) => Some(std::sync::Arc::new(s)),
        Err(e) => {
            eprintln!("mixctl: cannot open store directory '{dir}': {e}");
            std::process::exit(1)
        }
    }
}

/// Renders an observability snapshot in the requested `--format`.
fn render_snapshot(snap: &Snapshot, format: &str) -> String {
    match format {
        "prom" => snap.to_prometheus(),
        _ => snap.to_json() + "\n",
    }
}

/// Writes the merged (process-global + given registry) snapshot to
/// `path`. Best-effort: a full metrics disk must not kill serving.
fn dump_metrics(path: &str, registry: &Registry, format: &str) {
    let snap = mix::obs::global().snapshot().merge(&registry.snapshot());
    if let Err(e) = std::fs::write(path, render_snapshot(&snap, format)) {
        eprintln!("mixctl: cannot write metrics file '{path}': {e}");
    }
}

/// The `serve --bench` throughput driver (the CLI face of experiment X15):
/// cold vs. warm inference-cache timing for the given (query, DTD), then
/// batched `answer_many` thread scaling with every source behind a
/// simulated round-trip latency.
fn serve_bench(args: &Args, dtd: &Dtd, view_q: &Query) -> ExitCode {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    // -- cold vs. warm inference ------------------------------------------
    mix::relang::clear_memo();
    let registry = Registry::new();
    // --store-dir makes the "cold" probe a *restart* probe: the cache
    // (and pool/memo) warm-start from the previous run's generation
    let cache = match open_store(args, &registry) {
        Some(store) => Arc::new(InferenceCache::with_store(
            registry.clone(),
            store as Arc<dyn WarmStore>,
        )),
        None => Arc::new(InferenceCache::with_registry(registry.clone())),
    };
    let t = Instant::now();
    let iv = match cache.infer(view_q, dtd) {
        Ok(iv) => iv,
        Err(e) => {
            eprintln!("mixctl: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cold = t.elapsed();
    const WARM_ITERS: u32 = 100;
    let t = Instant::now();
    for _ in 0..WARM_ITERS {
        cache.infer(view_q, dtd).expect("warm inference");
    }
    let warm = t.elapsed() / WARM_ITERS;
    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);

    let Some(member) = iv.list_type.syms_in_order().first().map(|s| s.name) else {
        eprintln!("mixctl: the view is empty (unsatisfiable); nothing to serve");
        return ExitCode::FAILURE;
    };

    // -- batched answer_many over simulated-latency sources ---------------
    // share the timed cache so its hit/miss counters and the serving
    // instruments land in one snapshot
    let mut m = Mediator::with_cache(ProcessorConfig::default(), cache);
    let mut view_names = Vec::new();
    for (i, path) in args.docs.iter().enumerate() {
        let doc = load_doc_path(path);
        let source = XmlSource::new(dtd.clone(), doc).unwrap_or_else(|e| {
            eprintln!("mixctl: {path}: {e}");
            std::process::exit(1)
        });
        let slow = LatencyWrapper::new(source, Duration::from_millis(args.latency_ms));
        let site = format!("site{i}");
        m.add_source(&site, Arc::new(slow));
        let mut q = view_q.clone();
        q.view_name = name(&format!("{}{}", view_q.view_name, i));
        m.register_view(&site, &q).unwrap_or_else(|e| {
            eprintln!("mixctl: {e}");
            std::process::exit(1)
        });
        view_names.push(q.view_name);
    }
    let batch: Vec<Query> = (0..args.batch)
        .map(|i| {
            let view = view_names[i % view_names.len()];
            parse_query(&format!(
                "b{i} = SELECT X WHERE <{view}> X:<{member}/> </{view}>"
            ))
            .expect("generated batch query parses")
        })
        .collect();
    let mut rows = Vec::new();
    let mut baseline_qps = 0.0_f64;
    let mut reference: Option<Vec<String>> = None;
    for &threads in &args.threads {
        let t = Instant::now();
        let answers = m.answer_many_with_threads(&batch, threads);
        let elapsed = t.elapsed();
        let rendered: Vec<String> = answers
            .iter()
            .map(|a| match a {
                Ok(ans) => write_document(&ans.document, WriteConfig::default()),
                Err(e) => format!("error: {e}"),
            })
            .collect();
        match &reference {
            None => reference = Some(rendered),
            Some(expect) => {
                assert_eq!(expect, &rendered, "thread count changed the batch answers")
            }
        }
        let qps = args.batch as f64 / elapsed.as_secs_f64().max(1e-9);
        if baseline_qps == 0.0 {
            baseline_qps = qps;
        }
        rows.push(format!(
            "    {{ \"threads\": {threads}, \"elapsed_ms\": {:.3}, \"qps\": {:.1}, \
             \"speedup_vs_first\": {:.2} }}",
            elapsed.as_secs_f64() * 1e3,
            qps,
            qps / baseline_qps.max(1e-9)
        ));
    }
    // the merged mix-obs snapshot is the canonical metrics surface: it
    // carries the inference-cache, automata-memo, and regex-pool
    // instruments (the legacy top-level "cache"/"automata" aliases were
    // dropped as announced in the PR 4 deprecation note)
    let obs_snapshot = mix::obs::global().snapshot().merge(&registry.snapshot());
    let json = format!(
        "{{\n  \"driver\": \"mixctl serve --bench\",\n  \"batch\": {},\n  \
         \"latency_ms\": {},\n  \"sources\": {},\n  \"inference\": {{ \
         \"cold_us\": {:.1}, \"warm_us\": {:.1}, \"warm_speedup\": {:.1} }},\n  \
         \"throughput\": [\n{}\n  ],\n  \"obs\": {}\n}}",
        args.batch,
        args.latency_ms,
        args.docs.len(),
        cold.as_secs_f64() * 1e6,
        warm.as_secs_f64() * 1e6,
        speedup,
        rows.join(",\n"),
        obs_snapshot.to_json(),
    );
    if let Some(path) = &args.metrics_file {
        dump_metrics(path, m.registry(), &args.format);
    }
    // clean exit: snapshot everything learned this run into one compacted
    // generation for the next restart (no-op without --store-dir)
    m.inference_cache().compact_store();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("mixctl: cannot write '{path}': {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}

/// `federate --topology`: the sharded, replica-aware federation tier.
///
/// Every source in the topology becomes a [`ReplicaSet`] over its
/// replica daemons (replicas that refuse the connection are registered
/// as [`DeadReplica`] placeholders, keeping failover order stable);
/// sources are sharded across `nodes` mediator nodes by consistent
/// hashing; the shards' members reassemble in topology order, so the
/// answer is byte-identical to a single-node `federate` over the same
/// sources.
fn federate_topology(args: &Args, q: &Query, topo_path: &str) -> ExitCode {
    use std::sync::Arc;

    let topo = match Topology::parse(&read(topo_path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mixctl: {topo_path}: {e}");
            return ExitCode::from(EXIT_PARSE);
        }
    };
    if topo.sources.is_empty() {
        eprintln!("mixctl: {topo_path}: the topology lists no sources");
        return ExitCode::from(2);
    }
    let cfg = client_config(args);
    let registry = Registry::new();
    // the federation tier holds no single inference cache to warm, but a
    // store still seeds the pool arena and inclusion memo every shard
    // mediator consults (loaded views are re-inferred warm from those)
    if let Some(store) = open_store(args, &registry) {
        let _ = store.load();
    }
    let mut parts = Vec::new();
    for spec in &topo.sources {
        // connect what answers; remember the positions that don't
        let mut live: Vec<Option<Arc<dyn Wrapper>>> = Vec::new();
        for addr in &spec.replicas {
            match RemoteWrapper::connect_with(addr, cfg) {
                Ok(w) => live.push(Some(Arc::new(w))),
                Err(e) => {
                    eprintln!("mixctl: warning: {}: replica {addr}: {e}", spec.name);
                    live.push(None);
                }
            }
        }
        let Some(dtd) = live.iter().flatten().next().map(|w| w.dtd().clone()) else {
            eprintln!("mixctl: every replica of '{}' is unreachable", spec.name);
            return ExitCode::from(EXIT_UNAVAILABLE);
        };
        // dead replicas keep their failover position: a later run where
        // the replica died one call in produces the same report
        let replicas: Vec<Arc<dyn Wrapper>> = live
            .into_iter()
            .zip(&spec.replicas)
            .map(|(w, addr)| w.unwrap_or_else(|| Arc::new(DeadReplica::new(addr, dtd.clone()))))
            .collect();
        let n = replicas.len();
        let set = match ReplicaSet::new(
            &spec.name,
            replicas,
            ReplicaPolicy::default(),
            ReplicaInstruments::new(&registry, &spec.name, n),
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mixctl: {}: {e}", spec.name);
                return ExitCode::from(source_error_exit(&e));
            }
        };
        parts.push(FederationPart {
            source: spec.name.clone(),
            wrapper: Arc::new(set),
            query: q.clone(),
        });
    }
    let mut fed = match Federation::build(&args.name, parts, topo.nodes, registry) {
        Ok(f) => f,
        Err(MediatorError::Normalize(e)) => {
            eprintln!("mixctl: query rejected: {e}");
            return ExitCode::from(EXIT_QUERY);
        }
        Err(e) => {
            eprintln!("mixctl: {e}");
            return ExitCode::FAILURE;
        }
    };
    fed.set_resilience_policy(ResiliencePolicy {
        max_retries: args.retries,
        ..ResiliencePolicy::default()
    });
    let code = match fed.materialize_with_report() {
        Ok((doc, report)) => {
            println!("{}", write_document(&doc, WriteConfig::default()));
            print!("{report}");
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(EXIT_DEGRADED)
            }
        }
        Err(e) => {
            eprintln!("mixctl: {e}");
            match e {
                MediatorError::AllSourcesFailed(_) => ExitCode::from(EXIT_UNAVAILABLE),
                MediatorError::Source { error, .. } => ExitCode::from(source_error_exit(&error)),
                MediatorError::Normalize(_) => ExitCode::from(EXIT_QUERY),
                _ => ExitCode::FAILURE,
            }
        }
    };
    if let Some(path) = &args.metrics_file {
        dump_metrics(path, fed.registry(), &args.format);
    }
    code
}

/// `eval --stream`: one-pass evaluation over the document file with the
/// answer serialized incrementally to stdout (byte-identical to the
/// in-memory path) and a resource report on stderr. Returns `None` when
/// the query is outside the streamable fragment — the caller falls back.
fn stream_eval_command(args: &Args, dtd: &Dtd, nq: &Query) -> Option<ExitCode> {
    let cq = match CompiledQuery::compile(nq, Some(dtd)) {
        Ok(cq) => cq,
        Err(unsupported) => {
            eprintln!("mixctl: query not streamable ({unsupported}); evaluating in memory");
            return None;
        }
    };
    let path = args
        .docs
        .first()
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("mixctl: {path}: {e}");
            return Some(ExitCode::FAILURE);
        }
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    match stream_answer_to(
        std::io::BufReader::new(file),
        &cq,
        WriteConfig::default(),
        &mut out,
    ) {
        Ok(stats) => {
            use std::io::Write;
            let _ = out.write_all(b"\n");
            let _ = out.flush();
            eprintln!(
                "streamed {} bytes, {} events; {} answers; peak state {} bytes \
                 (matcher {} + reader buffer {})",
                stats.bytes_read,
                stats.events,
                stats.answers,
                stats.peak_state_bytes(),
                stats.peak_matcher_bytes,
                stats.reader_buffer_high_water,
            );
            Some(ExitCode::SUCCESS)
        }
        Err(mix::stream::StreamError::Parse(e)) => {
            eprintln!("mixctl: {path}: {e}");
            Some(ExitCode::from(EXIT_PARSE))
        }
        Err(mix::stream::StreamError::Io(e)) => {
            eprintln!("mixctl: {path}: {e}");
            Some(ExitCode::FAILURE)
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    match args.command.as_str() {
        "help" | "--help" | "-h" => {
            println!(
                "mixctl — view DTD inference for XML mediators (ICDE 1999)\n\n\
                 commands:\n\
                 \x20 infer      --dtd F --query F   infer the specialized + merged view DTDs\n\
                 \x20 classify   --dtd F --query F   valid | satisfiable | unsatisfiable\n\
                 \x20 validate   --dtd F --doc F     validate a document (exit 1 on failure)\n\
                 \x20 eval       --dtd F --doc F --query F [--stream]   run the query and\n\
                 \x20            print the view. --stream evaluates in one pass over the\n\
                 \x20            document file with bounded state (large documents), with\n\
                 \x20            a one-line resource report on stderr; queries outside\n\
                 \x20            the streamable fragment fall back to in-memory\n\
                 \x20            evaluation\n\
                 \x20 structure  --dtd F             the DTD-based query-interface summary\n\
                 \x20 explain    --sat --dtd F --query F   per-source satisfiability\n\
                 \x20            verdict: 'sat', 'unknown', or 'unsat: WITNESS' with the\n\
                 \x20            proof path, plus whether the mediator would skip the\n\
                 \x20            fetch. --part DTD:QUERY … explains a federated plan\n\
                 \x20            (one line per source)\n\
                 \x20 tightness  --dtd F --query F [--max-size N]   exact tightness counts\n\
                 \x20 union      [--name N] --part DTD:QUERY …      infer a union view DTD\n\
                 \x20 federate   --query F [--dtd F --doc F …] [--remote HOST:PORT …]\n\
                 \x20            [--topology FILE] [--fail-rate R] [--fault-seed S]\n\
                 \x20            [--retries N] [--timeout-ms MS] [--conns N]\n\
                 \x20            [--inflight M]   union local docs and\n\
                 \x20            remote serve-source daemons as one view under injected\n\
                 \x20            faults; print the (partial) answer + degradation report.\n\
                 \x20            --topology shards a replica-aware cluster instead: the\n\
                 \x20            file lists 'nodes N' and 'source NAME = ADDR, ADDR'\n\
                 \x20            lines; sources shard across N mediator nodes by\n\
                 \x20            consistent hashing and each call fails over across the\n\
                 \x20            source's replicas (circuit breaker per replica)\n\
                 \x20 serve      --bench --dtd F --query F --doc F … [--batch N]\n\
                 \x20            [--threads 1,2,4,8] [--latency-ms MS] [--out FILE]\n\
                 \x20            throughput driver: cold/warm inference-cache timing and\n\
                 \x20            batched answer_many thread scaling over simulated-latency\n\
                 \x20            sources; JSON report to --out (or stdout); the \"obs\"\n\
                 \x20            field is the full mix-obs snapshot\n\
                 \x20 serve-source --addr HOST:PORT --dtd F --doc F [--query F]\n\
                 \x20            [--max-conns N] [--timeout-ms MS] [--admit-rps N]\n\
                 \x20            [--admit-burst N] [--workers N] [--memo N]   export the\n\
                 \x20            source (or,\n\
                 \x20            with --query, its view — a stacked mediator) over the\n\
                 \x20            mix-net wire protocol; prints 'listening on HOST:PORT'.\n\
                 \x20            --admit-rps / --admit-burst turn on per-client\n\
                 \x20            token-bucket admission control: queries past the budget\n\
                 \x20            get a Throttled reply. --workers sizes the reactor's\n\
                 \x20            service pool (0 = one per CPU). --memo N memoizes up to\n\
                 \x20            N rendered answers by query text (the source is a\n\
                 \x20            start-time snapshot, so replays are exact)\n\
                 \x20 stats      --remote HOST:PORT [--format json|prom]   fetch a serving\n\
                 \x20            daemon's observability snapshot over the wire\n\n\
                 client transport (federate, stats):\n\
                 \x20 --conns N                connections the multiplexed client may\n\
                 \x20                          hold per remote (default 4)\n\
                 \x20 --inflight M             pipelined requests per connection,\n\
                 \x20                          matched to replies by frame id\n\
                 \x20                          (default 32, max 256)\n\n\
                 warm starts (serve, serve-source, federate):\n\
                 \x20 --store-dir DIR          persist the inference cache, regex pool\n\
                 \x20                          arena, and inclusion memo to DIR and\n\
                 \x20                          reload them on start: restarts answer\n\
                 \x20                          warm. Misses append to a write-behind\n\
                 \x20                          log (killed daemons lose nothing); a\n\
                 \x20                          clean exit compacts one snapshot\n\
                 \x20                          generation. Corrupt or truncated store\n\
                 \x20                          bytes are skipped record-by-record\n\
                 \x20                          (counted in store_load_skipped_total)\n\
                 \x20                          and the daemon falls back to cold\n\
                 \x20                          inference — never to wrong answers\n\n\
                 observability (serve, serve-source, federate):\n\
                 \x20 --metrics-file FILE      dump the mix-obs snapshot to FILE\n\
                 \x20                          (periodically for serve-source, once at\n\
                 \x20                          exit for one-shot commands)\n\
                 \x20 --metrics-interval-ms MS dump interval (default 1000)\n\
                 \x20 --format json|prom       snapshot rendering for --metrics-file\n\
                 \x20                          and stats (default json)\n\n\
                 exit codes: 0 ok; 1 failure; 2 usage; 3 degraded federated answer;\n\
                 \x20 4 DTD/query/document parse error; 5 query rejected (normalization);\n\
                 \x20 6 source unavailable / every federated source failed"
            );
            ExitCode::SUCCESS
        }
        "infer" => {
            let dtd = load_dtd(&args);
            let q = load_query(&args);
            match infer_view_dtd(&q, &dtd) {
                Ok(iv) => {
                    println!("verdict: {:?}\n", iv.verdict);
                    println!("specialized view DTD:\n{}\n", iv.sdtd);
                    println!("merged view DTD:\n{}", iv.dtd);
                    if !iv.merged_names.is_empty() {
                        println!(
                            "\nnon-tightness introduced by merging on: {}",
                            iv.merged_names
                                .iter()
                                .map(|n| n.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                    }
                    let nondet = mix::dtd::nondeterministic_names(&iv.dtd);
                    if !nondet.is_empty() {
                        println!(
                            "note: content models of {} are not 1-unambiguous \
                             (XML 1.0 determinism rule)",
                            nondet
                                .iter()
                                .map(|n| n.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("mixctl: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "classify" => {
            let dtd = load_dtd(&args);
            let q = load_query(&args);
            match normalize(&q, &dtd) {
                Ok(nq) => {
                    println!("{:?}", classify_query(&nq, &dtd));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("mixctl: query rejected: {e}");
                    ExitCode::from(EXIT_QUERY)
                }
            }
        }
        "validate" => {
            let dtd = load_dtd(&args);
            let doc = load_doc(&args);
            match validate_document(&dtd, &doc) {
                Ok(()) => {
                    println!("valid");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    println!("invalid: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "eval" => {
            let dtd = load_dtd(&args);
            let q = load_query(&args);
            let nq = match normalize(&q, &dtd) {
                Ok(nq) => nq,
                Err(e) => {
                    eprintln!("mixctl: query rejected: {e}");
                    return ExitCode::from(EXIT_QUERY);
                }
            };
            if args.stream {
                if let Some(code) = stream_eval_command(&args, &dtd, &nq) {
                    return code;
                }
                // not streamable: fall through to the in-memory path
            }
            let doc = load_doc(&args);
            let out = evaluate(&nq, &doc);
            println!("{}", write_document(&out, WriteConfig::default()));
            ExitCode::SUCCESS
        }
        "structure" => {
            let dtd = load_dtd(&args);
            print!("{}", render_structure(&dtd));
            ExitCode::SUCCESS
        }
        "explain" => {
            if !args.sat {
                eprintln!("mixctl: explain needs --sat (per-source satisfiability verdicts)");
                return ExitCode::from(2);
            }
            // one --dtd/--query pair, or per-source --part DTD:QUERY pairs
            // (the federated shape): each line is one source's verdict
            let parts: Vec<(String, String)> = if args.parts.is_empty() {
                vec![(
                    args.dtd.clone().unwrap_or_else(|| usage()),
                    args.query.clone().unwrap_or_else(|| usage()),
                )]
            } else {
                args.parts.clone()
            };
            let mut pruned = 0usize;
            for (dtd_path, query_path) in &parts {
                let dtd = load_dtd_path(dtd_path);
                let q = load_query_path(query_path);
                let verdict = check_sat(&q, &dtd);
                let action = match &verdict {
                    SatVerdict::Unsat(_) => {
                        pruned += 1;
                        "fetch skipped"
                    }
                    SatVerdict::Sat => "fetch proceeds",
                    SatVerdict::Unknown => "fetch proceeds (not provably empty)",
                };
                println!("{dtd_path}: {verdict} [{action}]");
            }
            println!("{pruned}/{} source fetches pruned", parts.len());
            ExitCode::SUCCESS
        }
        "union" => {
            if args.parts.is_empty() {
                usage();
            }
            let mut loaded = Vec::new();
            for (dtd_path, query_path) in &args.parts {
                let dtd = load_dtd_path(dtd_path);
                loaded.push((load_query_path(query_path), dtd));
            }
            let refs: Vec<(&Query, &Dtd)> = loaded.iter().map(|(q, d)| (q, d)).collect();
            match mix::infer::infer_union_view_dtd(name(&args.name), &refs) {
                Ok(u) => {
                    println!("verdict: {:?}\n", u.verdict);
                    println!("specialized union view DTD:\n{}\n", u.sdtd);
                    println!("merged union view DTD:\n{}", u.dtd);
                    if !u.kind_conflicts.is_empty() {
                        println!(
                            "\nWARNING: {} mix PCDATA and element content across sites; \
                             the merged plain DTD is not sound for them (use the s-DTD)",
                            u.kind_conflicts
                                .iter()
                                .map(|n| n.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("mixctl: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "federate" => {
            let q = load_query(&args);
            if let Some(topo_path) = &args.topology {
                if !args.docs.is_empty() || !args.remotes.is_empty() {
                    eprintln!("mixctl: --topology replaces --doc/--remote members");
                    return ExitCode::from(2);
                }
                return federate_topology(&args, &q, topo_path);
            }
            if args.docs.is_empty() && args.remotes.is_empty() {
                usage();
            }
            let registry = Registry::new();
            let mut m = match open_store(&args, &registry) {
                Some(store) => Mediator::with_store(
                    ProcessorConfig::default(),
                    registry,
                    store as std::sync::Arc<dyn WarmStore>,
                ),
                None => Mediator::with_registry(ProcessorConfig::default(), registry),
            };
            m.set_resilience_policy(ResiliencePolicy {
                max_retries: args.retries,
                ..ResiliencePolicy::default()
            });
            let mut site_names: Vec<String> = Vec::new();
            if !args.docs.is_empty() {
                // local members share the --dtd; remote members export
                // their own DTDs at registration
                let dtd = load_dtd(&args);
                for (i, path) in args.docs.iter().enumerate() {
                    let doc = load_doc_path(path);
                    let source = XmlSource::new(dtd.clone(), doc).unwrap_or_else(|e| {
                        eprintln!("mixctl: {path}: {e}");
                        std::process::exit(1)
                    });
                    // one independent, seeded schedule per site
                    let injector = FaultInjector::seeded(
                        std::sync::Arc::new(source),
                        args.fault_seed.wrapping_add(i as u64),
                        args.fail_rate,
                    );
                    let site = format!("site{i}");
                    m.add_source(&site, std::sync::Arc::new(injector));
                    site_names.push(site);
                }
            }
            for (i, addr) in args.remotes.iter().enumerate() {
                let cfg = client_config(&args);
                let wrapper = match RemoteWrapper::connect_with(addr, cfg) {
                    Ok(w) => w,
                    Err(e) => {
                        eprintln!("mixctl: {addr}: {e}");
                        return ExitCode::from(source_error_exit(&e));
                    }
                };
                let site = format!("remote{i}");
                m.add_source(&site, std::sync::Arc::new(wrapper));
                site_names.push(site);
            }
            let parts: Vec<(&str, Query)> =
                site_names.iter().map(|s| (s.as_str(), q.clone())).collect();
            if let Err(e) = m.register_union_view(&args.name, &parts) {
                if let MediatorError::Normalize(e) = e {
                    eprintln!("mixctl: query rejected: {e}");
                    return ExitCode::from(EXIT_QUERY);
                }
                eprintln!("mixctl: {e}");
                return ExitCode::FAILURE;
            }
            let code = match m.materialize_with_report(name(&args.name)) {
                Ok((doc, report)) => {
                    println!("{}", write_document(&doc, WriteConfig::default()));
                    print!("{report}");
                    if report.is_clean() {
                        ExitCode::SUCCESS
                    } else {
                        // degraded but served: distinguishable from both
                        // success and hard failure
                        ExitCode::from(EXIT_DEGRADED)
                    }
                }
                Err(e) => {
                    eprintln!("mixctl: {e}");
                    match e {
                        MediatorError::AllSourcesFailed(_) => ExitCode::from(EXIT_UNAVAILABLE),
                        MediatorError::Source { error, .. } => {
                            ExitCode::from(source_error_exit(&error))
                        }
                        MediatorError::Normalize(_) => ExitCode::from(EXIT_QUERY),
                        _ => ExitCode::FAILURE,
                    }
                }
            };
            // one final snapshot: a federate run is one-shot, so the dump
            // happens after the answer rather than on an interval
            if let Some(path) = &args.metrics_file {
                dump_metrics(path, m.registry(), &args.format);
            }
            m.inference_cache().compact_store();
            code
        }
        "stats" => {
            let Some(addr) = args.remotes.first() else {
                eprintln!("mixctl: stats needs --remote HOST:PORT");
                return ExitCode::from(2);
            };
            let cfg = client_config(&args);
            let mut conn = match Connection::connect(addr, &cfg) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("mixctl: {addr}: {e}");
                    return ExitCode::from(EXIT_UNAVAILABLE);
                }
            };
            match conn.request(Msg::Stats(String::new())) {
                Ok(Msg::Stats(json)) => match args.format.as_str() {
                    // re-render remotely: the wire always carries the JSON
                    // snapshot, and `from_json` round-trips it exactly
                    "prom" => match Snapshot::from_json(&json) {
                        Ok(snap) => {
                            print!("{}", snap.to_prometheus());
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("mixctl: {addr}: malformed snapshot: {e}");
                            ExitCode::FAILURE
                        }
                    },
                    _ => {
                        println!("{json}");
                        ExitCode::SUCCESS
                    }
                },
                Ok(other) => {
                    eprintln!(
                        "mixctl: {addr}: unexpected {:?} reply to a stats request",
                        other.msg_type()
                    );
                    ExitCode::FAILURE
                }
                // an old daemon (or one serving no statistics) is a plain
                // failure, not "unavailable": the peer answered
                Err(NetError::Remote { kind, msg }) => {
                    eprintln!("mixctl: {addr}: remote fault [{kind}]: {msg}");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("mixctl: {addr}: {e}");
                    ExitCode::from(EXIT_UNAVAILABLE)
                }
            }
        }
        "serve-source" => {
            let Some(addr) = args.addr.as_deref() else {
                eprintln!("mixctl: serve-source needs --addr HOST:PORT");
                return ExitCode::from(2);
            };
            let dtd = load_dtd(&args);
            let doc = load_doc(&args);
            let source = XmlSource::new(dtd, doc).unwrap_or_else(|e| {
                eprintln!("mixctl: document does not validate: {e}");
                std::process::exit(1)
            });
            // every layer of the daemon records into one registry; `stats`
            // requests and the --metrics-file dump both read it merged
            // with the process-wide automata memo counters
            let registry = Registry::new();
            let store = open_store(&args, &registry);
            // a clean shutdown compacts through this handle; SIGKILLed
            // daemons still warm-start from the write-behind wal
            let mut compact_cache: Option<std::sync::Arc<InferenceCache>> = None;
            // --query exports the *view* (a stacked mediator) instead of
            // the raw source
            let wrapper: std::sync::Arc<dyn Wrapper> = match &args.query {
                None => {
                    // no inference cache to warm, but loading still seeds
                    // the process-wide pool arena and inclusion memo
                    if let Some(store) = &store {
                        let _ = store.load();
                    }
                    std::sync::Arc::new(source)
                }
                Some(_) => {
                    let q = load_query(&args);
                    let mut m = match &store {
                        Some(store) => Mediator::with_store(
                            ProcessorConfig::default(),
                            registry.clone(),
                            std::sync::Arc::clone(store) as std::sync::Arc<dyn WarmStore>,
                        ),
                        None => {
                            Mediator::with_registry(ProcessorConfig::default(), registry.clone())
                        }
                    };
                    m.add_source("local", std::sync::Arc::new(source));
                    if let Err(e) = m.register_view("local", &q) {
                        if let MediatorError::Normalize(e) = e {
                            eprintln!("mixctl: query rejected: {e}");
                            return ExitCode::from(EXIT_QUERY);
                        }
                        eprintln!("mixctl: {e}");
                        return ExitCode::FAILURE;
                    }
                    compact_cache = Some(std::sync::Arc::clone(m.inference_cache()));
                    let view = q.view_name;
                    let vw = ViewWrapper::new(std::sync::Arc::new(m), view)
                        .expect("the view was registered just above");
                    std::sync::Arc::new(vw)
                }
            };
            let config = ServerConfig {
                max_connections: args.max_conns,
                io_timeout: std::time::Duration::from_millis(args.timeout_ms),
                // 0 sizes the reactor's worker pool from the CPU count
                workers: args.workers,
                // either flag opts the daemon into per-client admission
                // control; --admit-rps 0 means the burst is all a
                // connection ever gets
                admission: (args.admit_rps.is_some() || args.admit_burst.is_some()).then(|| {
                    AdmissionConfig {
                        burst: args.admit_burst.or(args.admit_rps).unwrap_or(1).max(1),
                        refill_per_sec: args.admit_rps.unwrap_or(0),
                    }
                }),
                ..ServerConfig::default()
            };
            let mut service = WrapperService::new(wrapper).with_registry(registry.clone());
            if args.memo > 0 {
                // safe here: the served wrapper is a snapshot loaded at
                // start (an XmlSource, possibly under a stacked view), so
                // answers are stable for the daemon's lifetime
                service = service.with_answer_memo(args.memo);
            }
            let server = match Server::bind(addr, std::sync::Arc::new(service), config) {
                Ok(s) => s.with_registry(&registry),
                Err(e) => {
                    eprintln!("mixctl: cannot bind '{addr}': {e}");
                    return ExitCode::FAILURE;
                }
            };
            match server.local_addr() {
                Ok(bound) => {
                    // scripts and tests parse this line (port 0 binds an
                    // OS-assigned port)
                    println!("listening on {bound}");
                    use std::io::Write as _;
                    let _ = std::io::stdout().flush();
                }
                Err(e) => {
                    eprintln!("mixctl: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if let Some(path) = args.metrics_file.clone() {
                let registry = registry.clone();
                let format = args.format.clone();
                let interval = std::time::Duration::from_millis(args.metrics_interval_ms.max(1));
                // detached dump loop; dies with the process
                std::thread::spawn(move || loop {
                    std::thread::sleep(interval);
                    dump_metrics(&path, &registry, &format);
                });
            }
            match server.run() {
                Ok(()) => {
                    // a clean stop snapshots the cache (plus pool and
                    // memo) into one compacted generation
                    if let Some(cache) = &compact_cache {
                        cache.compact_store();
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("mixctl: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "serve" => {
            if !args.bench {
                eprintln!(
                    "mixctl: serve is a throughput driver; pass --bench \
                     (a long-lived daemon mode is future work)"
                );
                return ExitCode::from(2);
            }
            let dtd = load_dtd(&args);
            let q = load_query(&args);
            if args.docs.is_empty() {
                usage();
            }
            serve_bench(&args, &dtd, &q)
        }
        "tightness" => {
            let dtd = load_dtd(&args);
            let q = load_query(&args);
            let rows = tightness_counts(&q, &dtd, args.max_size);
            println!(
                "{:>5} {:>16} {:>16} {:>16}",
                "size", "naive", "tight", "s-DTD"
            );
            for r in rows {
                if r.naive + r.merged + r.specialized > 0 {
                    println!(
                        "{:>5} {:>16} {:>16} {:>16}",
                        r.size, r.naive, r.merged, r.specialized
                    );
                }
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
