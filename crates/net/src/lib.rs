//! # mix-net — the wire protocol of distributed mediation
//!
//! MIX is a *distributed* architecture: wrappers export a DTD and answer
//! queries for sources that live elsewhere, and mediators stack on top of
//! mediators across machine boundaries (Paper §1). This crate is that
//! boundary: a deliberately small, std-only protocol (no external
//! dependencies — the one concession is a thin raw-syscall shim in
//! `sys` for epoll/poll readiness, everything else is `std::net`) that
//! moves three kinds of text — DTDs in the paper's compact notation,
//! XMAS queries, and XML documents — between a mediator and a remote
//! wrapper.
//!
//! The crate knows nothing about DTDs or queries *as values*: payloads
//! are opaque UTF-8 produced and consumed by the `mix-dtd` / `mix-xmas` /
//! `mix-xml` serializers on either side. That keeps the dependency
//! arrow pointing one way (`mix-mediator` → `mix-net`) so the client
//! ([`Pool`]) can live here while `RemoteWrapper` — which must implement
//! the mediator's `Wrapper` trait — lives in `mix-mediator`.
//!
//! * [`frame`] — length-prefixed binary framing with a version byte and
//!   a per-request frame id, so many exchanges share one connection,
//! * [`msg`] — the message types (`Hello`, `ExportDtd`, `Query`,
//!   `Answer`, `Err`, `Stats`, `Throttled`),
//! * [`server`] — a readiness-driven reactor (epoll on Linux, poll(2)
//!   elsewhere) with nonblocking sockets, per-connection ring buffers, a
//!   connection cap, idle eviction, and optional per-client admission
//!   control, serving any [`WireService`] on a small worker pool,
//! * [`client`] — a blocking [`Connection`] with handshake, and the
//!   multiplexing [`Pool`] (N connections × M in-flight slots, waiters
//!   parked on per-slot condvars) with deterministic reconnect jitter,
//! * [`admission`] — the per-client [`TokenBucket`].
//!
//! The full frame format and error-mapping contract are documented in
//! `DESIGN.md` §9; the federation tier built on top in §12; the reactor
//! and pipelining design in §13.

pub mod admission;
pub mod client;
pub mod error;
pub mod frame;
pub mod msg;
mod reactor;
mod ring;
pub mod server;
mod sys;

pub use admission::{AdmissionConfig, TokenBucket};
pub use client::{reconnect_jitter, ClientConfig, Connection, Pool};
pub use error::NetError;
pub use frame::{MsgType, FRAME_VERSION, MAX_PAYLOAD};
pub use msg::Msg;
pub use server::{Server, ServerConfig, ServerHandle, WireFault, WireService};
