//! The paper's worked examples as cross-crate integration tests, through
//! the public facade API only (experiments E1–E11 of DESIGN.md §4).

use mix::dtd::paper::{d11_department, d1_department, d9_professor};
use mix::infer::metrics::non_tight_witnesses;
use mix::infer::refine::refine1;
use mix::prelude::*;

fn q2() -> Query {
    parse_query(
        "withJournals = SELECT P WHERE <department> <name>CS</name> \
           P:<professor | gradStudent> \
             <publication id=Pub1><journal/></publication> \
             <publication id=Pub2><journal/></publication> \
           </> </> AND Pub1 != Pub2",
    )
    .unwrap()
}

/// E1 — Q2's evaluation semantics on a hand-built department.
#[test]
fn q2_semantics() {
    let doc = parse_document(
        "<department><name>CS</name>\
           <professor><firstName>two</firstName><lastName>L</lastName>\
             <publication><title>a</title><author>x</author><journal/></publication>\
             <publication><title>b</title><author>x</author><journal/></publication>\
             <teaches/></professor>\
           <professor><firstName>one</firstName><lastName>L</lastName>\
             <publication><title>c</title><author>x</author><journal/></publication>\
             <teaches/></professor>\
           <gradStudent><firstName>gs</firstName><lastName>L</lastName>\
             <publication><title>d</title><author>x</author><journal/></publication>\
             <publication><title>e</title><author>x</author><journal/></publication>\
           </gradStudent>\
         </department>",
    )
    .unwrap();
    let q = normalize(&q2(), &d1_department()).unwrap();
    let out = evaluate(&q, &doc);
    let members: Vec<&str> = out
        .root
        .children()
        .iter()
        .map(|e| e.name.as_str())
        .collect();
    // document order: the qualifying professor before the gradStudent
    assert_eq!(members, ["professor", "gradStudent"]);
    assert_eq!(out.root.children()[0].children()[0].pcdata(), Some("two"));
}

/// E2 — Example 3.1: the naive DTD vs the reconstructed (D2).
#[test]
fn example_3_1() {
    let d = d1_department();
    let iv = infer_view_dtd(&q2(), &d).unwrap();
    let naive = naive_view_dtd(&iv.query, &d, NaiveMode::Sound);
    assert!(mix::dtd::strictly_tighter(&iv.dtd, &naive));
    // (D2), reconstructed
    let d2 = parse_compact(
        "{<withJournals : professor*, gradStudent*>\
          <professor : firstName, lastName, publication, publication+, teaches>\
          <gradStudent : firstName, lastName, publication, publication+>\
          <publication : title, author+, (journal | conference)>\
          <teaches : EMPTY> <journal : EMPTY> <conference : EMPTY>}",
    )
    .unwrap();
    assert!(
        mix::dtd::same_documents(&iv.dtd, &d2),
        "inferred:\n{}",
        iv.dtd
    );
}

/// E2b — the paper-literal naive root `(…)+` is unsound: a source with no
/// qualifying member yields an empty view the DTD rejects.
#[test]
fn paper_literal_naive_is_unsound() {
    let d = d1_department();
    let q = normalize(&q2(), &d).unwrap();
    let naive_plus = naive_view_dtd(&q, &d, NaiveMode::PaperLiteral);
    let naive_star = naive_view_dtd(&q, &d, NaiveMode::Sound);
    // a department where nobody has two journal publications
    let doc = parse_document(
        "<department><name>CS</name>\
           <professor><firstName>a</firstName><lastName>b</lastName>\
             <publication><title>t</title><author>x</author><conference/></publication>\
             <teaches/></professor>\
           <gradStudent><firstName>c</firstName><lastName>d</lastName>\
             <publication><title>u</title><author>x</author><journal/></publication>\
           </gradStudent></department>",
    )
    .unwrap();
    let view = evaluate(&q, &doc);
    assert!(view.root.children().is_empty());
    assert!(validate_document(&naive_star, &view).is_ok());
    assert!(validate_document(&naive_plus, &view).is_err());
}

/// E3 — Example 3.2: (Q3) yields (D3) with the disjunction removed.
#[test]
fn example_3_2() {
    let q3 = parse_query(
        "publist = SELECT P WHERE <department> <name>CS</name> \
           <professor | gradStudent> P:<publication><journal/></publication> </> </>",
    )
    .unwrap();
    let iv = infer_view_dtd(&q3, &d1_department()).unwrap();
    let d3 = parse_compact(
        "{<publist : publication*>\
          <publication : title, author+, journal>\
          <title : PCDATA> <author : PCDATA> <journal : EMPTY>}",
    )
    .unwrap();
    assert!(
        mix::dtd::same_documents(&iv.dtd, &d3),
        "inferred:\n{}",
        iv.dtd
    );
}

/// E4 — Section 3.2: D2 admits structures the view can never produce.
#[test]
fn d2_not_structurally_tight() {
    let iv = infer_view_dtd(&q2(), &d1_department()).unwrap();
    let witnesses = non_tight_witnesses(&iv, 14, 40_000);
    assert!(!witnesses.is_empty());
    // and indeed: the witness has a member with fewer than two journal
    // publications
    let w = &witnesses[0];
    let journals = w
        .root
        .walk()
        .filter(|e| e.name.as_str() == "journal")
        .count();
    assert!(journals < 2 * w.root.children().len());
}

/// E5 — Example 3.4: the inferred s-DTD is the paper's (D4).
#[test]
fn example_3_4() {
    let iv = infer_view_dtd(&q2(), &d1_department()).unwrap();
    let d4 = parse_compact_sdtd(
        "{<withJournals : professor*, gradStudent*>\
          <professor : firstName, lastName, publication*, publication^1, \
                       publication*, publication^1, publication*, teaches>\
          <gradStudent : firstName, lastName, publication*, publication^1, \
                       publication*, publication^1, publication*>\
          <publication : title, author+, (journal | conference)>\
          <publication^1 : title, author+, journal>\
          <teaches : EMPTY> <journal : EMPTY> <conference : EMPTY>}",
    )
    .unwrap();
    // same names & specializations, with language-equivalent types
    for (sym, model) in d4.types.iter() {
        let ours = iv
            .sdtd
            .get(sym)
            .unwrap_or_else(|| panic!("missing {sym} in inferred s-DTD:\n{}", iv.sdtd));
        match (model, ours) {
            (ContentModel::Pcdata, ContentModel::Pcdata) => {}
            (ContentModel::Elements(a), ContentModel::Elements(b)) => {
                assert!(equivalent(a, b), "{sym}: expected {a}, inferred {b}");
            }
            other => panic!("model kind mismatch at {sym}: {other:?}"),
        }
    }
    // behaviourally: accepts two-journal members, rejects one-journal ones
    let ok = parse_document(
        "<withJournals><gradStudent><firstName>g</firstName><lastName>l</lastName>\
           <publication><title>a</title><author>x</author><journal/></publication>\
           <publication><title>b</title><author>x</author><journal/></publication>\
         </gradStudent></withJournals>",
    )
    .unwrap();
    assert!(sdtd_satisfies(&iv.sdtd, &ok));
    let bad = parse_document(
        "<withJournals><gradStudent><firstName>g</firstName><lastName>l</lastName>\
           <publication><title>a</title><author>x</author><journal/></publication>\
         </gradStudent></withJournals>",
    )
    .unwrap();
    assert!(!sdtd_satisfies(&iv.sdtd, &bad));
}

/// E6 — Example 3.5: the strictly increasing tightness chain for the
/// recursive startsAndEnds view.
#[test]
fn example_3_5_chain() {
    let mut prev = parse_regex("(prolog | conclusion)*").unwrap();
    // T_{k+1} = (prolog, T_k, conclusion)?  — each step is strictly tighter
    for _ in 0..4 {
        let next = Regex::opt(Regex::concat([
            Regex::name(name("prolog")),
            prev.clone(),
            Regex::name(name("conclusion")),
        ]));
        assert!(is_subset(&next, &prev));
        assert!(!is_subset(&prev, &next));
        prev = next;
    }
}

/// E7/E8 — the refine traces of Examples 4.1 and 4.2.
#[test]
fn refine_traces() {
    let d9 = d9_professor();
    let prof = d9.get(name("professor")).unwrap().regex().unwrap();
    let r1 = refine1(prof, name("journal"), 0);
    assert!(equivalent(
        &r1,
        &parse_regex("name, (journal | conference)*, journal, (journal | conference)*").unwrap()
    ));
    let tagged = refine1(&refine1(prof, name("journal"), 1), name("journal"), 2);
    assert!(equivalent(
        &tagged.image(),
        &parse_regex(
            "name, (journal | conference)*, journal, (journal | conference)*, journal, \
             (journal | conference)*"
        )
        .unwrap()
    ));
}

/// E9 — Example 4.3: merging the inferred s-DTD signals on publication and
/// simplifies the professor type to the (D2) form.
#[test]
fn example_4_3() {
    let iv = infer_view_dtd(&q2(), &d1_department()).unwrap();
    assert_eq!(
        iv.merged_names
            .iter()
            .map(|n| n.as_str())
            .collect::<Vec<_>>(),
        ["publication"]
    );
    assert_eq!(
        iv.dtd.get(name("professor")).unwrap().to_string(),
        "firstName, lastName, publication, publication+, teaches"
    );
}

/// E10 — Example 4.4: the InferList chain on (D11)/(Q12).
#[test]
fn example_4_4() {
    let q12 = parse_query(
        "papers = SELECT P WHERE D:<department> G:<gradStudent> \
           X:<publication> P:<title | author/> </> </> </>",
    )
    .unwrap();
    let iv = infer_view_dtd(&q12, &d11_department()).unwrap();
    assert!(equivalent(
        &iv.list_type.image(),
        &parse_regex("(title, author*)*").unwrap()
    ));
    // and the view DTD follows
    let root = iv.dtd.get(name("papers")).unwrap().regex().unwrap();
    assert!(equivalent(root, &parse_regex("(title, author*)*").unwrap()));
    assert!(iv.dtd.get(name("title")).unwrap().is_pcdata());
}

/// XML 1.0 conformance of the inferred outputs: both running examples
/// yield *deterministic* (1-unambiguous) content models after
/// simplification, so the view DTDs can be handed to standard validators.
#[test]
fn inferred_view_dtds_are_xml_deterministic() {
    let d = d1_department();
    for q in [
        q2(),
        parse_query(
            "publist = SELECT P WHERE <department> <name>CS</name> \
               <professor | gradStudent> P:<publication><journal/></publication> </> </>",
        )
        .unwrap(),
    ] {
        let iv = infer_view_dtd(&q, &d).unwrap();
        let bad = mix::dtd::nondeterministic_names(&iv.dtd);
        assert!(
            bad.is_empty(),
            "non-deterministic content models in the inferred view DTD: {bad:?}\n{}",
            iv.dtd
        );
    }
}

/// E11 — the classification side effect across all three outcomes.
#[test]
fn verdicts() {
    let d = d1_department();
    let cases = [
        (
            "v = SELECT P WHERE <department> P:<professor/> </>",
            Verdict::Valid,
        ),
        (
            "v = SELECT P WHERE <department> <name>CS</name> P:<professor/> </>",
            Verdict::Satisfiable,
        ),
        (
            "v = SELECT P WHERE <department> P:<publication/> </>",
            Verdict::Unsatisfiable,
        ),
    ];
    for (src, expected) in cases {
        let q = normalize(&parse_query(src).unwrap(), &d).unwrap();
        assert_eq!(classify_query(&q, &d), expected, "for {src}");
    }
}
