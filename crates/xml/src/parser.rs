//! A from-scratch parser for the paper's XML fragment.
//!
//! Accepts exactly the model of Section 2: elements with an optional `id`
//! attribute and either element content or character content. Mixed
//! content, non-`id` attributes, entities, comments inside content, and
//! processing instructions are rejected with positioned errors (XML
//! prologs `<?xml …?>` and `<!-- … -->` comments *between* elements are
//! tolerated so realistic files parse).

use crate::element::{Content, Document, ElemId, Element};
use mix_relang::symbol::Name;
use std::fmt;

/// A parse error with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the error in the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for XmlError {}

struct P<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, msg: impl Into<String>) -> XmlError {
        XmlError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    fn eat_str(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                match self.src[self.pos..].find("?>") {
                    Some(k) => self.pos += k + 2,
                    None => return Err(self.err("unterminated processing instruction")),
                }
            } else if self.starts_with("<!--") {
                match self.src[self.pos..].find("-->") {
                    Some(k) => self.pos += k + 3,
                    None => return Err(self.err("unterminated comment")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_alphabetic() || c == '_' || c == ':' => {
                self.bump();
            }
            _ => return Err(self.err("expected an element name")),
        }
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || matches!(c, '_' | ':' | '.' | '-'))
        {
            self.bump();
        }
        Ok(&self.src[start..self.pos])
    }

    fn quoted(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ ('"' | '\'')) => {
                self.bump();
                q
            }
            _ => return Err(self.err("expected a quoted attribute value")),
        };
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let v = self.src[start..self.pos].to_owned();
                self.bump();
                return Ok(unescape(&v));
            }
            self.bump();
        }
        Err(self.err("unterminated attribute value"))
    }

    /// Parses `<name …>` up to and including the closing `>`; returns the
    /// element with its content.
    fn element(&mut self) -> Result<Element, XmlError> {
        if !self.eat_str("<") {
            return Err(self.err("expected '<'"));
        }
        let name = self.name()?;
        let elem_name = Name::intern(name);
        let mut id: Option<ElemId> = None;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('/') => {
                    self.bump();
                    if !self.eat_str(">") {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    return Ok(Element {
                        name: elem_name,
                        id: id.unwrap_or_else(ElemId::fresh),
                        content: Content::Elements(vec![]),
                    });
                }
                Some('>') => {
                    self.bump();
                    break;
                }
                _ => {
                    let attr = self
                        .name()
                        .map_err(|_| self.err("expected attribute, '/>' or '>'"))?;
                    self.skip_ws();
                    if !self.eat_str("=") {
                        return Err(self.err("expected '=' after attribute name"));
                    }
                    self.skip_ws();
                    let value = self.quoted()?;
                    if attr.eq_ignore_ascii_case("id") {
                        if id.is_some() {
                            return Err(self.err("duplicate id attribute"));
                        }
                        id = Some(ElemId::named(&value));
                    } else {
                        return Err(self.err(format!(
                            "attribute '{attr}' is outside the paper's model (only 'id' is allowed)"
                        )));
                    }
                }
            }
        }
        let content = self.content(name)?;
        Ok(Element {
            name: elem_name,
            id: id.unwrap_or_else(ElemId::fresh),
            content,
        })
    }

    /// Parses content up to and including `</name>`.
    fn content(&mut self, open_name: &str) -> Result<Content, XmlError> {
        // Decide between character content and element content by scanning
        // for the first non-whitespace character.
        let mut children = Vec::new();
        let mut text: Option<String> = None;
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                // The paper's compact notation allows `</>`.
                self.skip_ws();
                if self.peek() != Some('>') {
                    let n = self.name()?;
                    if n != open_name {
                        return Err(
                            self.err(format!("mismatched close tag: '{n}' vs '{open_name}'"))
                        );
                    }
                    self.skip_ws();
                }
                if !self.eat_str(">") {
                    return Err(self.err("expected '>' in close tag"));
                }
                return Ok(match text {
                    Some(t) => {
                        if !children.is_empty() {
                            return Err(self.err("mixed content is outside the paper's model"));
                        }
                        Content::Text(t)
                    }
                    None => Content::Elements(children),
                });
            }
            match self.peek() {
                None => return Err(self.err(format!("unterminated element '{open_name}'"))),
                Some('<') => {
                    if self.starts_with("<!--") {
                        self.skip_misc()?;
                        continue;
                    }
                    if text.as_deref().is_some_and(|t| !t.trim().is_empty()) {
                        return Err(self.err("mixed content is outside the paper's model"));
                    }
                    text = None;
                    children.push(self.element()?);
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == '<' {
                            break;
                        }
                        self.bump();
                    }
                    let chunk = &self.src[start..self.pos];
                    if chunk.trim().is_empty() && !children.is_empty() {
                        // inter-element whitespace
                        continue;
                    }
                    let t = text.get_or_insert_with(String::new);
                    t.push_str(&unescape(chunk));
                }
            }
        }
    }
}

/// Replaces the five XML entity references (`&lt; &gt; &quot; &apos;
/// &amp;`) with their characters. Shared with the streaming event reader
/// (`mix-stream`), which must decode text identically to this parser.
pub fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_owned();
    }
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Escapes `& < > "` as entity references — the inverse of [`unescape`]
/// for serializer output (apostrophes pass through; `unescape` still
/// decodes `&apos;` from foreign producers).
pub fn escape(s: &str) -> String {
    if !s.contains(['&', '<', '>', '"']) {
        return s.to_owned();
    }
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Parses a single element (no prolog handling).
pub fn parse_element(src: &str) -> Result<Element, XmlError> {
    let mut p = P { src, pos: 0 };
    p.skip_misc()?;
    let e = p.element()?;
    p.skip_misc()?;
    if p.pos < src.len() {
        return Err(p.err("trailing input after root element"));
    }
    Ok(e)
}

/// Parses a document: optional XML prolog/comments, one root element.
/// Also enforces ID uniqueness (Appendix A validity requirement 1).
pub fn parse_document(src: &str) -> Result<Document, XmlError> {
    let root = parse_element(src)?;
    let doc = Document::new(root);
    if let Some(id) = doc.duplicate_id() {
        return Err(XmlError {
            pos: 0,
            msg: format!("duplicate element id '{id}'"),
        });
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_element_tree() {
        let e = parse_element(
            r#"<professor id="p1"><firstName>Yannis</firstName><teaches/></professor>"#,
        )
        .unwrap();
        assert_eq!(e.name.as_str(), "professor");
        assert_eq!(e.id, ElemId::named("p1"));
        assert_eq!(e.children().len(), 2);
        assert_eq!(e.children()[0].pcdata(), Some("Yannis"));
        assert_eq!(e.children()[1].children().len(), 0);
    }

    #[test]
    fn fresh_ids_when_missing() {
        let e = parse_element("<a><b/><b/></a>").unwrap();
        assert_ne!(e.children()[0].id, e.children()[1].id);
    }

    #[test]
    fn paper_style_empty_close() {
        // The paper writes `<journal></>` — anonymous close tags.
        let e = parse_element("<publication><journal></></>").unwrap();
        assert_eq!(e.children()[0].name.as_str(), "journal");
    }

    #[test]
    fn whitespace_between_elements_ignored() {
        let e = parse_element("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(e.children().len(), 2);
        assert!(e.pcdata().is_none());
    }

    #[test]
    fn text_content_preserved() {
        let e = parse_element("<name>  CS &amp; Engineering </name>").unwrap();
        assert_eq!(e.pcdata(), Some("  CS & Engineering "));
    }

    #[test]
    fn mixed_content_rejected() {
        assert!(parse_element("<a>text<b/></a>").is_err());
        assert!(parse_element("<a><b/>text</a>").is_err());
    }

    #[test]
    fn non_id_attributes_rejected() {
        assert!(parse_element(r#"<a href="x"/>"#).is_err());
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(parse_element("<a></b>").is_err());
        assert!(parse_element("<a>").is_err());
    }

    #[test]
    fn prolog_and_comments_tolerated() {
        let d = parse_document("<?xml version=\"1.0\"?>\n<!-- dept -->\n<a><b/></a>").unwrap();
        assert_eq!(d.doc_type().as_str(), "a");
        let d = parse_document("<a><!-- inside --><b/></a>").unwrap();
        assert_eq!(d.root.children().len(), 1);
    }

    #[test]
    fn duplicate_ids_rejected_at_document_level() {
        assert!(parse_document(r#"<a><b id="x"/><c id="x"/></a>"#).is_err());
        assert!(parse_document(r#"<a><b id="x"/><c id="y"/></a>"#).is_ok());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_element("<a/><b/>").is_err());
    }

    #[test]
    fn escapes_roundtrip() {
        assert_eq!(unescape("&lt;&amp;&gt;&quot;&apos;"), "<&>\"'");
        assert_eq!(escape("<&>\""), "&lt;&amp;&gt;&quot;");
        assert_eq!(unescape(&escape("a<b&c")), "a<b&c");
    }
}
