//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Provides the subset of proptest this workspace's property suites use:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`prop_oneof!`], [`strategy::Just`], range and pattern-string
//! strategies, `prop::collection::vec`, `prop::sample::select`,
//! `prop_map`, `prop_recursive`, and `BoxedStrategy`.
//!
//! Differences from upstream, deliberate for the offline build:
//!
//! * generation is seeded per test *name*, so failures reproduce exactly
//!   across runs without a persistence file;
//! * there is no shrinking — the failing input is printed as generated;
//! * pattern-string strategies support the character-class patterns the
//!   suites use (`\PC{n,m}`-style) rather than arbitrary regexes.

pub mod strategy;

/// `prop::…` namespace, mirroring upstream's module layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, TestRng, VecStrategy};
        use std::ops::Range;

        /// A vector of values from `element`, with length drawn from
        /// `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.usize_in(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::{Select, Strategy, TestRng};

        /// Chooses uniformly among the given values.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select() needs at least one option");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.usize_in(0..self.options.len())].clone()
            }
        }
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Test-runner configuration.
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
/// On failure the panic message names the case number and every generated
/// argument, and the run is reproducible (the generator is seeded from the
/// test name).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr);
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __pt_rng = $crate::strategy::TestRng::for_test(stringify!($name));
                for __pt_case in 0..__pt_cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __pt_rng);)+
                    let __pt_args = format!(
                        concat!($(stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let __pt_outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(e) = __pt_outcome {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed with inputs:\n{}",
                            __pt_case + 1, __pt_cfg.cases, stringify!($name), __pt_args
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
