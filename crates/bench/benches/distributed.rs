//! X16 — distributed serving over the mix-net wire protocol: N loopback
//! `serve-source` daemons behind `RemoteWrapper` sources, batched
//! `answer_many` throughput at 1/2/4/8 client threads.
//!
//! Like X15 this is a custom harness (not Criterion): the acceptance
//! criteria are correctness plus ratios landing in a committed artifact,
//! so the run measures with `std::time::Instant`, asserts the distributed
//! answers are byte-identical to an all-in-process run, and writes the
//! machine-readable results to `BENCH_PR3.json` at the workspace root.
//!
//! Methodology: the daemons run in-process (`Server::spawn`) on loopback,
//! so the measured per-exchange cost is real syscalls, framing, and
//! serialization — everything distribution adds except wide-area latency,
//! which X15 already models with `LatencyWrapper`. Thread scaling here is
//! therefore *pipelining* of socket round-trips, and the 1-thread row
//! doubles as the protocol's per-exchange overhead measurement.

use mix_bench::{d1, department_of_size, q2};
use mix_mediator::{Mediator, RemoteWrapper, WrapperService, XmlSource};
use mix_net::{Server, ServerConfig, ServerHandle};
use mix_xmas::{parse_query, Query};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DAEMONS: usize = 4;
const BATCH: usize = 20;
const THREADS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;
const DOC_SIZE: usize = 8;

struct ThroughputRow {
    threads: usize,
    best: Duration,
    qps: f64,
}

fn spawn_daemons() -> Vec<ServerHandle> {
    (0..DAEMONS)
        .map(|_| {
            let source = XmlSource::new(d1(), department_of_size(DOC_SIZE)).expect("valid dept");
            Server::bind(
                "127.0.0.1:0",
                Arc::new(WrapperService::new(source)),
                ServerConfig::default(),
            )
            .expect("bind")
            .spawn()
            .expect("spawn")
        })
        .collect()
}

/// A mediator over `wrappers`, one q2-shaped view per source, plus the
/// query batch the throughput loop serves.
fn build_mediator(wrappers: Vec<Arc<dyn mix_mediator::Wrapper>>) -> (Mediator, Vec<Query>) {
    let mut m = Mediator::new();
    let mut views = Vec::new();
    for (i, w) in wrappers.into_iter().enumerate() {
        let site = format!("site{i}");
        m.add_source(&site, w);
        let mut view = q2();
        view.view_name = mix_relang::name(&format!("wj{i}"));
        m.register_view(&site, &view).expect("view registers");
        views.push(view.view_name);
    }
    let batch: Vec<Query> = (0..BATCH)
        .map(|i| {
            let view = views[i % views.len()];
            parse_query(&format!(
                "b{i} = SELECT X WHERE <{view}> X:<professor/> </{view}>"
            ))
            .expect("batch query parses")
        })
        .collect();
    (m, batch)
}

fn render(a: &Result<mix_mediator::Answer, mix_mediator::MediatorError>) -> String {
    match a {
        Ok(ans) => mix_xml::write_document(&ans.document, mix_xml::WriteConfig::default()),
        Err(e) => format!("error: {e}"),
    }
}

fn main() {
    // the in-process twin: same DTD, same documents, no sockets. The
    // documents must be bit-identical, so department_of_size must be
    // deterministic — it is, and the equality assert would catch drift.
    let locals: Vec<Arc<dyn mix_mediator::Wrapper>> = (0..DAEMONS)
        .map(|_| {
            Arc::new(XmlSource::new(d1(), department_of_size(DOC_SIZE)).expect("valid dept"))
                as Arc<dyn mix_mediator::Wrapper>
        })
        .collect();
    let (local_m, local_batch) = build_mediator(locals);
    let reference: Vec<String> = local_m
        .answer_many_with_threads(&local_batch, 1)
        .iter()
        .map(render)
        .collect();

    let daemons = spawn_daemons();
    let remotes: Vec<Arc<dyn mix_mediator::Wrapper>> = daemons
        .iter()
        .map(|d| {
            Arc::new(RemoteWrapper::connect(&d.addr().to_string()).expect("daemon reachable"))
                as Arc<dyn mix_mediator::Wrapper>
        })
        .collect();
    let (m, batch) = build_mediator(remotes);

    println!(
        "X16 distributed serving ({BATCH}-query batch, {DAEMONS} loopback \
         serve-source daemons):"
    );
    let rows: Vec<ThroughputRow> = THREADS
        .iter()
        .map(|&threads| {
            let mut best = Duration::MAX;
            for _ in 0..REPS {
                let t = Instant::now();
                let answers = m.answer_many_with_threads(&batch, threads);
                best = best.min(t.elapsed());
                let rendered: Vec<String> = answers.iter().map(render).collect();
                assert_eq!(
                    reference, rendered,
                    "distributed answers diverged from the in-process run \
                     at {threads} threads"
                );
            }
            ThroughputRow {
                threads,
                best,
                qps: BATCH as f64 / best.as_secs_f64().max(1e-12),
            }
        })
        .collect();
    let base_qps = rows[0].qps;
    for r in &rows {
        println!(
            "  {} thread(s): {:?}  {:.1} q/s  ({:.2}x vs 1 thread)",
            r.threads,
            r.best,
            r.qps,
            r.qps / base_qps
        );
    }
    println!("  answers byte-identical to the all-in-process run");

    let stats = m.serving_metrics();
    let throughput_json = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"threads\": {}, \"elapsed_ms\": {:.3}, \"qps\": {:.1}, \
                 \"speedup_vs_1\": {:.2} }}",
                r.threads,
                r.best.as_secs_f64() * 1e3,
                r.qps,
                r.qps / base_qps
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"experiment\": \"X16\",\n  \
         \"generated_by\": \"cargo bench -p mix-bench --bench distributed\",\n  \
         \"daemons\": {DAEMONS},\n  \"batch\": {BATCH},\n  \
         \"transport\": \"mix-net loopback TCP, frame version {}\",\n  \
         \"answers_match_in_process\": true,\n  \
         \"throughput\": [\n{}\n  ],\n  \
         \"inference_cache\": {{ \"hits\": {}, \"misses\": {}, \"entries\": {} }},\n  \
         \"automata_memo\": {{ \"dfa_hits\": {}, \"dfa_misses\": {}, \
         \"inclusion_hits\": {}, \"inclusion_misses\": {} }}\n}}",
        mix_net::FRAME_VERSION,
        throughput_json,
        stats.inference.hits,
        stats.inference.misses,
        stats.inference.entries,
        stats.automata.dfa_hits,
        stats.automata.dfa_misses,
        stats.automata.inclusion_hits,
        stats.automata.inclusion_misses,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR3.json");
    std::fs::write(out, json + "\n").expect("write BENCH_PR3.json");
    println!("wrote {out}");

    for d in daemons {
        d.shutdown();
    }
}
