//! Length-prefixed framing.
//!
//! Every message on the wire is one frame:
//!
//! ```text
//! +---------+---------+-------------------+-------------------+
//! | version | type    | payload length    | payload           |
//! | 1 byte  | 1 byte  | 4 bytes, BE u32   | `length` bytes    |
//! +---------+---------+-------------------+-------------------+
//! ```
//!
//! The version byte is checked on *every* frame (it costs nothing and a
//! mid-stream desync then fails loudly instead of misparsing), the
//! length is capped at [`MAX_PAYLOAD`] so a corrupt or hostile peer
//! cannot make the reader allocate gigabytes, and payloads are UTF-8
//! (enforced one layer up, in [`crate::msg`]).

use crate::error::NetError;
use std::io::{Read, Write};

/// Protocol version spoken by this build. Bumped on any *incompatible*
/// frame- or message-level change. Adding a message type is additive —
/// version 1 peers that predate [`MsgType::Stats`] answer it with a
/// `protocol` fault (unknown type) rather than desyncing, so the version
/// byte stays at 1.
pub const FRAME_VERSION: u8 = 1;

/// Hard cap on a single frame's payload (16 MiB) — far above any DTD or
/// document this system ships, low enough to bound a reader's allocation.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// The message type byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgType {
    /// Handshake, both directions. Empty payload.
    Hello = 0,
    /// Request (client → server, empty payload) and response
    /// (server → client, payload = the DTD in compact notation).
    ExportDtd = 1,
    /// Client → server. Payload = an XMAS query in the paper's syntax;
    /// an *empty* payload requests the full exported document (the
    /// wrapper `fetch` operation).
    Query = 2,
    /// Server → client. Payload = the answer document as XML text.
    Answer = 3,
    /// Server → client. Payload = `kind '\n' detail`: a remote fault
    /// using the mediator's stable `SourceError::kind()` labels.
    Err = 4,
    /// Request (client → server, empty payload) and response
    /// (server → client, payload = a `mix-obs/1` JSON snapshot of the
    /// peer's observability registry). Services that export no
    /// statistics answer with an `Err { kind: "unsupported" }`.
    Stats = 5,
    /// Server → client. Payload = the suggested minimum backoff in
    /// decimal milliseconds: the per-client admission token bucket shed
    /// this request. Backpressure, not a fault — the request was never
    /// dispatched. (Additive, like [`MsgType::Stats`]: version stays 1.)
    Throttled = 6,
}

impl MsgType {
    fn from_byte(b: u8) -> Option<MsgType> {
        match b {
            0 => Some(MsgType::Hello),
            1 => Some(MsgType::ExportDtd),
            2 => Some(MsgType::Query),
            3 => Some(MsgType::Answer),
            4 => Some(MsgType::Err),
            5 => Some(MsgType::Stats),
            6 => Some(MsgType::Throttled),
            _ => None,
        }
    }
}

/// Writes one frame and flushes it.
pub fn write_frame(w: &mut impl Write, ty: MsgType, payload: &[u8]) -> Result<(), NetError> {
    if payload.len() as u64 > MAX_PAYLOAD as u64 {
        return Err(NetError::protocol(format!(
            "refusing to send a {} byte payload (cap is {MAX_PAYLOAD})",
            payload.len()
        )));
    }
    let mut header = [0u8; 6];
    header[0] = FRAME_VERSION;
    header[1] = ty as u8;
    header[2..6].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. Transport errors (including clean EOF before a full
/// header, which surfaces as `UnexpectedEof`) come back as
/// [`NetError::Io`]; anything structurally wrong with the bytes as
/// [`NetError::Protocol`].
pub fn read_frame(r: &mut impl Read) -> Result<(MsgType, Vec<u8>), NetError> {
    let mut header = [0u8; 6];
    r.read_exact(&mut header)?;
    if header[0] != FRAME_VERSION {
        // distinct from Protocol: a version mismatch is a *deployment*
        // incompatibility, and the resilience layer must not treat it as
        // a retryable source fault
        return Err(NetError::VersionMismatch {
            theirs: header[0],
            ours: FRAME_VERSION,
        });
    }
    let ty = MsgType::from_byte(header[1])
        .ok_or_else(|| NetError::protocol(format!("unknown message type {}", header[1])))?;
    let len = u32::from_be_bytes([header[2], header[3], header[4], header[5]]);
    if len > MAX_PAYLOAD {
        return Err(NetError::protocol(format!(
            "frame announces a {len} byte payload (cap is {MAX_PAYLOAD})"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok((ty, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MsgType::Query, b"q = SELECT X WHERE X:<a/>").unwrap();
        write_frame(&mut buf, MsgType::Hello, b"").unwrap();
        let mut r = Cursor::new(buf);
        let (ty, p) = read_frame(&mut r).unwrap();
        assert_eq!(ty, MsgType::Query);
        assert_eq!(p, b"q = SELECT X WHERE X:<a/>");
        let (ty, p) = read_frame(&mut r).unwrap();
        assert_eq!(ty, MsgType::Hello);
        assert!(p.is_empty());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MsgType::Hello, b"").unwrap();
        buf[0] = 9;
        match read_frame(&mut Cursor::new(buf)) {
            Err(NetError::VersionMismatch { theirs: 9, ours }) => {
                assert_eq!(ours, FRAME_VERSION)
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn unknown_type_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MsgType::Hello, b"").unwrap();
        buf[1] = 77;
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn oversized_announcement_rejected_without_allocating() {
        let mut buf = vec![FRAME_VERSION, MsgType::Answer as u8];
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn truncated_frame_is_a_transport_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MsgType::Answer, b"<r><a>1</a></r>").unwrap();
        buf.truncate(buf.len() - 4); // disconnect mid-payload
        match read_frame(&mut Cursor::new(buf)) {
            Err(NetError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
            }
            other => panic!("expected io error, got {other:?}"),
        }
    }
}
