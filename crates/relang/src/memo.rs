//! Memoized automata construction and language-relation results.
//!
//! The serving layer answers *many* queries over the same handful of
//! source DTDs, so the same content-model regexes flow through
//! [`crate::is_subset`] / [`crate::equivalent`] over and over — and DFA
//! construction (subset construction + minimization) dominates the cost
//! of tighten/collapse/merge. This module keeps two process-wide memo
//! tables behind `parking_lot` locks:
//!
//! * a **DFA cache** keyed on `(regex, alphabet)` — the minimized complete
//!   DFA for a regex over an explicit alphabet is pure, so it is shared
//!   across every inclusion check that needs it;
//! * an **inclusion cache** keyed on `(a, b)` holding the boolean result
//!   of `L(a) ⊆ L(b)` — the collapse/equivalence passes re-ask the same
//!   pairs constantly (every pipeline run re-derives the same
//!   specializations).
//!
//! Both tables are bounded: when a table reaches its capacity it is
//! flushed wholesale (counted as an eviction) rather than growing without
//! limit — the working set of a mediator is small and re-warming is
//! cheap. Results are pure functions of their keys, so memoization never
//! changes any answer; `tests/serving_prop.rs` property-checks this
//! against the uncached procedures.
//!
//! Hit/miss/eviction accounting lives in the process-wide
//! [`mix_obs::global()`] registry (the memo is itself process-wide, so
//! the global registry is its natural home); [`memo_stats`] remains as a
//! typed view over those counters for the serving layer and benches.

use crate::ast::Regex;
use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::symbol::Sym;
use mix_obs::Counter;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Entries kept per table before a wholesale flush.
const DFA_CAPACITY: usize = 4096;
const INCLUSION_CAPACITY: usize = 1 << 15;

/// DFA-table key: the regex plus the (shared) alphabet it was built over.
type DfaKey = (Regex, Vec<Sym>);

struct Memo {
    dfas: RwLock<HashMap<DfaKey, Arc<Dfa>>>,
    inclusions: RwLock<HashMap<(Regex, Regex), bool>>,
    dfa_hits: Counter,
    dfa_misses: Counter,
    inclusion_hits: Counter,
    inclusion_misses: Counter,
    evictions: Counter,
}

fn memo() -> &'static Memo {
    static MEMO: OnceLock<Memo> = OnceLock::new();
    MEMO.get_or_init(|| {
        let obs = mix_obs::global();
        Memo {
            dfas: RwLock::new(HashMap::new()),
            inclusions: RwLock::new(HashMap::new()),
            dfa_hits: obs.counter("relang_dfa_memo_hits_total"),
            dfa_misses: obs.counter("relang_dfa_memo_misses_total"),
            inclusion_hits: obs.counter("relang_inclusion_memo_hits_total"),
            inclusion_misses: obs.counter("relang_inclusion_memo_misses_total"),
            evictions: obs.counter("relang_memo_evictions_total"),
        }
    })
}

/// Counters of the process-wide automata memo tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// DFA-cache lookups served from the table.
    pub dfa_hits: u64,
    /// DFA-cache lookups that had to run subset construction.
    pub dfa_misses: u64,
    /// Inclusion-result lookups served from the table.
    pub inclusion_hits: u64,
    /// Inclusion-result lookups that had to run the product check.
    pub inclusion_misses: u64,
    /// Wholesale table flushes triggered by the capacity bound.
    pub evictions: u64,
}

/// A snapshot of the memo counters (a typed view over the
/// `relang_*_memo_*` counters of [`mix_obs::global()`]).
pub fn memo_stats() -> MemoStats {
    let m = memo();
    MemoStats {
        dfa_hits: m.dfa_hits.get(),
        dfa_misses: m.dfa_misses.get(),
        inclusion_hits: m.inclusion_hits.get(),
        inclusion_misses: m.inclusion_misses.get(),
        evictions: m.evictions.get(),
    }
}

/// Drops every memoized DFA and inclusion result (counters are kept).
/// Only needed by benchmarks that want a genuinely cold start.
pub fn clear_memo() {
    let m = memo();
    m.dfas.write().clear();
    m.inclusions.write().clear();
}

/// The minimized complete DFA of `r` over `alphabet`, shared via the
/// process-wide cache. `alphabet` must be sorted and must contain every
/// symbol of `r` (as guaranteed by the callers in [`crate::ops`]).
pub fn memoized_dfa(r: &Regex, alphabet: &[Sym]) -> Arc<Dfa> {
    let m = memo();
    {
        let table = m.dfas.read();
        // the tuple key forces a clone-free probe via a scratch borrow
        if let Some(dfa) = table.get(&(r.clone(), alphabet.to_vec())) {
            m.dfa_hits.inc();
            return Arc::clone(dfa);
        }
    }
    m.dfa_misses.inc();
    let built = Arc::new(Dfa::from_nfa(&Nfa::from_regex(r), alphabet).minimize());
    let mut table = m.dfas.write();
    if table.len() >= DFA_CAPACITY {
        table.clear();
        m.evictions.inc();
    }
    table
        .entry((r.clone(), alphabet.to_vec()))
        .or_insert_with(|| Arc::clone(&built));
    built
}

/// Memoized `L(a) ⊆ L(b)`; the uncached procedure lives in [`crate::ops`].
pub fn memoized_subset(a: &Regex, b: &Regex) -> bool {
    if a.is_empty_lang() {
        return true;
    }
    if a == b {
        return true;
    }
    let m = memo();
    {
        let table = m.inclusions.read();
        if let Some(&result) = table.get(&(a.clone(), b.clone())) {
            m.inclusion_hits.inc();
            return result;
        }
    }
    m.inclusion_misses.inc();
    let alpha = crate::ops::shared_alphabet(a, b);
    let da = memoized_dfa(a, &alpha);
    let db = memoized_dfa(b, &alpha);
    let result = da.product(&db.complement()).language_is_empty();
    let mut table = m.inclusions.write();
    if table.len() >= INCLUSION_CAPACITY {
        table.clear();
        m.evictions.inc();
    }
    table.insert((a.clone(), b.clone()), result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::shared_alphabet;
    use crate::parser::parse_regex;

    fn r(s: &str) -> Regex {
        parse_regex(s).unwrap()
    }

    #[test]
    fn memoized_dfa_agrees_with_direct_construction() {
        for src in [
            "a",
            "a, b",
            "(a | b)*, c",
            "title, author+, (journal | conference)",
            "(a?, b)*",
        ] {
            let re = r(src);
            let alpha: Vec<Sym> = re.syms().into_iter().collect();
            let cached = memoized_dfa(&re, &alpha);
            let direct = Dfa::from_nfa(&Nfa::from_regex(&re), &alpha).minimize();
            for w in direct.enumerate_words(4, 200) {
                assert!(cached.accepts(&w), "{src} lost {w:?}");
            }
            assert_eq!(cached.len(), direct.len(), "{src}");
        }
    }

    #[test]
    fn repeated_lookups_hit() {
        let a = r("x1, (x2 | x3)*");
        let alpha: Vec<Sym> = a.syms().into_iter().collect();
        let _ = memoized_dfa(&a, &alpha);
        let before = memo_stats();
        let _ = memoized_dfa(&a, &alpha);
        let after = memo_stats();
        assert!(after.dfa_hits > before.dfa_hits);
    }

    #[test]
    fn memoized_subset_matches_semantics() {
        assert!(memoized_subset(&r("a, a"), &r("a*")));
        assert!(!memoized_subset(&r("a*"), &r("a, a")));
        assert!(memoized_subset(&Regex::Empty, &r("b")));
        // cached round answers identically
        assert!(memoized_subset(&r("a, a"), &r("a*")));
        assert!(!memoized_subset(&r("a*"), &r("a, a")));
    }

    #[test]
    fn distinct_alphabets_get_distinct_dfas() {
        let re = r("q1");
        let own: Vec<Sym> = re.syms().into_iter().collect();
        let wider = shared_alphabet(&re, &r("q1 | q2"));
        let d1 = memoized_dfa(&re, &own);
        let d2 = memoized_dfa(&re, &wider);
        assert_eq!(d1.alphabet.len(), 1);
        assert_eq!(d2.alphabet.len(), 2);
    }

    #[test]
    fn clear_memo_empties_tables() {
        let a = r("z9, z8");
        let alpha: Vec<Sym> = a.syms().into_iter().collect();
        let _ = memoized_dfa(&a, &alpha);
        clear_memo();
        let before = memo_stats();
        let _ = memoized_dfa(&a, &alpha);
        let after = memo_stats();
        assert!(
            after.dfa_misses > before.dfa_misses,
            "cleared entry re-built"
        );
    }
}
