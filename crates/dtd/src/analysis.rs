//! Static analyses of DTDs: productivity, reachability, and usability.
//!
//! * A name is **productive** when it derives at least one *finite*
//!   document (a recursive name with no base case derives none).
//! * A name is **usable** when it actually occurs in some valid document
//!   of the DTD: it must be productive and reachable from the document
//!   type through contexts whose mandatory siblings are productive too.
//!
//! These analyses restrict the per-type language-inclusion checks so that
//! [`crate::compare::tighter_than`] is exact (DESIGN.md system #9).

use crate::model::{ContentModel, Dtd};
use mix_relang::ast::Regex;
use mix_relang::symbol::Name;
use std::collections::HashSet;

/// Does `L(r)` contain a word using only names in `allowed`?
pub(crate) fn has_word_over(r: &Regex, allowed: &HashSet<Name>) -> bool {
    match r {
        Regex::Empty => false,
        Regex::Epsilon => true,
        Regex::Sym(s) => allowed.contains(&s.name),
        Regex::Concat(v) => v.iter().all(|x| has_word_over(x, allowed)),
        Regex::Alt(v) => v.iter().any(|x| has_word_over(x, allowed)),
        Regex::Star(_) | Regex::Opt(_) => true,
        Regex::Plus(x) => has_word_over(x, allowed),
    }
}

/// Does `L(r)` contain a word over `allowed ∪ {n}` that *mentions* `n`?
pub(crate) fn can_occur(r: &Regex, n: Name, allowed: &HashSet<Name>) -> bool {
    match r {
        Regex::Empty | Regex::Epsilon => false,
        Regex::Sym(s) => s.name == n,
        Regex::Concat(v) => v.iter().enumerate().any(|(i, x)| {
            can_occur(x, n, allowed)
                && v.iter()
                    .enumerate()
                    .all(|(j, y)| j == i || has_word_over(y, allowed))
        }),
        Regex::Alt(v) => v.iter().any(|x| can_occur(x, n, allowed)),
        Regex::Star(x) | Regex::Opt(x) | Regex::Plus(x) => can_occur(x, n, allowed),
    }
}

/// The set of productive names: those deriving at least one finite document.
pub fn productive(d: &Dtd) -> HashSet<Name> {
    let mut prod: HashSet<Name> = HashSet::new();
    loop {
        let mut changed = false;
        for (n, m) in d.types.iter() {
            if prod.contains(&n) {
                continue;
            }
            let ok = match m {
                ContentModel::Pcdata => true,
                ContentModel::Elements(r) => has_word_over(r, &prod),
            };
            if ok {
                prod.insert(n);
                changed = true;
            }
        }
        if !changed {
            return prod;
        }
    }
}

/// The set of usable names: those occurring in at least one valid finite
/// document of `d`.
pub fn usable(d: &Dtd) -> HashSet<Name> {
    let prod = productive(d);
    let mut out: HashSet<Name> = HashSet::new();
    if !prod.contains(&d.doc_type) {
        return out; // the DTD describes no documents at all
    }
    out.insert(d.doc_type);
    let mut frontier = vec![d.doc_type];
    while let Some(n) = frontier.pop() {
        if let Some(ContentModel::Elements(r)) = d.get(n) {
            for child in r.names() {
                if !out.contains(&child) && prod.contains(&child) && can_occur(r, child, &prod) {
                    out.insert(child);
                    frontier.push(child);
                }
            }
        }
    }
    out
}

/// Does the DTD describe at least one document?
pub fn describes_some_document(d: &Dtd) -> bool {
    productive(d).contains(&d.doc_type)
}

/// Names whose content models are *not* 1-unambiguous — i.e. would be
/// rejected by an XML 1.0 validator's determinism rule. Inferred view
/// DTDs can trip this right after merging; the simplifier usually
/// restores determinism (see `mix_relang::determinism`).
pub fn nondeterministic_names(d: &Dtd) -> Vec<Name> {
    d.types
        .iter()
        .filter_map(|(n, m)| match m {
            ContentModel::Elements(r) if !mix_relang::is_deterministic(r) => Some(n),
            _ => None,
        })
        .collect()
}

/// Restricts a content model to the given alphabet: occurrences of other
/// names become `∅` and are normalized away. `L(restrict(r, S)) =
/// L(r) ∩ S*`, which is exactly the set of child sequences realizable when
/// only `S` names can appear in a document.
pub fn restrict(r: &Regex, allowed: &HashSet<Name>) -> Regex {
    r.map_syms(&mut |s| {
        if allowed.contains(&s.name) {
            Regex::Sym(s)
        } else {
            Regex::Empty
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_compact;
    use mix_relang::symbol::name;

    fn names(set: &HashSet<Name>) -> Vec<&'static str> {
        let mut v: Vec<&str> = set.iter().map(|n| n.as_str()).collect();
        v.sort();
        v
    }

    #[test]
    fn productive_with_base_case() {
        // section is recursive but has the empty repetition as base case.
        let d = crate::paper::section_recursive();
        let p = productive(&d);
        assert!(p.contains(&name("section")));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn unproductive_infinite_recursion() {
        // loop requires another loop forever: no finite document.
        let d = parse_compact("{<r : loop?> <loop : loop>}").unwrap();
        let p = productive(&d);
        assert!(!p.contains(&name("loop")));
        assert!(p.contains(&name("r")));
        assert!(describes_some_document(&d));
    }

    #[test]
    fn unproductive_root_means_no_documents() {
        let d = parse_compact("{<r : r>}").unwrap();
        assert!(!describes_some_document(&d));
        assert!(usable(&d).is_empty());
    }

    #[test]
    fn usable_excludes_unreachable() {
        let d = parse_compact("{<r : a> <a : PCDATA> <island : PCDATA>}").unwrap();
        assert_eq!(names(&usable(&d)), ["a", "r"]);
    }

    #[test]
    fn usable_excludes_names_blocked_by_unproductive_sibling() {
        // b can only appear next to a mandatory unproductive u, so b is
        // never part of a finite document.
        let d = parse_compact("{<r : (u, b)?> <u : u> <b : PCDATA>}").unwrap();
        assert_eq!(names(&usable(&d)), ["r"]);
    }

    #[test]
    fn usable_via_alternative_branch() {
        let d = parse_compact("{<r : (u, b) | c> <u : u> <b : PCDATA> <c : PCDATA>}").unwrap();
        assert_eq!(names(&usable(&d)), ["c", "r"]);
    }

    #[test]
    fn paper_d1_everything_usable() {
        let d = crate::paper::d1_department();
        let u = usable(&d);
        assert_eq!(u.len(), d.types.len());
    }

    #[test]
    fn restrict_drops_letters() {
        let r = mix_relang::parse_regex("a, (b | c)*, d?").unwrap();
        let allowed: HashSet<Name> = [name("a"), name("b")].into_iter().collect();
        let out = restrict(&r, &allowed);
        assert_eq!(out.to_string(), "a, b*");
        // restricting away a mandatory letter empties the language
        let allowed: HashSet<Name> = [name("b")].into_iter().collect();
        assert!(restrict(&r, &allowed).is_empty_lang());
    }
}
