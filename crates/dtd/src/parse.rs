//! DTD parsers: real XML `<!ELEMENT …>` syntax and the paper's compact
//! `<name : model>` notation (which is also what our `Display` emits).
//!
//! Names that are *used* but never declared are completed with `PCDATA`
//! definitions — the paper does this implicitly (D1 never declares
//! `firstName`, `title`, …).

use crate::model::{ContentModel, Dtd, SDtd};
use mix_relang::ast::Regex;
use mix_relang::parser::ParseError;
use mix_relang::symbol::Name;
use std::fmt;

/// A DTD parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DtdError {
    /// Byte offset of the error in the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for DtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DTD parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for DtdError {}

impl From<ParseError> for DtdError {
    fn from(e: ParseError) -> DtdError {
        DtdError {
            pos: e.pos,
            msg: e.msg,
        }
    }
}

/// One parsed declaration before assembly.
enum Decl {
    Pcdata,
    Any,
    Model(Regex),
}

fn finish_dtd(
    doc_type: Option<Name>,
    decls: Vec<(mix_relang::Sym, Decl)>,
    complete_pcdata: bool,
) -> Result<(Option<Dtd>, SDtd), DtdError> {
    let doc_type = doc_type
        .or_else(|| decls.first().map(|(s, _)| s.name))
        .ok_or(DtdError {
            pos: 0,
            msg: "empty DTD".into(),
        })?;
    // ANY is a macro for (n1 | … | nk)* over all declared names (Remark 1).
    let all_names: Vec<Name> = {
        let mut v: Vec<Name> = decls.iter().map(|(s, _)| s.name).collect();
        v.dedup();
        v
    };
    let any_model = Regex::star(Regex::alt(all_names.iter().map(|&n| Regex::name(n))));
    let mut sdtd = SDtd::new(doc_type.untagged());
    for (sym, d) in decls {
        let m = match d {
            Decl::Pcdata => ContentModel::Pcdata,
            Decl::Any => ContentModel::Elements(any_model.clone()),
            Decl::Model(r) => ContentModel::Elements(r),
        };
        if sdtd.types.insert(sym, m).is_some() {
            return Err(DtdError {
                pos: 0,
                msg: format!("duplicate declaration for '{sym}'"),
            });
        }
    }
    if complete_pcdata {
        let used: Vec<mix_relang::Sym> = sdtd
            .types
            .iter()
            .flat_map(|(_, m)| {
                m.regex()
                    .map(|r| r.syms().into_iter().collect::<Vec<_>>())
                    .unwrap_or_default()
            })
            .collect();
        for s in used {
            if !sdtd.types.contains(s) {
                sdtd.types.insert(s, ContentModel::Pcdata);
            }
        }
    }
    // If every key is untagged this is a plain DTD as well.
    let plain = if sdtd.types.keys().all(|k| k.is_untagged()) {
        let mut d = Dtd::new(doc_type);
        for (s, m) in sdtd.types.iter() {
            d.types.insert(s.name, m.clone());
        }
        Some(d)
    } else {
        None
    };
    Ok((plain, sdtd))
}

/// Parses the paper's compact notation, e.g.
///
/// ```text
/// {<department : name, professor+, gradStudent+, course*>
///  <professor : firstName, lastName, publication+, teaches>}
/// ```
///
/// Tagged entries (`<publication^1 : …>`) make it an s-DTD; `parse_compact`
/// rejects those, [`parse_compact_sdtd`] accepts them. The document type is
/// the first entry unless an explicit `(document type: name)` annotation —
/// which `Display` emits — names another one. `PCDATA`, `#PCDATA`, `EMPTY`
/// and `ANY` keywords are understood; used-but-undeclared names become
/// `PCDATA`.
pub fn parse_compact_sdtd(src: &str) -> Result<SDtd, DtdError> {
    let mut c = mix_relang::parser::Cursor::new(src);
    let braced = c.eat('{');
    let doc_type = parse_doc_type_annotation(&mut c)?;
    let mut decls: Vec<(mix_relang::Sym, Decl)> = Vec::new();
    loop {
        if braced && c.eat('}') {
            break;
        }
        if c.at_end() {
            if braced {
                return Err(DtdError {
                    pos: c.pos(),
                    msg: "missing closing '}'".into(),
                });
            }
            break;
        }
        c.expect('<').map_err(DtdError::from)?;
        let n = c.name().map_err(DtdError::from)?;
        let name = Name::intern(n);
        let sym = if c.eat('^') {
            let mut digits = String::new();
            while matches!(c.peek(), Some(ch) if ch.is_ascii_digit()) {
                digits.push(c.bump().expect("peeked digit"));
            }
            let tag: u32 = digits.parse().map_err(|_| DtdError {
                pos: c.pos(),
                msg: "expected a tag number after '^'".into(),
            })?;
            name.tagged(tag)
        } else {
            name.untagged()
        };
        c.expect(':').map_err(DtdError::from)?;
        let r = c.alt().map_err(DtdError::from)?;
        c.expect('>').map_err(DtdError::from)?;
        decls.push((sym, classify(r)));
    }
    let (_, sdtd) = finish_dtd(doc_type, decls, true)?;
    Ok(sdtd)
}

/// Eats an optional `(document type: name)` annotation — the form `Display`
/// puts right after the opening brace so round-trips preserve a document
/// type that is not the first declaration.
fn parse_doc_type_annotation(
    c: &mut mix_relang::parser::Cursor<'_>,
) -> Result<Option<Name>, DtdError> {
    if !c.eat('(') {
        return Ok(None);
    }
    let kw1 = c.name().map_err(DtdError::from)?.to_owned();
    // ':' is a name character in this grammar, so `name()` reads "type:"
    // as one token when nothing separates them
    let kw2 = c.name().map_err(DtdError::from)?.to_owned();
    if kw1 != "document" || !(kw2 == "type" || kw2 == "type:") {
        return Err(DtdError {
            pos: c.pos(),
            msg: format!("expected '(document type: …)', got '({kw1} {kw2} …)'"),
        });
    }
    if kw2 == "type" {
        c.expect(':').map_err(DtdError::from)?;
    }
    let n = c.name().map_err(DtdError::from)?;
    let name = Name::intern(n);
    c.expect(')').map_err(DtdError::from)?;
    Ok(Some(name))
}

/// Like [`parse_compact_sdtd`] but requires all entries untagged and returns
/// a plain [`Dtd`].
pub fn parse_compact(src: &str) -> Result<Dtd, DtdError> {
    let sdtd = parse_compact_sdtd(src)?;
    if let Some(t) = sdtd.types.keys().find(|k| !k.is_untagged()) {
        return Err(DtdError {
            pos: 0,
            msg: format!("'{t}' is tagged: this is a specialized DTD, not a plain DTD"),
        });
    }
    let mut d = Dtd::new(sdtd.doc_type.name);
    for (s, m) in sdtd.types.iter() {
        d.types.insert(s.name, m.clone());
    }
    Ok(d)
}

/// Recognizes the PCDATA / EMPTY / ANY keywords, which the regex parser
/// reads as single-name expressions.
fn classify(r: Regex) -> Decl {
    if let Regex::Sym(s) = &r {
        match s.name.as_str() {
            "PCDATA" | "#PCDATA" => return Decl::Pcdata,
            "EMPTY" => return Decl::Model(Regex::Epsilon),
            "ANY" => return Decl::Any,
            _ => {}
        }
    }
    Decl::Model(r)
}

/// Parses real XML DTD syntax:
///
/// ```text
/// <!DOCTYPE department [
///   <!ELEMENT department (name, professor+, gradStudent+, course*)>
///   <!ELEMENT name (#PCDATA)>
/// ]>
/// ```
///
/// A bare sequence of `<!ELEMENT …>` declarations (no `DOCTYPE` wrapper) is
/// also accepted, with the first declaration giving the document type.
/// `ATTLIST` declarations are skipped (the model keeps only `id`
/// attributes, Section 2), comments are ignored.
pub fn parse_xml_dtd(src: &str) -> Result<Dtd, DtdError> {
    let mut c = mix_relang::parser::Cursor::new(src);
    let mut doc_type: Option<Name> = None;
    let mut in_subset = false;
    let mut decls: Vec<(mix_relang::Sym, Decl)> = Vec::new();
    loop {
        if c.at_end() {
            break;
        }
        if in_subset && c.eat(']') {
            c.expect('>').map_err(DtdError::from)?;
            in_subset = false;
            continue;
        }
        c.expect('<').map_err(DtdError::from)?;
        c.expect('!').map_err(DtdError::from)?;
        if c.eat('-') {
            // comment `<!-- … -->`
            c.expect('-').map_err(DtdError::from)?;
            let mut last2 = ['\0'; 2];
            loop {
                match c.bump() {
                    None => {
                        return Err(DtdError {
                            pos: c.pos(),
                            msg: "unterminated comment".into(),
                        })
                    }
                    Some('>') if last2 == ['-', '-'] => break,
                    Some(ch) => {
                        last2 = [last2[1], ch];
                    }
                }
            }
            continue;
        }
        let kw = c.name().map_err(DtdError::from)?;
        match kw {
            "DOCTYPE" => {
                let n = c.name().map_err(DtdError::from)?;
                doc_type = Some(Name::intern(n));
                c.expect('[').map_err(DtdError::from)?;
                in_subset = true;
            }
            "ELEMENT" => {
                let n = c.name().map_err(DtdError::from)?;
                let name = Name::intern(n);
                let r = c.alt().map_err(DtdError::from)?;
                c.expect('>').map_err(DtdError::from)?;
                decls.push((name.untagged(), classify(r)));
            }
            "ATTLIST" => {
                // skip to the closing '>'
                loop {
                    match c.bump() {
                        Some('>') => break,
                        Some(_) => {}
                        None => {
                            return Err(DtdError {
                                pos: c.pos(),
                                msg: "unterminated ATTLIST".into(),
                            })
                        }
                    }
                }
            }
            other => {
                return Err(DtdError {
                    pos: c.pos(),
                    msg: format!("unsupported declaration '<!{other} …>'"),
                })
            }
        }
    }
    let (plain, _) = finish_dtd(doc_type, decls, true)?;
    plain.ok_or(DtdError {
        pos: 0,
        msg: "XML DTDs cannot contain tagged names".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_relang::symbol::name;

    /// The paper's department DTD (D1).
    const D1: &str = "{\
        <department : name, professor+, gradStudent+, course*>\
        <professor : firstName, lastName, publication+, teaches>\
        <gradStudent : firstName, lastName, publication+>\
        <publication : title, author+, (journal | conference)>}";

    #[test]
    fn parse_d1_compact() {
        let d = parse_compact(D1).unwrap();
        assert_eq!(d.doc_type, name("department"));
        // 4 declared + name, firstName, lastName, publication?, teaches,
        // title, author, journal, conference, course completed as PCDATA
        assert!(d.types.len() >= 4);
        assert!(d.get(name("firstName")).unwrap().is_pcdata());
        assert!(d.get(name("journal")).unwrap().is_pcdata());
        assert!(d.undefined_names().is_empty());
        let prof = d.get(name("professor")).unwrap().regex().unwrap();
        assert_eq!(
            prof.to_string(),
            "firstName, lastName, publication+, teaches"
        );
    }

    #[test]
    fn doc_type_annotation_overrides_first_declaration() {
        let d = parse_compact("{ (document type: r)\n <a : PCDATA> <r : a*>}").unwrap();
        assert_eq!(d.doc_type, name("r"));
        // a malformed annotation fails loudly instead of being skipped
        assert!(parse_compact("{(doc kind: r) <r : a*>}").is_err());
    }

    #[test]
    fn compact_without_braces() {
        let d = parse_compact("<r : a*> <a : PCDATA>").unwrap();
        assert_eq!(d.doc_type, name("r"));
        assert!(d.get(name("a")).unwrap().is_pcdata());
    }

    #[test]
    fn compact_sdtd_with_tags() {
        let s = parse_compact_sdtd(
            "{<withJournals : professor*>\
              <professor : publication*, publication^1, publication*>\
              <publication : title, (journal | conference)>\
              <publication^1 : title, journal>}",
        )
        .unwrap();
        assert_eq!(s.doc_type, name("withJournals").untagged());
        assert_eq!(s.specializations(name("publication")).len(), 2);
        // plain parse of the same text must fail
        assert!(parse_compact("{<a : b^1> <b^1 : PCDATA>}").is_err());
    }

    #[test]
    fn keywords() {
        let d = parse_compact("{<r : a, b, c> <a : EMPTY> <b : ANY> <c : #PCDATA>}").unwrap();
        assert_eq!(d.get(name("a")).unwrap().regex().unwrap(), &Regex::Epsilon);
        assert!(d.get(name("c")).unwrap().is_pcdata());
        let b = d.get(name("b")).unwrap().regex().unwrap();
        // ANY = (r | a | b | c)*
        assert!(b.to_string().contains('*'));
        assert_eq!(b.names().len(), 4);
    }

    #[test]
    fn parse_xml_syntax() {
        let src = r#"
            <!DOCTYPE department [
              <!-- the running example -->
              <!ELEMENT department (name, professor+, gradStudent+, course*)>
              <!ELEMENT professor (firstName, lastName, publication+, teaches)>
              <!ELEMENT publication (title, author+, (journal | conference))>
              <!ELEMENT name (#PCDATA)>
              <!ATTLIST professor id ID #REQUIRED>
            ]>
        "#;
        let d = parse_xml_dtd(src).unwrap();
        assert_eq!(d.doc_type, name("department"));
        assert!(d.get(name("name")).unwrap().is_pcdata());
        assert!(d.get(name("title")).unwrap().is_pcdata()); // completed
        assert!(d.undefined_names().is_empty());
    }

    #[test]
    fn xml_syntax_without_doctype() {
        let d = parse_xml_dtd("<!ELEMENT r (a*)> <!ELEMENT a (#PCDATA)>").unwrap();
        assert_eq!(d.doc_type, name("r"));
    }

    #[test]
    fn duplicate_declarations_rejected() {
        assert!(parse_compact("{<r : a> <r : b>}").is_err());
        assert!(parse_xml_dtd("<!ELEMENT r (a)> <!ELEMENT r (b)>").is_err());
    }

    #[test]
    fn empty_and_garbage_rejected() {
        assert!(parse_compact("").is_err());
        assert!(parse_compact("{}").is_err());
        assert!(parse_compact("{<r a>}").is_err());
        assert!(parse_xml_dtd("<!WIDGET r>").is_err());
    }
}
