//! Random DTD generation — the other half of the workload generator
//! (random DTD → random documents → random queries → soundness check) —
//! and size-targeted *chunked* document generation, which writes a valid
//! document of roughly a requested byte size straight into an
//! [`io::Write`] sink without ever materializing it (the workload source
//! for the streaming-evaluation experiments).

use crate::analysis::{describes_some_document, productive, restrict};
use crate::model::{ContentModel, Dtd};
use crate::sample::{min_cost, minimal_sizes, minimal_word};
use mix_relang::ast::Regex;
use mix_relang::symbol::Name;
use mix_xml::escape;
use rand::Rng;
use std::collections::HashMap;
use std::io::{self, Write};

/// Knobs for [`random_dtd`].
#[derive(Debug, Clone)]
pub struct DtdGenConfig {
    /// Number of element names.
    pub names: usize,
    /// Fraction of non-root names that are PCDATA leaves.
    pub pcdata_fraction: f64,
    /// Maximum depth of a generated content-model regex.
    pub regex_depth: usize,
    /// Probability that a name reference may point *upward* in the layer
    /// order, creating recursion.
    pub recursion: f64,
}

impl Default for DtdGenConfig {
    fn default() -> Self {
        DtdGenConfig {
            names: 8,
            pcdata_fraction: 0.4,
            regex_depth: 3,
            recursion: 0.1,
        }
    }
}

/// Generates a random DTD that is guaranteed to describe at least one
/// document (productive document type).
///
/// Names are layered `n0, n1, …`; a content model of `n_i` mostly refers to
/// later layers so that productivity is the common case, with an optional
/// recursion probability for back-references. Generation retries until the
/// document type is productive (practically immediate).
pub fn random_dtd(rng: &mut impl Rng, cfg: &DtdGenConfig) -> Dtd {
    loop {
        let d = attempt(rng, cfg);
        if describes_some_document(&d) {
            return d;
        }
    }
}

fn attempt(rng: &mut impl Rng, cfg: &DtdGenConfig) -> Dtd {
    let n = cfg.names.max(2);
    let names: Vec<Name> = (0..n).map(|i| Name::intern(&format!("n{i}"))).collect();
    let mut dtd = Dtd::new(names[0]);
    for (i, &name) in names.iter().enumerate() {
        let is_leaf = i > 0 && rng.gen_bool(cfg.pcdata_fraction);
        if is_leaf || i == n - 1 {
            dtd.types.insert(name, ContentModel::Pcdata);
        } else {
            let r = random_model(rng, cfg, &names, i);
            dtd.types.insert(name, ContentModel::Elements(r));
        }
    }
    dtd
}

fn pick_ref(rng: &mut impl Rng, cfg: &DtdGenConfig, names: &[Name], layer: usize) -> Regex {
    let idx = if layer + 1 < names.len() && !rng.gen_bool(cfg.recursion) {
        rng.gen_range(layer + 1..names.len())
    } else {
        rng.gen_range(0..names.len())
    };
    Regex::name(names[idx])
}

fn random_model(rng: &mut impl Rng, cfg: &DtdGenConfig, names: &[Name], layer: usize) -> Regex {
    fn go(
        rng: &mut impl Rng,
        cfg: &DtdGenConfig,
        names: &[Name],
        layer: usize,
        depth: usize,
    ) -> Regex {
        if depth == 0 {
            return pick_ref(rng, cfg, names, layer);
        }
        match rng.gen_range(0..6) {
            0 => pick_ref(rng, cfg, names, layer),
            1 => Regex::concat(
                (0..rng.gen_range(2..4)).map(|_| go(rng, cfg, names, layer, depth - 1)),
            ),
            2 => {
                Regex::alt((0..rng.gen_range(2..4)).map(|_| go(rng, cfg, names, layer, depth - 1)))
            }
            3 => Regex::star(go(rng, cfg, names, layer, depth - 1)),
            4 => Regex::plus(go(rng, cfg, names, layer, depth - 1)),
            _ => Regex::opt(go(rng, cfg, names, layer, depth - 1)),
        }
    }
    go(rng, cfg, names, layer, cfg.regex_depth)
}

/// Convenience: a seeded random DTD.
pub fn seeded_dtd(seed: u64, cfg: &DtdGenConfig) -> Dtd {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    random_dtd(&mut rng, cfg)
}

/// Knobs for [`ChunkedDocWriter`].
#[derive(Debug, Clone)]
pub struct ChunkedDocConfig {
    /// Stop growing once this many bytes are written; loops then unwind
    /// with minimal expansions, so output exceeds the target only by the
    /// closing tags and one minimal subtree per open loop.
    pub target_bytes: u64,
    /// Per-subtree byte cap below the root: an element stops expanding
    /// its own loops past this size. This keeps documents *wide* (many
    /// medium siblings under the root) rather than one deep arm, which
    /// is also the shape that a bounded-state streaming evaluator should
    /// be benchmarked against.
    pub max_subtree_bytes: u64,
    /// Below this element depth every expansion is minimal (guards
    /// against recursive DTDs).
    pub max_depth: usize,
    /// Probability of continuing a `*`/`+` loop while under budget.
    pub loop_continue: f64,
    /// PCDATA values are drawn from this pool; empty strings are dropped
    /// (compact `<n></n>` re-parses as element content, which would make
    /// the output invalid under a PCDATA model).
    pub string_pool: Vec<String>,
}

impl Default for ChunkedDocConfig {
    fn default() -> Self {
        ChunkedDocConfig {
            target_bytes: 1 << 20,
            max_subtree_bytes: 64 << 10,
            max_depth: 24,
            loop_continue: 0.9,
            string_pool: ["CS", "EE", "Math", "alpha", "beta", "gamma"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }
}

struct CountingWriter<'w, W: Write> {
    inner: &'w mut W,
    written: u64,
}

impl<W: Write> Write for CountingWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Streams a random valid document of (roughly) a target byte size into
/// any [`io::Write`] sink — compact XML, element by element, nothing
/// materialized. The generator walks each content-model regex directly:
/// `*`/`+` loops keep iterating while the global budget allows and the
/// local subtree cap is not hit, alternations pick random productive
/// branches while growing and the cheapest branch when unwinding.
///
/// Reaching a large target requires the DTD to have a reachable loop
/// (`*` or `+`); with a finite document language the writer simply stops
/// at the largest document it can produce — check the returned byte
/// count.
pub struct ChunkedDocWriter<'d> {
    dtd: &'d Dtd,
    cfg: ChunkedDocConfig,
    /// Content models restricted to productive names.
    restricted: HashMap<Name, Regex>,
    /// Precomputed minimal expansions.
    min_sizes: HashMap<Name, usize>,
}

impl<'d> ChunkedDocWriter<'d> {
    /// Prepares a writer; `None` when the DTD describes no documents.
    pub fn new(dtd: &'d Dtd, mut cfg: ChunkedDocConfig) -> Option<ChunkedDocWriter<'d>> {
        let prod = productive(dtd);
        if !prod.contains(&dtd.doc_type) {
            return None;
        }
        let mut restricted = HashMap::new();
        for (n, m) in dtd.types.iter() {
            if let ContentModel::Elements(r) = m {
                restricted.insert(n, restrict(r, &prod));
            }
        }
        let min_sizes = minimal_sizes(dtd, &prod, &restricted);
        cfg.string_pool.retain(|s| !s.is_empty());
        if cfg.string_pool.is_empty() {
            cfg.string_pool.push("x".into());
        }
        Some(ChunkedDocWriter {
            dtd,
            cfg,
            restricted,
            min_sizes,
        })
    }

    /// Writes one document; returns the number of bytes produced.
    pub fn write<W: Write>(&self, rng: &mut impl Rng, out: &mut W) -> io::Result<u64> {
        let mut cw = CountingWriter {
            inner: out,
            written: 0,
        };
        self.element(self.dtd.doc_type, 0, &mut cw, rng)?;
        Ok(cw.written)
    }

    /// May this element (whose subtree started at byte `start`) keep
    /// growing? The root ignores the subtree cap — it must span the
    /// whole target.
    fn growing<W: Write>(&self, depth: usize, start: u64, cw: &CountingWriter<'_, W>) -> bool {
        cw.written < self.cfg.target_bytes
            && (depth == 0 || cw.written - start < self.cfg.max_subtree_bytes)
    }

    /// Should a loop take another iteration? Non-root loops stop
    /// geometrically (`loop_continue`) for subtree variety; the root loop
    /// is target-driven — it is the only loop that can span the whole
    /// document, so it must keep producing children until the target.
    fn iterate<W: Write>(
        &self,
        depth: usize,
        start: u64,
        cw: &CountingWriter<'_, W>,
        rng: &mut impl Rng,
    ) -> bool {
        self.growing(depth, start, cw) && (depth == 0 || rng.gen_bool(self.cfg.loop_continue))
    }

    fn element<W: Write>(
        &self,
        n: Name,
        depth: usize,
        cw: &mut CountingWriter<'_, W>,
        rng: &mut impl Rng,
    ) -> io::Result<()> {
        match self.dtd.get(n) {
            Some(ContentModel::Pcdata) | None => {
                let pool = &self.cfg.string_pool;
                let v = &pool[rng.gen_range(0..pool.len())];
                write!(cw, "<{n}>{}</{n}>", escape(v))
            }
            Some(ContentModel::Elements(_)) => {
                write!(cw, "<{n}>")?;
                let start = cw.written;
                if depth >= self.cfg.max_depth {
                    self.minimal_children(n, cw, rng)?;
                } else {
                    self.walk(&self.restricted[&n], depth, start, cw, rng)?;
                }
                write!(cw, "</{n}>")
            }
        }
    }

    fn walk<W: Write>(
        &self,
        r: &Regex,
        depth: usize,
        start: u64,
        cw: &mut CountingWriter<'_, W>,
        rng: &mut impl Rng,
    ) -> io::Result<()> {
        match r {
            Regex::Empty | Regex::Epsilon => Ok(()),
            Regex::Sym(s) => self.element(s.name, depth + 1, cw, rng),
            Regex::Concat(v) => {
                for x in v {
                    self.walk(x, depth, start, cw, rng)?;
                }
                Ok(())
            }
            Regex::Alt(v) => {
                let alive: Vec<&Regex> = v
                    .iter()
                    .filter(|x| min_cost(x, &self.min_sizes).is_some())
                    .collect();
                let pick = if alive.is_empty() {
                    return Ok(()); // restricted models keep a live branch; defensive
                } else if self.growing(depth, start, cw) {
                    alive[rng.gen_range(0..alive.len())]
                } else {
                    alive
                        .iter()
                        .min_by_key(|x| min_cost(x, &self.min_sizes).unwrap_or(usize::MAX))
                        .expect("nonempty")
                };
                self.walk(pick, depth, start, cw, rng)
            }
            Regex::Star(x) => {
                while self.iterate(depth, start, cw, rng) && min_cost(x, &self.min_sizes).is_some()
                {
                    self.walk(x, depth, start, cw, rng)?;
                }
                Ok(())
            }
            Regex::Plus(x) => {
                self.walk(x, depth, start, cw, rng)?;
                while self.iterate(depth, start, cw, rng) && min_cost(x, &self.min_sizes).is_some()
                {
                    self.walk(x, depth, start, cw, rng)?;
                }
                Ok(())
            }
            Regex::Opt(x) => {
                if self.growing(depth, start, cw)
                    && rng.gen_bool(0.5)
                    && min_cost(x, &self.min_sizes).is_some()
                {
                    self.walk(x, depth, start, cw, rng)?;
                }
                Ok(())
            }
        }
    }

    /// Emits a minimal valid expansion of `n`'s content.
    fn minimal_children<W: Write>(
        &self,
        n: Name,
        cw: &mut CountingWriter<'_, W>,
        rng: &mut impl Rng,
    ) -> io::Result<()> {
        let word = minimal_word(&self.restricted[&n], &self.min_sizes)
            .expect("productive name has a minimal word");
        for s in word {
            self.minimal_element(s.name, cw, rng)?;
        }
        Ok(())
    }

    fn minimal_element<W: Write>(
        &self,
        n: Name,
        cw: &mut CountingWriter<'_, W>,
        rng: &mut impl Rng,
    ) -> io::Result<()> {
        match self.dtd.get(n) {
            Some(ContentModel::Pcdata) | None => {
                let pool = &self.cfg.string_pool;
                let v = &pool[rng.gen_range(0..pool.len())];
                write!(cw, "<{n}>{}</{n}>", escape(v))
            }
            Some(ContentModel::Elements(_)) => {
                write!(cw, "<{n}>")?;
                self.minimal_children(n, cw, rng)?;
                write!(cw, "</{n}>")
            }
        }
    }
}

/// Convenience: streams one seeded document for `dtd` into `out`,
/// returning the bytes written.
pub fn write_sized_document<W: Write>(
    dtd: &Dtd,
    seed: u64,
    cfg: ChunkedDocConfig,
    out: &mut W,
) -> io::Result<u64> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let w = ChunkedDocWriter::new(dtd, cfg).expect("DTD describes documents");
    w.write(&mut rng, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::usable;
    use crate::sample::{DocConfig, DocSampler};
    use crate::validate::satisfies;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_dtds_describe_documents() {
        for seed in 0..50 {
            let d = seeded_dtd(seed, &DtdGenConfig::default());
            assert!(describes_some_document(&d), "seed {seed}: {d}");
            assert!(d.undefined_names().is_empty(), "seed {seed}: {d}");
        }
    }

    #[test]
    fn generated_dtds_sample_valid_documents() {
        let mut rng = StdRng::seed_from_u64(99);
        for seed in 0..20 {
            let d = seeded_dtd(seed, &DtdGenConfig::default());
            let Some(sampler) = DocSampler::new(&d, DocConfig::default()) else {
                panic!("generator guarantees productivity");
            };
            for _ in 0..20 {
                let doc = sampler.sample(&mut rng);
                assert!(satisfies(&d, &doc), "seed {seed} produced invalid doc");
            }
        }
    }

    #[test]
    fn bigger_configs_scale() {
        let cfg = DtdGenConfig {
            names: 40,
            regex_depth: 4,
            ..DtdGenConfig::default()
        };
        let d = seeded_dtd(7, &cfg);
        assert!(d.types.len() >= 40);
        assert!(!usable(&d).is_empty());
    }

    #[test]
    fn chunked_writer_hits_size_target_with_valid_output() {
        let d = crate::paper::d1_department();
        let cfg = ChunkedDocConfig {
            target_bytes: 40_000,
            max_subtree_bytes: 2_000,
            ..ChunkedDocConfig::default()
        };
        let mut buf = Vec::new();
        let n = write_sized_document(&d, 11, cfg, &mut buf).unwrap();
        assert_eq!(n as usize, buf.len());
        assert!(n >= 40_000, "undershot the target: {n}");
        assert!(n < 80_000, "overshot the target wildly: {n}");
        let doc = mix_xml::parse_document(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert!(crate::validate::satisfies(&d, &doc));
        // the subtree cap keeps the document wide: many root children
        assert!(doc.root.children().len() > 10);
    }

    #[test]
    fn chunked_writer_bounds_depth_on_recursive_dtds() {
        let d = crate::paper::section_recursive();
        let cfg = ChunkedDocConfig {
            target_bytes: 30_000,
            max_subtree_bytes: 1_000,
            max_depth: 8,
            ..ChunkedDocConfig::default()
        };
        let mut buf = Vec::new();
        write_sized_document(&d, 3, cfg, &mut buf).unwrap();
        let doc = mix_xml::parse_document(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert!(crate::validate::satisfies(&d, &doc));
        fn depth(e: &mix_xml::Element) -> usize {
            1 + e.children().iter().map(depth).max().unwrap_or(0)
        }
        // max_depth caps growth; minimal unwinding below it adds at most
        // the DTD's minimal-document depth
        assert!(
            depth(&doc.root) <= 8 + 4,
            "runaway depth {}",
            depth(&doc.root)
        );
    }

    #[test]
    fn chunked_writer_stops_on_finite_languages() {
        let d = crate::parse::parse_compact("{<r : a, a> <a : PCDATA>}").unwrap();
        let cfg = ChunkedDocConfig {
            target_bytes: 1 << 20,
            ..ChunkedDocConfig::default()
        };
        let mut buf = Vec::new();
        let n = write_sized_document(&d, 1, cfg, &mut buf).unwrap();
        assert!(n < 200, "finite language cannot reach the target: {n}");
        let doc = mix_xml::parse_document(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert!(crate::validate::satisfies(&d, &doc));
    }

    #[test]
    fn chunked_writer_agrees_with_seed() {
        let d = crate::paper::d1_department();
        let cfg = ChunkedDocConfig {
            target_bytes: 10_000,
            ..ChunkedDocConfig::default()
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_sized_document(&d, 42, cfg.clone(), &mut a).unwrap();
        write_sized_document(&d, 42, cfg, &mut b).unwrap();
        assert_eq!(a, b, "same seed must stream the same document");
    }

    #[test]
    fn recursion_config_can_recurse() {
        let cfg = DtdGenConfig {
            names: 6,
            recursion: 0.9,
            pcdata_fraction: 0.2,
            ..DtdGenConfig::default()
        };
        // With heavy back-references some attempts are unproductive; the
        // loop must still terminate with a productive DTD.
        for seed in 0..20 {
            let d = seeded_dtd(seed, &cfg);
            assert!(describes_some_document(&d));
        }
    }
}
