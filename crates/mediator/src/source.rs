//! Wrappers and sources.
//!
//! In the MIX architecture (Section 1) *wrappers* conceptually export the
//! source data as XML together with a DTD, and answer queries against it.
//! [`Wrapper`] is that interface; [`XmlSource`] is the standard
//! implementation backed by an in-memory document (our stand-in for the
//! paper's web sources and repositories); mediators themselves implement
//! `Wrapper` for stacking ("mediators can be stacked on top of
//! mediators").
//!
//! Both operations are fallible — real sources time out, emit malformed
//! XML, or ship documents that stopped validating against their
//! advertised DTD — and return [`SourceError`]. The mediator's resilience
//! layer ([`crate::resilience`]) decides what a failure means for the
//! overall answer.

use crate::error::SourceError;
use mix_dtd::{validate_document, Dtd, ValidationError};
use mix_xmas::{evaluate, normalize, Query};
use mix_xml::Document;

/// Anything that exports XML data typed by a DTD and answers pick-element
/// queries about it.
pub trait Wrapper: Send + Sync {
    /// The DTD of the exported data.
    fn dtd(&self) -> &Dtd;

    /// The full exported document.
    fn fetch(&self) -> Result<Document, SourceError>;

    /// Answers a query whose condition is rooted at this source's document
    /// type. The default implementation evaluates over [`Wrapper::fetch`];
    /// real wrappers would push the query to the underlying system.
    ///
    /// A query that fails normalization is *rejected* (as
    /// [`SourceError::Query`]) rather than evaluated unnormalized: the
    /// unnormalized form has unexpanded wildcards and unassigned tags, so
    /// "guessing" with it could silently return wrong members.
    fn answer(&self, q: &Query) -> Result<Document, SourceError> {
        let nq = normalize(q, self.dtd())?;
        let doc = self.fetch()?;
        Ok(evaluate(&nq, &doc))
    }
}

/// A source holding one valid XML document — the repository behind a
/// wrapper.
pub struct XmlSource {
    dtd: Dtd,
    document: Document,
}

impl XmlSource {
    /// Creates a source, validating the document against the DTD.
    pub fn new(dtd: Dtd, document: Document) -> Result<XmlSource, ValidationError> {
        validate_document(&dtd, &document)?;
        Ok(XmlSource { dtd, document })
    }

    /// Replaces the document (sources are dynamic), re-validating. On
    /// failure the previous document — the last known good one — stays in
    /// place and keeps serving fetches.
    pub fn update(&mut self, document: Document) -> Result<(), ValidationError> {
        validate_document(&self.dtd, &document)?;
        self.document = document;
        Ok(())
    }

    /// The currently served document.
    pub fn document(&self) -> &Document {
        &self.document
    }
}

impl Wrapper for XmlSource {
    fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    fn fetch(&self) -> Result<Document, SourceError> {
        Ok(self.document.clone())
    }
}

/// A wrapper decorator that sleeps for a fixed duration on every fetch,
/// simulating the round-trip latency of a remote source.
///
/// The in-memory [`XmlSource`] answers in microseconds, which makes
/// single-machine throughput experiments meaningless for a *mediator*:
/// real MIX sources are web sites, so a serving layer earns its keep by
/// overlapping source waits, not by burning more CPU. Benchmarks (X15)
/// and the `mixctl serve --bench` driver wrap sources in this to measure
/// that overlap honestly.
pub struct LatencyWrapper<W> {
    inner: W,
    latency: std::time::Duration,
}

impl<W: Wrapper> LatencyWrapper<W> {
    /// Wraps `inner`, adding `latency` to every fetch.
    pub fn new(inner: W, latency: std::time::Duration) -> LatencyWrapper<W> {
        LatencyWrapper { inner, latency }
    }

    /// The simulated per-fetch round-trip latency.
    pub fn latency(&self) -> std::time::Duration {
        self.latency
    }

    /// The wrapped source.
    pub fn inner(&self) -> &W {
        &self.inner
    }
}

impl<W: Wrapper> Wrapper for LatencyWrapper<W> {
    fn dtd(&self) -> &Dtd {
        self.inner.dtd()
    }

    fn fetch(&self) -> Result<Document, SourceError> {
        std::thread::sleep(self.latency);
        self.inner.fetch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_dtd::paper::d1_department;
    use mix_xmas::parse_query;
    use mix_xml::parse_document;

    fn doc() -> Document {
        parse_document(
            "<department><name>CS</name>\
               <professor><firstName>Y</firstName><lastName>P</lastName>\
                 <publication><title>t</title><author>a</author><journal/></publication>\
                 <teaches/></professor>\
               <gradStudent><firstName>P</firstName><lastName>V</lastName>\
                 <publication><title>u</title><author>a</author><conference/></publication>\
               </gradStudent></department>",
        )
        .unwrap()
    }

    #[test]
    fn source_validates_on_construction() {
        assert!(XmlSource::new(d1_department(), doc()).is_ok());
        let bad = parse_document("<department><name>CS</name></department>").unwrap();
        assert!(XmlSource::new(d1_department(), bad).is_err());
    }

    #[test]
    fn source_answers_queries() {
        let s = XmlSource::new(d1_department(), doc()).unwrap();
        let q = parse_query("profs = SELECT P WHERE <department> P:<professor/> </department>")
            .unwrap();
        let out = s.answer(&q).unwrap();
        assert_eq!(out.root.children().len(), 1);
        assert_eq!(out.doc_type().as_str(), "profs");
    }

    #[test]
    fn update_revalidates_and_keeps_last_good() {
        let mut s = XmlSource::new(d1_department(), doc()).unwrap();
        let bad = parse_document("<department/>").unwrap();
        assert!(s.update(bad).is_err());
        // the rejected update did not poison the source: the last known
        // good document still serves
        let served = s.fetch().unwrap();
        assert_eq!(served.root.children().len(), 3);
        assert!(s.update(doc()).is_ok());
    }

    #[test]
    fn latency_wrapper_delays_but_preserves_answers() {
        let plain = XmlSource::new(d1_department(), doc()).unwrap();
        let slow = LatencyWrapper::new(
            XmlSource::new(d1_department(), doc()).unwrap(),
            std::time::Duration::from_millis(5),
        );
        let q = parse_query("profs = SELECT P WHERE <department> P:<professor/> </department>")
            .unwrap();
        let t0 = std::time::Instant::now();
        let a = slow.answer(&q).unwrap();
        assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
        let b = plain.answer(&q).unwrap();
        assert!(mix_xml::same_structural_class(&a.root, &b.root));
        assert!(mix_dtd::same_documents(slow.dtd(), plain.dtd()));
    }

    #[test]
    fn unnormalizable_query_is_rejected_not_guessed() {
        let s = XmlSource::new(d1_department(), doc()).unwrap();
        // SELECT over a variable no condition binds: normalization fails,
        // and `answer` must surface that instead of evaluating the raw
        // query
        let q = parse_query("profs = SELECT Z WHERE <department> P:<professor/> </department>")
            .unwrap();
        match s.answer(&q) {
            Err(SourceError::Query(_)) => {}
            other => panic!("expected Query error, got {other:?}"),
        }
    }
}
