//! Satisfaction of specialized DTDs (Definition 3.10).
//!
//! An s-DTD is a nondeterministic bottom-up tree automaton whose states are
//! the specializations `n^i`. An element satisfies the s-DTD if *some*
//! assignment of specializations to nodes makes every node's tagged child
//! sequence a member of its assigned specialized type. We compute, bottom
//! up, the exact set of specializations assignable to each subtree, using
//! NFA simulation where each child position offers a *set* of tagged
//! letters.

use crate::model::{ContentModel, SDtd};
use mix_relang::symbol::Sym;
use mix_relang::Nfa;
use mix_xml::{Content, Document, Element};
use std::collections::HashMap;

/// A compiled s-DTD acceptor, reusable across documents.
pub struct SAcceptor<'d> {
    sdtd: &'d SDtd,
    automata: HashMap<Sym, Nfa>,
}

impl<'d> SAcceptor<'d> {
    /// Compiles every specialized content model.
    pub fn new(sdtd: &'d SDtd) -> SAcceptor<'d> {
        let mut automata = HashMap::new();
        for (s, m) in sdtd.types.iter() {
            if let ContentModel::Elements(r) = m {
                automata.insert(s, Nfa::from_regex(r));
            }
        }
        SAcceptor { sdtd, automata }
    }

    /// The set of specializations assignable to `e` (bottom-up).
    pub fn assignable(&self, e: &Element) -> Vec<Sym> {
        let child_sets: Vec<Vec<Sym>> = e.children().iter().map(|c| self.assignable(c)).collect();
        let mut out = Vec::new();
        for spec in self.sdtd.specializations(e.name) {
            let ok = match (self.sdtd.get(spec), &e.content) {
                (Some(ContentModel::Pcdata), Content::Text(_)) => true,
                (Some(ContentModel::Elements(_)), Content::Elements(_)) => {
                    let nfa = self.automata.get(&spec).expect("compiled");
                    accepts_set_word(nfa, &child_sets)
                }
                _ => false,
            };
            if ok {
                out.push(spec);
            }
        }
        out
    }

    /// Does `e` satisfy the s-DTD (some specialization of its own name is
    /// assignable)?
    pub fn element_satisfies(&self, e: &Element) -> bool {
        !self.assignable(e).is_empty()
    }

    /// Document-level satisfaction: the root must be assignable *to the
    /// document type itself* and IDs must be unique.
    pub fn document_satisfies(&self, doc: &Document) -> bool {
        doc.root.name == self.sdtd.doc_type.name
            && doc.duplicate_id().is_none()
            && self.assignable(&doc.root).contains(&self.sdtd.doc_type)
    }
}

/// NFA simulation where position `i` of the word may be any symbol in
/// `sets[i]` — "does some choice yield an accepted word?".
fn accepts_set_word(nfa: &Nfa, sets: &[Vec<Sym>]) -> bool {
    let n = nfa.len();
    let mut current = vec![false; n];
    current[0] = true;
    let mut next = vec![false; n];
    for set in sets {
        if set.is_empty() {
            return false; // this child satisfies no specialization at all
        }
        next.iter_mut().for_each(|b| *b = false);
        let mut any = false;
        for (s, live) in current.iter().enumerate() {
            if !live {
                continue;
            }
            for &(sym, t) in &nfa.transitions[s] {
                if set.contains(&sym) {
                    next[t as usize] = true;
                    any = true;
                }
            }
        }
        if !any {
            return false;
        }
        std::mem::swap(&mut current, &mut next);
    }
    current
        .iter()
        .zip(&nfa.accepting)
        .any(|(live, acc)| *live && *acc)
}

/// One-shot: does `doc` satisfy `sdtd`?
pub fn sdtd_satisfies(sdtd: &SDtd, doc: &Document) -> bool {
    SAcceptor::new(sdtd).document_satisfies(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_compact_sdtd;
    use mix_xml::parse_document;

    /// The tight s-DTD of Example 3.4 (D4), for professors only.
    fn d4_like() -> SDtd {
        parse_compact_sdtd(
            "{<withJournals : professor*>\
              <professor : firstName, lastName, publication*, publication^1, \
                           publication*, publication^1, publication*, teaches>\
              <publication : title, author+, (journal | conference)>\
              <publication^1 : title, author+, journal>\
              <teaches : EMPTY> <journal : EMPTY> <conference : EMPTY>}",
        )
        .unwrap()
    }

    fn prof(pub_kinds: &[&str]) -> String {
        let pubs: String = pub_kinds
            .iter()
            .map(|k| format!("<publication><title>t</title><author>a</author><{k}/></publication>"))
            .collect();
        format!(
            "<withJournals><professor>\
               <firstName>Y</firstName><lastName>P</lastName>{pubs}<teaches/>\
             </professor></withJournals>"
        )
    }

    #[test]
    fn two_journals_satisfy_d4() {
        let s = d4_like();
        let doc = parse_document(&prof(&["journal", "journal"])).unwrap();
        assert!(sdtd_satisfies(&s, &doc));
        let doc = parse_document(&prof(&["conference", "journal", "journal"])).unwrap();
        assert!(sdtd_satisfies(&s, &doc));
        let doc =
            parse_document(&prof(&["journal", "conference", "journal", "conference"])).unwrap();
        assert!(sdtd_satisfies(&s, &doc));
    }

    #[test]
    fn fewer_than_two_journals_fail_d4() {
        let s = d4_like();
        for kinds in [vec!["journal"], vec!["conference", "conference"], vec![]] {
            let doc = parse_document(&prof(&kinds)).unwrap();
            assert!(
                !sdtd_satisfies(&s, &doc),
                "should fail with publications {kinds:?}"
            );
        }
    }

    #[test]
    fn merged_plain_dtd_would_accept_what_sdtd_rejects() {
        // This is the whole point of s-DTDs (Section 3.3): the merged DTD
        // loses the two-journal constraint.
        let s = d4_like();
        let merged_types = "{<withJournals : professor*>\
              <professor : firstName, lastName, publication, publication, publication*, teaches>\
              <publication : title, author+, (journal | conference)>\
              <teaches : EMPTY> <journal : EMPTY> <conference : EMPTY>}";
        let plain = crate::parse::parse_compact(merged_types).unwrap();
        let doc = parse_document(&prof(&["conference", "conference"])).unwrap();
        assert!(crate::validate::satisfies(&plain, &doc));
        assert!(!sdtd_satisfies(&s, &doc));
    }

    #[test]
    fn plain_dtd_as_sdtd_agrees_with_validation() {
        let d = crate::paper::d1_department();
        let s = SDtd::from_dtd(&d);
        let doc = parse_document(
            "<department><name>CS</name>\
               <professor><firstName>Y</firstName><lastName>P</lastName>\
                 <publication><title>t</title><author>a</author><journal/></publication>\
                 <teaches/></professor>\
               <gradStudent><firstName>P</firstName><lastName>V</lastName>\
                 <publication><title>t</title><author>a</author><conference/></publication>\
               </gradStudent></department>",
        )
        .unwrap();
        assert!(crate::validate::satisfies(&d, &doc));
        assert!(sdtd_satisfies(&s, &doc));
        let bad = parse_document("<department><name>CS</name></department>").unwrap();
        assert!(!crate::validate::satisfies(&d, &bad));
        assert!(!sdtd_satisfies(&s, &bad));
    }

    #[test]
    fn wrong_root_name_rejected() {
        let s = d4_like();
        let doc = parse_document("<other/>").unwrap();
        assert!(!sdtd_satisfies(&s, &doc));
    }

    #[test]
    fn pcdata_specialization() {
        // A name can have one PCDATA specialization and one element one.
        let s = parse_compact_sdtd("{<r : x, x^1> <x : PCDATA> <x^1 : y?> <y : EMPTY>}").unwrap();
        let doc = parse_document("<r><x>text</x><x><y/></x></r>").unwrap();
        assert!(sdtd_satisfies(&s, &doc));
        // both-text fails: second x must match x^1 (element content)
        let doc = parse_document("<r><x>a</x><x>b</x></r>").unwrap();
        assert!(!sdtd_satisfies(&s, &doc));
    }
}
