//! The abstract XML element model (Definition 2.1).
//!
//! An element is a triple of a name, a unique ID attribute, and content
//! that is either a sequence of elements or a PCDATA string. Per the paper's
//! simplifications (Section 2) there are no other attributes, no mixed
//! content, and no entities.

use mix_relang::symbol::Name;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The ID attribute of an element — unique within a document.
///
/// Parsed documents carry their textual IDs; programmatically built
/// elements get fresh `#N` IDs from a process-wide counter. Auto IDs are
/// a plain number, **not** an interned string: [`ElemId::fresh`] is one
/// relaxed atomic increment, so the id-refreshing walks that answer
/// caches run per served copy ([`Element::refresh_auto_ids`]) cost
/// nanoseconds per node instead of a symbol-table insertion — and the
/// symbol table no longer accretes one dead `"#N"` entry per constructed
/// element for the life of the process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ElemId {
    /// An ID written as `id="…"` in source text.
    Named(Name),
    /// A process-unique auto-generated ID, serialized as `#N`.
    Auto(u64),
}

static NEXT_AUTO_ID: AtomicU64 = AtomicU64::new(1);

impl ElemId {
    /// An ID from explicit text (as written in `id="…"`). Text of the
    /// auto form (`#` + digits) folds onto [`ElemId::Auto`] so that a
    /// document round-tripped through text keeps its identity semantics.
    pub fn named(s: &str) -> ElemId {
        match s.strip_prefix('#').and_then(|t| t.parse::<u64>().ok()) {
            Some(n) => ElemId::Auto(n),
            None => ElemId::Named(Name::intern(s)),
        }
    }

    /// A fresh, process-unique ID.
    pub fn fresh() -> ElemId {
        ElemId::Auto(NEXT_AUTO_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// Whether this ID was auto-generated (or spelled in the `#…` form
    /// reserved for generated IDs, which serializers never emit).
    pub fn is_auto(self) -> bool {
        match self {
            ElemId::Auto(_) => true,
            ElemId::Named(n) => n.as_str().starts_with('#'),
        }
    }
}

impl fmt::Debug for ElemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for ElemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElemId::Named(n) => write!(f, "{n}"),
            ElemId::Auto(n) => write!(f, "#{n}"),
        }
    }
}

/// Element content: a sequence of elements or a PCDATA string.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Content {
    /// Element content — possibly empty (an empty list is *not* an XML
    /// `EMPTY` element, see Appendix A).
    Elements(Vec<Element>),
    /// Character content.
    Text(String),
}

/// An XML element (Definition 2.1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Element {
    /// The element name.
    pub name: Name,
    /// The unique ID attribute.
    pub id: ElemId,
    /// The content.
    pub content: Content,
}

impl Element {
    /// A new element with element content and a fresh ID.
    pub fn new(name: &str, children: Vec<Element>) -> Element {
        Element {
            name: Name::intern(name),
            id: ElemId::fresh(),
            content: Content::Elements(children),
        }
    }

    /// A new element with character content and a fresh ID.
    pub fn text(name: &str, value: &str) -> Element {
        Element {
            name: Name::intern(name),
            id: ElemId::fresh(),
            content: Content::Text(value.to_owned()),
        }
    }

    /// Replaces the ID (builder-style), e.g. to mirror a parsed `id="…"`.
    pub fn with_id(mut self, id: &str) -> Element {
        self.id = ElemId::named(id);
        self
    }

    /// The element's children; empty for character content.
    pub fn children(&self) -> &[Element] {
        match &self.content {
            Content::Elements(v) => v,
            Content::Text(_) => &[],
        }
    }

    /// The PCDATA value, if this element has character content.
    pub fn pcdata(&self) -> Option<&str> {
        match &self.content {
            Content::Text(s) => Some(s),
            Content::Elements(_) => None,
        }
    }

    /// The sequence of child names — the word checked against the DTD type
    /// (Definition 2.3, condition 2).
    pub fn child_names(&self) -> Vec<Name> {
        self.children().iter().map(|c| c.name).collect()
    }

    /// Depth-first, left-to-right traversal (self first) — the document
    /// order the paper uses for view content.
    pub fn walk(&self) -> Walk<'_> {
        Walk { stack: vec![self] }
    }

    /// Number of element nodes in this subtree.
    pub fn size(&self) -> usize {
        self.walk().count()
    }

    /// Maximum nesting depth (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(Element::depth)
            .max()
            .unwrap_or(0)
    }

    /// Finds the (first) element with the given ID in this subtree.
    pub fn find_by_id(&self, id: ElemId) -> Option<&Element> {
        self.walk().find(|e| e.id == id)
    }

    /// Clones the subtree, giving every node a fresh ID. Useful when the
    /// same source element must appear twice in a constructed document
    /// without violating ID uniqueness.
    pub fn deep_clone_fresh(&self) -> Element {
        Element {
            name: self.name,
            id: ElemId::fresh(),
            content: match &self.content {
                Content::Text(s) => Content::Text(s.clone()),
                Content::Elements(v) => {
                    Content::Elements(v.iter().map(Element::deep_clone_fresh).collect())
                }
            },
        }
    }

    /// Re-assigns a fresh ID to every *auto-identified* node in this
    /// subtree, keeping explicit `id="…"` attributes intact.
    ///
    /// A plain [`Clone`] shares its IDs with the original, so two clones
    /// of one parsed answer placed side by side in a constructed document
    /// would collide — and query evaluation deduplicates picked elements
    /// by ID, so the collision silently drops members. Answer caches
    /// that hand out clones of a memoized parse call this on every copy
    /// they release.
    pub fn refresh_auto_ids(&mut self) {
        if self.id.is_auto() {
            self.id = ElemId::fresh();
        }
        if let Content::Elements(children) = &mut self.content {
            for c in children {
                c.refresh_auto_ids();
            }
        }
    }
}

/// Iterator of [`Element::walk`].
pub struct Walk<'a> {
    stack: Vec<&'a Element>,
}

impl<'a> Iterator for Walk<'a> {
    type Item = &'a Element;

    fn next(&mut self) -> Option<&'a Element> {
        let e = self.stack.pop()?;
        // Push children in reverse so they pop left-to-right.
        self.stack.extend(e.children().iter().rev());
        Some(e)
    }
}

/// A document: a root element (Definition 2.4 minus the DTD, which lives in
/// `mix-dtd`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Document {
    /// The root element; its name is the document type.
    pub root: Element,
}

impl Document {
    /// Wraps a root element.
    pub fn new(root: Element) -> Document {
        Document { root }
    }

    /// The document type `d_root` — the name of the root element.
    pub fn doc_type(&self) -> Name {
        self.root.name
    }

    /// Checks that no two elements share an ID (validity requirement 1 of
    /// Appendix A). Returns the first duplicated ID if any.
    pub fn duplicate_id(&self) -> Option<ElemId> {
        let mut seen = std::collections::HashSet::new();
        self.root.walk().find(|e| !seen.insert(e.id)).map(|e| e.id)
    }

    /// Number of element nodes.
    pub fn size(&self) -> usize {
        self.root.size()
    }

    /// [`Element::refresh_auto_ids`] over the whole document.
    pub fn refresh_auto_ids(&mut self) {
        self.root.refresh_auto_ids();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new(
            "professor",
            vec![
                Element::text("firstName", "Yannis"),
                Element::text("lastName", "P"),
                Element::new(
                    "publication",
                    vec![
                        Element::text("title", "DTD inference"),
                        Element::new("journal", vec![]),
                    ],
                ),
            ],
        )
    }

    #[test]
    fn fresh_ids_are_unique() {
        let a = ElemId::fresh();
        let b = ElemId::fresh();
        assert_ne!(a, b);
        assert!(a.is_auto());
    }

    #[test]
    fn named_ids_compare_by_text() {
        assert_eq!(ElemId::named("p1"), ElemId::named("p1"));
        assert_ne!(ElemId::named("p1"), ElemId::named("p2"));
        assert!(!ElemId::named("p1").is_auto());
    }

    #[test]
    fn refresh_auto_ids_disjoins_clones_but_keeps_named_ids() {
        let mut original = sample();
        if let Content::Elements(v) = &mut original.content {
            v[0].id = ElemId::named("fn1");
        }
        let mut copy = original.clone();
        copy.refresh_auto_ids();
        // every auto id moved off the original's...
        let originals: std::collections::HashSet<ElemId> = original
            .walk()
            .filter(|e| e.id.is_auto())
            .map(|e| e.id)
            .collect();
        assert!(copy
            .walk()
            .filter(|e| e.id.is_auto())
            .all(|e| !originals.contains(&e.id)));
        // ...while the explicit id and the shape survived
        assert_eq!(copy.children()[0].id, ElemId::named("fn1"));
        assert_eq!(copy.child_names(), original.child_names());
        assert!(Document::new(copy).duplicate_id().is_none());
    }

    #[test]
    fn child_names_order() {
        let e = sample();
        let names: Vec<&str> = e.child_names().iter().map(|n| n.as_str()).collect();
        assert_eq!(names, ["firstName", "lastName", "publication"]);
    }

    #[test]
    fn walk_is_depth_first_left_to_right() {
        let e = sample();
        let order: Vec<&str> = e.walk().map(|x| x.name.as_str()).collect();
        assert_eq!(
            order,
            [
                "professor",
                "firstName",
                "lastName",
                "publication",
                "title",
                "journal"
            ]
        );
    }

    #[test]
    fn size_and_depth() {
        let e = sample();
        assert_eq!(e.size(), 6);
        assert_eq!(e.depth(), 3);
        assert_eq!(Element::new("x", vec![]).depth(), 1);
    }

    #[test]
    fn find_by_id() {
        let e = sample();
        let pubid = e.children()[2].id;
        assert_eq!(e.find_by_id(pubid).unwrap().name.as_str(), "publication");
        assert!(e.find_by_id(ElemId::named("nope")).is_none());
    }

    #[test]
    fn deep_clone_fresh_changes_all_ids() {
        let e = sample();
        let c = e.deep_clone_fresh();
        let old: Vec<ElemId> = e.walk().map(|x| x.id).collect();
        let new: Vec<ElemId> = c.walk().map(|x| x.id).collect();
        assert_eq!(old.len(), new.len());
        for id in new {
            assert!(!old.contains(&id));
        }
    }

    #[test]
    fn duplicate_id_detection() {
        let dup = Element::new("a", vec![]).with_id("x");
        let doc = Document::new(Element::new("root", vec![dup.clone(), dup]));
        assert_eq!(doc.duplicate_id(), Some(ElemId::named("x")));
        let ok = Document::new(sample());
        assert!(ok.duplicate_id().is_none());
    }

    #[test]
    fn empty_content_is_not_text() {
        let e = Element::new("teaches", vec![]);
        assert!(e.pcdata().is_none());
        assert_eq!(e.children().len(), 0);
    }
}
