//! The naive view-DTD inference baseline of Example 3.1.
//!
//! "A naive view inference algorithm may derive a view DTD by the
//! following steps: First it adds the type definition
//! `⟨withJournals : (professor|gradStudent)+⟩` … Then it declares
//! `withJournals` to be the document type, and eliminates all type
//! definitions that correspond to names that are not referenced, directly
//! or indirectly, by `withJournals`."
//!
//! The paper's literal `+` is unsound (a view can be empty); the default
//! here is the sound `*`, with [`NaiveMode::PaperLiteral`] reproducing the
//! paper's version for the experiments that demonstrate the unsoundness.

use mix_dtd::{ContentModel, Dtd};
use mix_relang::ast::Regex;
use mix_relang::symbol::Name;
use mix_xmas::Query;

/// Root-cardinality flavour of the naive algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NaiveMode {
    /// `(n₁ | … | n_k)*` — sound.
    Sound,
    /// `(n₁ | … | n_k)+` — the paper's literal text; unsound when the view
    /// can be empty.
    PaperLiteral,
}

/// Derives the naive view DTD for a (normalized) pick-element query.
pub fn naive_view_dtd(q: &Query, source: &Dtd, mode: NaiveMode) -> Dtd {
    let pick_names: Vec<Name> = q
        .pick_node()
        .map(|c| {
            c.test
                .names()
                .iter()
                .copied()
                .filter(|&n| source.types.contains(n))
                .collect()
        })
        .unwrap_or_default();
    let disjunction = Regex::alt(pick_names.iter().map(|&n| Regex::name(n)));
    let root = match mode {
        NaiveMode::Sound => Regex::star(disjunction),
        NaiveMode::PaperLiteral => Regex::plus(disjunction),
    };
    let mut out = Dtd::new(q.view_name);
    out.types.insert(q.view_name, ContentModel::Elements(root));
    // pull every source definition reachable from the pick names
    let mut frontier: Vec<Name> = pick_names;
    while let Some(n) = frontier.pop() {
        if out.types.contains(n) {
            continue;
        }
        if let Some(m) = source.get(n) {
            out.types.insert(n, m.clone());
            if let ContentModel::Elements(r) = m {
                frontier.extend(r.names());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_dtd::paper::d1_department;
    use mix_relang::symbol::name;
    use mix_relang::{equivalent, parse_regex};
    use mix_xmas::{normalize, parse_query};

    fn q2(d: &Dtd) -> Query {
        normalize(
            &parse_query(
                "withJournals = SELECT P WHERE <department> <name>CS</name> \
                   P:<professor | gradStudent> \
                     <publication id=Pub1><journal/></publication> \
                     <publication id=Pub2><journal/></publication> \
                   </> </> AND Pub1 != Pub2",
            )
            .unwrap(),
            d,
        )
        .unwrap()
    }

    #[test]
    fn example_3_1_naive_root() {
        let d = d1_department();
        let n = naive_view_dtd(&q2(&d), &d, NaiveMode::PaperLiteral);
        let root = n.get(name("withJournals")).unwrap().regex().unwrap();
        assert!(equivalent(
            root,
            &parse_regex("(professor | gradStudent)+").unwrap()
        ));
        let sound = naive_view_dtd(&q2(&d), &d, NaiveMode::Sound);
        let root = sound.get(name("withJournals")).unwrap().regex().unwrap();
        assert!(equivalent(
            root,
            &parse_regex("(professor | gradStudent)*").unwrap()
        ));
    }

    #[test]
    fn unreferenced_types_eliminated() {
        let d = d1_department();
        let n = naive_view_dtd(&q2(&d), &d, NaiveMode::Sound);
        // department, name, course are not reachable from the pick names
        assert!(!n.types.contains(name("department")));
        assert!(!n.types.contains(name("course")));
        assert!(!n.types.contains(name("name")));
        // but everything under professor/gradStudent is kept, unrefined
        for kept in [
            "professor",
            "gradStudent",
            "publication",
            "journal",
            "teaches",
        ] {
            assert!(n.types.contains(name(kept)), "missing {kept}");
        }
        let publ = n.get(name("publication")).unwrap().regex().unwrap();
        assert!(equivalent(
            publ,
            &parse_regex("title, author+, (journal | conference)").unwrap()
        ));
        assert!(n.undefined_names().is_empty());
    }

    #[test]
    fn pick_names_missing_from_source_are_dropped() {
        let d = d1_department();
        let q = normalize(
            &parse_query("v = SELECT X WHERE <department> X:<professor | unicorn/> </>").unwrap(),
            &d,
        )
        .unwrap();
        let n = naive_view_dtd(&q, &d, NaiveMode::Sound);
        let root = n.get(name("v")).unwrap().regex().unwrap();
        assert!(equivalent(root, &parse_regex("professor*").unwrap()));
    }
}
