//! X5 — language operations behind the tightness checks: inclusion,
//! equivalence, simplification, determinization, counting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mix_bench::regex_of_size;
use mix_relang::{count_words_upto, equivalent, is_subset, simplify, Dfa};
use std::time::Duration;

fn bench_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("language_ops");
    g.sample_size(25).measurement_time(Duration::from_secs(2));
    for size in [8usize, 16, 32, 64, 128] {
        let a = regex_of_size(size, 6, 1);
        let b = regex_of_size(size, 6, 2);
        g.bench_with_input(BenchmarkId::new("is_subset", size), &size, |bch, _| {
            bch.iter(|| is_subset(&a, &b))
        });
        g.bench_with_input(
            BenchmarkId::new("equivalent_self", size),
            &size,
            |bch, _| {
                // the common case in the pipeline: validity checks compare a
                // type against its own refinement
                bch.iter(|| equivalent(&a, &a))
            },
        );
        g.bench_with_input(BenchmarkId::new("simplify", size), &size, |bch, _| {
            bch.iter(|| simplify(&a))
        });
        g.bench_with_input(
            BenchmarkId::new("determinize+minimize", size),
            &size,
            |bch, _| bch.iter(|| Dfa::from_regex(&a).len()),
        );
        g.bench_with_input(
            BenchmarkId::new("count_words_≤12", size),
            &size,
            |bch, _| bch.iter(|| count_words_upto(&a, 12)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
