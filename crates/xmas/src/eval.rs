//! Evaluation of pick-element queries (the semantics walked through for
//! (Q1) in Section 2.1).
//!
//! * The tree condition is **root-anchored**: its outermost node must match
//!   the document root (this is the reading the InferList algorithm of
//!   Section 4.4 requires).
//! * Sibling conditions have containment semantics: each must be satisfied
//!   by a *distinct* child, in any order and position ("we assume that no
//!   two sibling conditions can bind to the same element", Section 4.2).
//! * `A != B` requires the elements bound to the two id variables to
//!   differ.
//! * The view document contains, under a root named by the query, a copy
//!   of every element the pick variable can bind to, **in depth-first
//!   left-to-right document order** and with duplicates removed.

use crate::ast::{Body, Condition, Query, Var};
use mix_xml::{Document, ElemId, Element};
use std::collections::{HashMap, HashSet};

/// A (projected) binding of relevant variables to element IDs.
type Binding = Vec<(Var, ElemId)>;

/// Evaluates `q` on `doc`, producing the view document.
///
/// ```
/// use mix_xmas::{parse_query, evaluate};
/// let q = parse_query("profs = SELECT P WHERE <dept> P:<prof/> </dept>").unwrap();
/// let doc = mix_xml::parse_document("<dept><prof/><student/><prof/></dept>").unwrap();
/// let view = evaluate(&q, &doc);
/// assert_eq!(view.doc_type().as_str(), "profs");
/// assert_eq!(view.root.children().len(), 2);
/// ```
pub fn evaluate(q: &Query, doc: &Document) -> Document {
    let picked = pick_bindings(q, doc);
    let children = picked
        .into_iter()
        .map(|e| e.deep_clone_fresh())
        .collect::<Vec<_>>();
    Document::new(Element {
        name: q.view_name,
        id: ElemId::fresh(),
        content: mix_xml::Content::Elements(children),
    })
}

/// The elements the pick variable binds to, in document order, deduplicated.
pub fn pick_bindings<'d>(q: &Query, doc: &'d Document) -> Vec<&'d Element> {
    // Only the pick variable and variables mentioned in diseqs influence
    // the answer; project bindings onto them to keep the enumeration small.
    let mut relevant: HashSet<Var> = HashSet::new();
    relevant.insert(q.pick);
    for &(a, b) in &q.diseqs {
        relevant.insert(a);
        relevant.insert(b);
    }
    let matcher = Matcher {
        relevant,
        diseqs: &q.diseqs,
    };
    let embeddings = matcher.embeddings(&q.root, &doc.root);
    let mut picked: HashSet<ElemId> = HashSet::new();
    for b in embeddings {
        if matcher.diseqs_hold(&b) {
            if let Some(&(_, id)) = b.iter().find(|(v, _)| *v == q.pick) {
                picked.insert(id);
            }
        }
    }
    // document order
    let mut out = Vec::new();
    for e in doc.root.walk() {
        if picked.contains(&e.id) {
            out.push(e);
        }
    }
    out
}

/// Does `doc` satisfy the query at all (non-empty answer)?
pub fn any_match(q: &Query, doc: &Document) -> bool {
    !pick_bindings(q, doc).is_empty()
}

struct Matcher<'q> {
    relevant: HashSet<Var>,
    diseqs: &'q [(Var, Var)],
}

impl Matcher<'_> {
    fn diseqs_hold(&self, b: &Binding) -> bool {
        let lookup: HashMap<Var, ElemId> = b.iter().copied().collect();
        self.diseqs.iter().all(|&(x, y)| {
            match (lookup.get(&x), lookup.get(&y)) {
                (Some(a), Some(b)) => a != b,
                // a diseq over a variable not bound in this embedding can
                // not be violated (it cannot happen for normalized queries:
                // both sides are always bound when the embedding is total)
                _ => true,
            }
        })
    }

    /// All (projected, deduplicated) bindings under which `e` satisfies the
    /// condition subtree `c`.
    fn embeddings(&self, c: &Condition, e: &Element) -> Vec<Binding> {
        if !c.test.matches(e.name) {
            return Vec::new();
        }
        let mut base: Binding = Vec::new();
        if let Some(v) = c.var {
            if self.relevant.contains(&v) {
                base.push((v, e.id));
            }
        }
        if let Some(v) = c.id_var {
            if self.relevant.contains(&v) {
                base.push((v, e.id));
            }
        }
        match &c.body {
            Body::Text(s) => {
                if e.pcdata() == Some(s.as_str()) {
                    vec![base]
                } else {
                    Vec::new()
                }
            }
            Body::Children(conds) => {
                if conds.is_empty() {
                    return vec![base];
                }
                // For each child condition, the per-child embedding lists.
                let children = e.children();
                let mut per_cond: Vec<Vec<(usize, Vec<Binding>)>> = Vec::new();
                for cond in conds {
                    let mut options = Vec::new();
                    for (i, child) in children.iter().enumerate() {
                        let embs = self.embeddings(cond, child);
                        if !embs.is_empty() {
                            options.push((i, embs));
                        }
                    }
                    if options.is_empty() {
                        return Vec::new(); // some condition is unsatisfiable here
                    }
                    per_cond.push(options);
                }
                // injective product over distinct children
                let mut out: HashSet<Binding> = HashSet::new();
                let mut used: HashSet<usize> = HashSet::new();
                let mut acc = base.clone();
                self.product(&per_cond, 0, &mut used, &mut acc, &mut out);
                out.into_iter().collect()
            }
        }
    }

    fn product(
        &self,
        per_cond: &[Vec<(usize, Vec<Binding>)>],
        k: usize,
        used: &mut HashSet<usize>,
        acc: &mut Binding,
        out: &mut HashSet<Binding>,
    ) {
        if k == per_cond.len() {
            let mut b = acc.clone();
            b.sort();
            b.dedup();
            out.insert(b);
            return;
        }
        for (child_idx, embs) in &per_cond[k] {
            if used.contains(child_idx) {
                continue;
            }
            used.insert(*child_idx);
            for emb in embs {
                let len = acc.len();
                acc.extend(emb.iter().copied());
                self.product(per_cond, k + 1, used, acc, out);
                acc.truncate(len);
            }
            used.remove(child_idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use mix_xml::parse_document;

    fn dept() -> Document {
        parse_document(
            "<department><name>CS</name>\
               <professor id='prof1'><firstName>Yannis</firstName><lastName>P</lastName>\
                 <publication id='p1'><title>a</title><author>x</author><journal/></publication>\
                 <publication id='p2'><title>b</title><author>x</author><journal/></publication>\
                 <teaches/></professor>\
               <professor id='prof2'><firstName>Victor</firstName><lastName>V</lastName>\
                 <publication id='p3'><title>c</title><author>x</author><journal/></publication>\
                 <teaches/></professor>\
               <gradStudent id='gs1'><firstName>Pavel</firstName><lastName>V</lastName>\
                 <publication id='p4'><title>d</title><author>x</author><journal/></publication>\
                 <publication id='p5'><title>e</title><author>x</author><conference/></publication>\
               </gradStudent>\
             </department>",
        )
        .unwrap()
    }

    fn names_of(doc: &Document) -> Vec<&'static str> {
        doc.root
            .children()
            .iter()
            .map(|e| e.name.as_str())
            .collect()
    }

    fn ids_of(doc: &Document, level: usize) -> Vec<String> {
        let _ = level;
        doc.root
            .children()
            .iter()
            .map(|e| e.id.to_string())
            .collect()
    }

    #[test]
    fn q2_two_distinct_journal_publications() {
        // prof1 has two journal publications; prof2 only one; gs1 has one
        // journal and one conference.
        let q = parse_query(
            "withJournals = SELECT P WHERE <department> <name>CS</name> \
               P:<professor | gradStudent> \
                 <publication id=Pub1><journal/></publication> \
                 <publication id=Pub2><journal/></publication> \
               </> </> AND Pub1 != Pub2",
        )
        .unwrap();
        let out = evaluate(&q, &dept());
        assert_eq!(out.doc_type().as_str(), "withJournals");
        assert_eq!(names_of(&out), ["professor"]);
        // the picked professor is prof1 — check content survived the copy
        assert_eq!(
            out.root.children()[0].children()[0].pcdata(),
            Some("Yannis")
        );
    }

    #[test]
    fn without_diseq_one_publication_suffices_conditionally() {
        // Same query but *without* the inequality: both conditions may bind
        // to… distinct children still (sibling distinctness), so still only
        // prof1 qualifies.
        let q = parse_query(
            "v = SELECT P WHERE <department> \
               P:<professor | gradStudent> \
                 <publication id=Pub1><journal/></publication> \
                 <publication id=Pub2><journal/></publication> \
               </> </>",
        )
        .unwrap();
        let out = evaluate(&q, &dept());
        assert_eq!(names_of(&out), ["professor"]);
    }

    #[test]
    fn single_publication_condition_matches_everyone() {
        let q = parse_query(
            "v = SELECT P WHERE <department> \
               P:<professor | gradStudent> <publication><journal/></publication> </> </>",
        )
        .unwrap();
        let out = evaluate(&q, &dept());
        // document order: professors before gradStudents
        assert_eq!(names_of(&out), ["professor", "professor", "gradStudent"]);
    }

    #[test]
    fn string_condition_filters() {
        let q = parse_query("v = SELECT P WHERE <department> <name>EE</name> P:<professor/> </>")
            .unwrap();
        assert_eq!(evaluate(&q, &dept()).root.children().len(), 0);
        let q = parse_query("v = SELECT P WHERE <department> <name>CS</name> P:<professor/> </>")
            .unwrap();
        assert_eq!(evaluate(&q, &dept()).root.children().len(), 2);
    }

    #[test]
    fn picks_are_in_document_order_and_deduplicated() {
        let q = parse_query(
            "pubs = SELECT P WHERE <department> <professor | gradStudent> \
               P:<publication/> </> </department>",
        )
        .unwrap();
        let out = evaluate(&q, &dept());
        // all five publications, in document order p1..p5
        let titles: Vec<&str> = out
            .root
            .children()
            .iter()
            .map(|p| p.children()[0].pcdata().unwrap())
            .collect();
        assert_eq!(titles, ["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn root_anchoring() {
        // condition rooted at professor does not match a department doc
        let q = parse_query("v = SELECT P WHERE P:<professor/>").unwrap();
        assert_eq!(evaluate(&q, &dept()).root.children().len(), 0);
    }

    #[test]
    fn pick_may_be_the_root() {
        let q = parse_query("v = SELECT D WHERE D:<department> <name>CS</name> </>").unwrap();
        let out = evaluate(&q, &dept());
        assert_eq!(names_of(&out), ["department"]);
    }

    #[test]
    fn wildcard_after_normalization() {
        use crate::normalize::normalize;
        let q = parse_query("v = SELECT X WHERE <department> <professor> X:<*/> </> </>").unwrap();
        let q = normalize(&q, &mix_dtd::paper::d1_department()).unwrap();
        let out = evaluate(&q, &dept());
        // every direct child of each professor: 5 for prof1, 4 for prof2
        assert_eq!(out.root.children().len(), 9);
    }

    #[test]
    fn view_ids_are_fresh_and_unique() {
        let q = parse_query(
            "pubs = SELECT P WHERE <department> <professor | gradStudent> \
               P:<publication/> </> </department>",
        )
        .unwrap();
        let out = evaluate(&q, &dept());
        assert!(out.duplicate_id().is_none());
        assert!(ids_of(&out, 1).iter().all(|id| id.starts_with('#')));
    }

    #[test]
    fn three_way_distinctness() {
        let q = parse_query(
            "v = SELECT P WHERE <department> P:<professor | gradStudent> \
               <publication id=A/> <publication id=B/> <publication id=C/> </> </> \
             AND A != B AND B != C AND A != C",
        )
        .unwrap();
        // nobody has three publications
        assert_eq!(evaluate(&q, &dept()).root.children().len(), 0);
    }
}
