//! Quickstart: infer a view DTD from a source DTD and a view definition.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mix::prelude::*;

fn main() {
    // 1. The source schema — the paper's department DTD (D1).
    let source = parse_compact(
        "{<department : name, professor+, gradStudent+, course*>\
          <professor : firstName, lastName, publication+, teaches>\
          <gradStudent : firstName, lastName, publication+>\
          <publication : title, author+, (journal | conference)>\
          <teaches : EMPTY> <journal : EMPTY> <conference : EMPTY> <course : EMPTY>}",
    )
    .expect("D1 parses");
    println!("Source DTD (D1):\n{source}\n");

    // 2. A view definition — the paper's (Q2): people with at least two
    //    journal publications.
    let q2 = parse_query(
        "withJournals = SELECT P \
         WHERE <department> <name>CS</name> \
           P:<professor | gradStudent> \
             <publication id=Pub1><journal/></publication> \
             <publication id=Pub2><journal/></publication> \
           </> \
         </> \
         AND Pub1 != Pub2",
    )
    .expect("Q2 parses");
    println!("View definition (Q2):\n{q2}\n");

    // 3. Run the View DTD Inference module.
    let view = infer_view_dtd(&q2, &source).expect("inference succeeds");

    println!("Query classification: {:?}\n", view.verdict);
    println!(
        "Tight specialized view DTD (the paper's D4):\n{}\n",
        view.sdtd
    );
    println!("Merged plain view DTD (the paper's D2):\n{}\n", view.dtd);
    if !view.merged_names.is_empty() {
        println!(
            "⚠ merging lost tightness on: {:?} (Section 4.3's merge signal)\n",
            view.merged_names
                .iter()
                .map(|n| n.as_str())
                .collect::<Vec<_>>()
        );
    }

    // 4. Use the view DTD: validate a view document against it.
    let view_doc = parse_document(
        "<withJournals>\
           <professor><firstName>Yannis</firstName><lastName>P</lastName>\
             <publication><title>a</title><author>x</author><journal/></publication>\
             <publication><title>b</title><author>x</author><journal/></publication>\
             <teaches/></professor>\
         </withJournals>",
    )
    .unwrap();
    assert!(validate_document(&view.dtd, &view_doc).is_ok());
    assert!(sdtd_satisfies(&view.sdtd, &view_doc));
    println!("A two-journal professor satisfies both view DTDs ✓");

    // The s-DTD is tighter: a conference-only professor passes the merged
    // DTD but not the specialized one (Section 3.2's non-tightness).
    let sneaky = parse_document(
        "<withJournals>\
           <professor><firstName>N</firstName><lastName>N</lastName>\
             <publication><title>a</title><author>x</author><conference/></publication>\
             <publication><title>b</title><author>x</author><conference/></publication>\
             <teaches/></professor>\
         </withJournals>",
    )
    .unwrap();
    assert!(validate_document(&view.dtd, &sneaky).is_ok());
    assert!(!sdtd_satisfies(&view.sdtd, &sneaky));
    println!("A conference-only professor fools the plain DTD but not the s-DTD ✓");
}
