//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free,
//! non-poisoning API surface — exactly the subset this workspace uses.
//! Poisoned locks are recovered transparently: the paper reproduction never
//! shares partially-mutated state across a panic boundary, so recovering
//! the inner guard is sound here.

use std::sync::{self, PoisonError};

/// Reader–writer lock with `parking_lot`'s non-poisoning `read`/`write`.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

/// Shared read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard (never errors).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard (never errors).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Mutual-exclusion lock with `parking_lot`'s non-poisoning `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock (never errors).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(10);
        *m.lock() += 5;
        assert_eq!(m.into_inner(), 15);
    }
}
