//! Exact counting of the documents described by a DTD or s-DTD.
//!
//! This is the quantitative instrument behind the tightness experiments
//! (EXPERIMENTS.md, X1): a DTD `D1` that is tighter than `D2` describes a
//! subset of `D2`'s documents, and the *count* of described documents up to
//! a size bound measures how much looseness each inference algorithm leaves.
//!
//! What is counted: **name-tree shapes** — documents up to the
//! structural-class abstraction of Definition 3.5 with every PCDATA value
//! collapsed to a single representative. Size = number of element nodes.
//!
//! For s-DTDs the counting tree automaton is nondeterministic (a journal
//! publication satisfies both `publication` and `publication^1` of D4), so
//! shapes are bucketed by their exact *assignable-specialization set*
//! (bottom-up subset construction) to avoid double counting.

use crate::model::{ContentModel, Dtd, SDtd};
use mix_relang::symbol::{Name, Sym};
use mix_relang::{Dfa, Nfa};
use std::collections::HashMap;

fn saturating_mul_add(acc: u128, a: u128, b: u128) -> u128 {
    acc.saturating_add(a.saturating_mul(b))
}

/// Counts the name-tree shapes of each size `0..=max_size` satisfying `d`
/// (index = node count; index 0 is always 0).
pub fn count_documents_by_size(d: &Dtd, max_size: usize) -> Vec<u128> {
    // ways[name][s] = shapes of an element named `name` with s nodes total.
    let mut ways: HashMap<Name, Vec<u128>> = HashMap::new();
    let mut dfas: HashMap<Name, Dfa> = HashMap::new();
    for (n, m) in d.types.iter() {
        ways.insert(n, vec![0; max_size + 1]);
        if let ContentModel::Elements(r) = m {
            dfas.insert(n, Dfa::from_regex(r));
        }
    }
    for s in 1..=max_size {
        // compute ways[n][s] from ways[*][< s]
        let mut new_vals: Vec<(Name, u128)> = Vec::new();
        for (n, m) in d.types.iter() {
            let v = match m {
                ContentModel::Pcdata => u128::from(s == 1),
                ContentModel::Elements(_) => {
                    let dfa = &dfas[&n];
                    count_sequences(dfa, s - 1, &ways)
                }
            };
            new_vals.push((n, v));
        }
        for (n, v) in new_vals {
            ways.get_mut(&n).expect("all names present")[s] = v;
        }
    }
    let root = ways
        .get(&d.doc_type)
        .cloned()
        .unwrap_or_else(|| vec![0; max_size + 1]);
    root
}

/// Number of child sequences consuming exactly `budget` nodes, where a
/// child named `m` of size `k` contributes `ways[m][k]` choices.
fn count_sequences(dfa: &Dfa, budget: usize, ways: &HashMap<Name, Vec<u128>>) -> u128 {
    let nstates = dfa.len();
    let asz = dfa.alphabet.len();
    // f[b][q] = number of partial sequences of total size b ending in q
    let mut f = vec![vec![0u128; nstates]; budget + 1];
    f[0][dfa.start as usize] = 1;
    for b in 0..=budget {
        for q in 0..nstates {
            let cur = f[b][q];
            if cur == 0 {
                continue;
            }
            for a in 0..asz {
                let target = dfa.transitions[q * asz + a] as usize;
                let child = dfa.alphabet[a].name;
                let Some(w) = ways.get(&child) else { continue };
                for (k, &cnt) in w.iter().enumerate().skip(1) {
                    if b + k > budget {
                        break;
                    }
                    if cnt == 0 {
                        continue;
                    }
                    f[b + k][target] = saturating_mul_add(f[b + k][target], cur, cnt);
                }
            }
        }
    }
    (0..nstates)
        .filter(|&q| dfa.accepting[q])
        .fold(0u128, |acc, q| acc.saturating_add(f[budget][q]))
}

/// Total shapes of size ≤ `max_size` satisfying `d`.
pub fn count_documents_upto(d: &Dtd, max_size: usize) -> u128 {
    count_documents_by_size(d, max_size)
        .into_iter()
        .fold(0u128, |a, b| a.saturating_add(b))
}

/// A subset of the specializations of one name, as a bitmask over
/// `SDtd::specializations(n)` order.
type SpecSet = u32;

/// Counts the name-tree shapes of each size `0..=max_size` satisfying the
/// s-DTD (Definition 3.10 semantics; exact, no double counting).
pub fn count_sdocuments_by_size(sd: &SDtd, max_size: usize) -> Vec<u128> {
    let names: Vec<Name> = {
        let mut v: Vec<Name> = sd.types.keys().map(|s| s.name).collect();
        v.sort();
        v.dedup();
        v
    };
    let specs: HashMap<Name, Vec<Sym>> =
        names.iter().map(|&n| (n, sd.specializations(n))).collect();
    let nfas: HashMap<Sym, Nfa> = sd
        .types
        .iter()
        .filter_map(|(s, m)| m.regex().map(|r| (s, Nfa::from_regex(r))))
        .collect();
    // cnt[name][(set, size)] = number of shapes with that exact assignable set
    let mut cnt: HashMap<Name, HashMap<(SpecSet, usize), u128>> =
        names.iter().map(|&n| (n, HashMap::new())).collect();
    for s in 1..=max_size {
        let mut updates: Vec<(Name, SpecSet, u128)> = Vec::new();
        for &n in &names {
            if s == 1 {
                // text leaf: assignable = PCDATA specializations
                let mut text_set: SpecSet = 0;
                // empty element: assignable = nullable element models
                let mut empty_set: SpecSet = 0;
                for (i, &sp) in specs[&n].iter().enumerate() {
                    match sd.get(sp) {
                        Some(ContentModel::Pcdata) => text_set |= 1 << i,
                        Some(ContentModel::Elements(r)) if r.nullable() => empty_set |= 1 << i,
                        _ => {}
                    }
                }
                if text_set != 0 {
                    updates.push((n, text_set, 1));
                }
                if empty_set != 0 {
                    updates.push((n, empty_set, 1));
                }
                // also one-node subtrees counted through the sequence DP
                // below would be empty-element too; skip the DP at size 1
                continue;
            }
            // element with children totalling s-1 nodes (at least one child)
            for (set, c) in count_spec_sequences(&specs[&n], &nfas, sd, s - 1, &cnt) {
                if set != 0 && c != 0 {
                    updates.push((n, set, c));
                }
            }
        }
        for (n, set, c) in updates {
            let slot = cnt
                .get_mut(&n)
                .expect("all names present")
                .entry((set, s))
                .or_insert(0);
            *slot = slot.saturating_add(c);
        }
    }
    // Roll up: accepted documents are those whose root assignable set
    // contains the document type symbol.
    let root = sd.doc_type.name;
    let root_specs = specs.get(&root).cloned().unwrap_or_default();
    let Some(pos) = root_specs.iter().position(|&x| x == sd.doc_type) else {
        return vec![0; max_size + 1];
    };
    let mut out = vec![0u128; max_size + 1];
    if let Some(m) = cnt.get(&root) {
        for (&(set, size), &c) in m {
            if set & (1 << pos) != 0 {
                out[size] = out[size].saturating_add(c);
            }
        }
    }
    out
}

/// Enumerates `(assignable set, count)` of child sequences of exactly
/// `budget` nodes (budget ≥ 1) for the parent name `n`.
fn count_spec_sequences(
    n_specs: &[Sym],
    nfas: &HashMap<Sym, Nfa>,
    sd: &SDtd,
    budget: usize,
    cnt: &HashMap<Name, HashMap<(SpecSet, usize), u128>>,
) -> Vec<(SpecSet, u128)> {
    // Joint simulation state: per spec, the NFA state set (element models
    // only; PCDATA specs never accept element content with ≥1 child — and
    // with 0 children the size-1 path above handles it).
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Joint(Vec<Vec<bool>>);
    let element_specs: Vec<(usize, &Nfa)> = n_specs
        .iter()
        .enumerate()
        .filter_map(|(i, sp)| nfas.get(sp).map(|a| (i, a)))
        .collect();
    if element_specs.is_empty() {
        return Vec::new();
    }
    let start = Joint(
        element_specs
            .iter()
            .map(|(_, a)| {
                let mut v = vec![false; a.len()];
                v[0] = true;
                v
            })
            .collect(),
    );
    // dp[b] : state -> count
    let mut dp: Vec<HashMap<Joint, u128>> = vec![HashMap::new(); budget + 1];
    dp[0].insert(start, 1);
    // Child classes: (name m, set A, size k) with count cnt[m][(A,k)].
    for b in 0..budget {
        if dp[b].is_empty() {
            continue;
        }
        let states: Vec<(Joint, u128)> = dp[b].iter().map(|(j, c)| (j.clone(), *c)).collect();
        for (joint, c) in states {
            for (m, classes) in cnt.iter() {
                for (&(set, k), &ways) in classes {
                    if ways == 0 || b + k > budget {
                        continue;
                    }
                    // letters offered by this child class
                    let letters: Vec<Sym> = sd
                        .specializations(*m)
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| set & (1 << i) != 0)
                        .map(|(_, &sp)| sp)
                        .collect();
                    let mut next = Vec::with_capacity(joint.0.len());
                    let mut all_dead = true;
                    for ((_, nfa), cur) in element_specs.iter().zip(&joint.0) {
                        let mut nx = vec![false; nfa.len()];
                        for (st, live) in cur.iter().enumerate() {
                            if !live {
                                continue;
                            }
                            for &(sym, t) in &nfa.transitions[st] {
                                if letters.contains(&sym) {
                                    nx[t as usize] = true;
                                }
                            }
                        }
                        if nx.iter().any(|&x| x) {
                            all_dead = false;
                        }
                        next.push(nx);
                    }
                    if all_dead {
                        continue; // no specialization can extend: prune
                    }
                    let slot = dp[b + k].entry(Joint(next)).or_insert(0);
                    *slot = saturating_mul_add(*slot, c, ways);
                }
            }
        }
    }
    // Collapse final states into assignable sets.
    let mut out: HashMap<SpecSet, u128> = HashMap::new();
    for (joint, c) in &dp[budget] {
        let mut set: SpecSet = 0;
        for ((i, nfa), statevec) in element_specs.iter().zip(&joint.0) {
            let accepted = statevec
                .iter()
                .zip(&nfa.accepting)
                .any(|(live, acc)| *live && *acc);
            if accepted {
                set |= 1 << i;
            }
        }
        let slot = out.entry(set).or_insert(0);
        *slot = slot.saturating_add(*c);
    }
    out.into_iter().collect()
}

/// Total shapes of size ≤ `max_size` satisfying the s-DTD.
pub fn count_sdocuments_upto(sd: &SDtd, max_size: usize) -> u128 {
    count_sdocuments_by_size(sd, max_size)
        .into_iter()
        .fold(0u128, |a, b| a.saturating_add(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_compact, parse_compact_sdtd};

    #[test]
    fn flat_counts() {
        // r has a* children, a is PCDATA: one shape per child count.
        let d = parse_compact("{<r : a*> <a : PCDATA>}").unwrap();
        let c = count_documents_by_size(&d, 5);
        assert_eq!(c, vec![0, 1, 1, 1, 1, 1]);
        assert_eq!(count_documents_upto(&d, 5), 5);
    }

    #[test]
    fn branching_counts() {
        // r : (a | b)*, both PCDATA: 2^(s-1) shapes of size s.
        let d = parse_compact("{<r : (a | b)*> <a : PCDATA> <b : PCDATA>}").unwrap();
        let c = count_documents_by_size(&d, 4);
        assert_eq!(c, vec![0, 1, 2, 4, 8]);
    }

    #[test]
    fn fixed_arity() {
        let d = parse_compact("{<r : a, a> <a : PCDATA>}").unwrap();
        let c = count_documents_by_size(&d, 4);
        assert_eq!(c, vec![0, 0, 0, 1, 0]);
    }

    #[test]
    fn recursive_counts_are_catalan_like() {
        // t : t?  — unary chains: exactly one shape per size.
        let d = parse_compact("{<t : t?>}").unwrap();
        let c = count_documents_by_size(&d, 6);
        assert_eq!(c, vec![0, 1, 1, 1, 1, 1, 1]);
        // binary trees: t : (t, t)? — Catalan numbers on odd sizes.
        let d = parse_compact("{<t : (t, t)?>}").unwrap();
        let c = count_documents_by_size(&d, 7);
        assert_eq!(c[1], 1); // leaf
        assert_eq!(c[3], 1); // one internal node
        assert_eq!(c[5], 2);
        assert_eq!(c[7], 5);
        assert_eq!(c[2] + c[4] + c[6], 0);
    }

    #[test]
    fn unproductive_counts_zero() {
        let d = parse_compact("{<r : r>}").unwrap();
        assert_eq!(count_documents_upto(&d, 8), 0);
    }

    #[test]
    fn tighter_dtd_counts_fewer() {
        let loose = parse_compact("{<v : p*> <p : (j | c)> <j : EMPTY> <c : EMPTY>}").unwrap();
        let tight = parse_compact("{<v : p*> <p : j> <j : EMPTY>}").unwrap();
        for s in [3, 5, 9] {
            assert!(count_documents_upto(&tight, s) < count_documents_upto(&loose, s));
        }
    }

    #[test]
    fn sdtd_counting_matches_plain_when_untagged() {
        let d =
            parse_compact("{<r : a*, b?> <a : (x | y)?> <b : PCDATA> <x : EMPTY> <y : PCDATA>}")
                .unwrap();
        let sd = crate::model::SDtd::from_dtd(&d);
        let plain = count_documents_by_size(&d, 8);
        let specialized = count_sdocuments_by_size(&sd, 8);
        assert_eq!(plain, specialized);
    }

    #[test]
    fn sdtd_counting_no_double_count_on_ambiguity() {
        // x accepts both x (anything) and x^1 (only empty): an empty x
        // satisfies both; it must be counted once.
        let sd = parse_compact_sdtd("{<r : x | x^1> <x : y?> <x^1 : EMPTY> <y : EMPTY>}").unwrap();
        let c = count_sdocuments_by_size(&sd, 3);
        // size 2: r with one child x: either empty x (1 shape) or x with y
        // (that's size 3). So c[2] == 1, c[3] == 1.
        assert_eq!(c[2], 1, "empty x counted once, not twice: {c:?}");
        assert_eq!(c[3], 1);
    }

    #[test]
    fn sdtd_two_journal_constraint_counts_fewer_than_merged() {
        let sd = parse_compact_sdtd(
            "{<v : professor>\
              <professor : publication*, publication^1, publication*, publication^1, publication*>\
              <publication : (journal | conference)>\
              <publication^1 : journal>\
              <journal : EMPTY> <conference : EMPTY>}",
        )
        .unwrap();
        let merged = parse_compact(
            "{<v : professor>\
              <professor : publication, publication, publication*>\
              <publication : (journal | conference)>\
              <journal : EMPTY> <conference : EMPTY>}",
        )
        .unwrap();
        let cs = count_sdocuments_upto(&sd, 10);
        let cm = count_documents_upto(&merged, 10);
        assert!(cs < cm, "s-DTD must be strictly tighter: {cs} vs {cm}");
        assert!(cs > 0);
    }
}
