//! Random generation of valid documents for a DTD — the workload generator
//! behind the empirical soundness experiments (X2) and the benches.

use crate::analysis::{productive, restrict};
use crate::model::{ContentModel, Dtd};
use mix_relang::ast::Regex;
use mix_relang::sample::{sample_word, SampleConfig};
use mix_relang::symbol::Name;
use mix_xml::{Content, Document, ElemId, Element};
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// Knobs for [`DocSampler`].
#[derive(Debug, Clone)]
pub struct DocConfig {
    /// Soft bound on total element nodes; once exceeded, every remaining
    /// expansion is minimal.
    pub max_nodes: usize,
    /// Probability of continuing a `*`/`+` loop (passed to the word
    /// sampler).
    pub loop_continue: f64,
    /// Soft bound on the fan-out sampled for one element.
    pub max_fanout: usize,
    /// PCDATA values are drawn uniformly from this pool (a small pool makes
    /// string-equality query conditions selectively satisfiable).
    pub string_pool: Vec<String>,
}

impl Default for DocConfig {
    fn default() -> Self {
        DocConfig {
            max_nodes: 120,
            loop_continue: 0.5,
            max_fanout: 8,
            string_pool: ["CS", "EE", "Math", "alpha", "beta", "gamma"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }
}

/// A reusable random-document generator for one DTD.
///
/// Every produced document satisfies the DTD (the generator restricts each
/// content model to the productive alphabet, so recursion always has an
/// exit).
pub struct DocSampler<'d> {
    dtd: &'d Dtd,
    cfg: DocConfig,
    /// Content models restricted to productive names.
    restricted: HashMap<Name, Regex>,
    /// Precomputed minimal expansions.
    min_sizes: HashMap<Name, usize>,
}

impl<'d> DocSampler<'d> {
    /// Prepares a sampler; returns `None` when the DTD describes no
    /// documents at all (unproductive document type).
    pub fn new(dtd: &'d Dtd, cfg: DocConfig) -> Option<DocSampler<'d>> {
        let prod = productive(dtd);
        if !prod.contains(&dtd.doc_type) {
            return None;
        }
        let mut restricted = HashMap::new();
        for (n, m) in dtd.types.iter() {
            if let ContentModel::Elements(r) = m {
                restricted.insert(n, restrict(r, &prod));
            }
        }
        let min_sizes = minimal_sizes(dtd, &prod, &restricted);
        Some(DocSampler {
            dtd,
            cfg,
            restricted,
            min_sizes,
        })
    }

    /// Samples one valid document.
    pub fn sample(&self, rng: &mut impl Rng) -> Document {
        let mut budget = self.cfg.max_nodes;
        let root = self.element(self.dtd.doc_type, rng, &mut budget);
        Document::new(root)
    }

    fn element(&self, n: Name, rng: &mut impl Rng, budget: &mut usize) -> Element {
        *budget = budget.saturating_sub(1);
        match self.dtd.get(n) {
            Some(ContentModel::Pcdata) => {
                let pool = &self.cfg.string_pool;
                let v = if pool.is_empty() {
                    String::new()
                } else {
                    pool[rng.gen_range(0..pool.len())].clone()
                };
                Element {
                    name: n,
                    id: ElemId::fresh(),
                    content: Content::Text(v),
                }
            }
            Some(ContentModel::Elements(_)) => {
                let r = &self.restricted[&n];
                let word = if *budget == 0 {
                    minimal_word(r, &self.min_sizes).expect("productive name has a word")
                } else {
                    let cfg = SampleConfig {
                        loop_continue: self.cfg.loop_continue,
                        max_len: self.cfg.max_fanout.min(*budget),
                    };
                    sample_word(r, rng, cfg).expect("productive name has a word")
                };
                let children = word
                    .into_iter()
                    .map(|s| self.element(s.name, rng, budget))
                    .collect();
                Element {
                    name: n,
                    id: ElemId::fresh(),
                    content: Content::Elements(children),
                }
            }
            None => {
                // Undefined names cannot appear in restricted words; treat
                // defensively as an empty element.
                Element::new(n.as_str(), vec![])
            }
        }
    }
}

/// Minimal document size per productive name (fixpoint over `min_word_len`
/// weighted by child minima).
pub(crate) fn minimal_sizes(
    dtd: &Dtd,
    prod: &HashSet<Name>,
    restricted: &HashMap<Name, Regex>,
) -> HashMap<Name, usize> {
    let mut sizes: HashMap<Name, usize> = HashMap::new();
    loop {
        let mut changed = false;
        for (n, m) in dtd.types.iter() {
            if !prod.contains(&n) || sizes.contains_key(&n) {
                continue;
            }
            let v = match m {
                ContentModel::Pcdata => Some(1),
                ContentModel::Elements(_) => min_cost(&restricted[&n], &sizes).map(|c| c + 1),
            };
            if let Some(v) = v {
                sizes.insert(n, v);
                changed = true;
            }
        }
        if !changed {
            return sizes;
        }
    }
}

/// Cheapest total child size of a word in `L(r)` where name `n` costs
/// `sizes[n]`; `None` if no word is currently costable.
pub(crate) fn min_cost(r: &Regex, sizes: &HashMap<Name, usize>) -> Option<usize> {
    match r {
        Regex::Empty => None,
        Regex::Epsilon => Some(0),
        Regex::Sym(s) => sizes.get(&s.name).copied(),
        Regex::Concat(v) => v.iter().map(|x| min_cost(x, sizes)).sum(),
        Regex::Alt(v) => v.iter().filter_map(|x| min_cost(x, sizes)).min(),
        Regex::Star(_) | Regex::Opt(_) => Some(0),
        Regex::Plus(x) => min_cost(x, sizes),
    }
}

/// A minimal-cost word of `L(r)`.
pub(crate) fn minimal_word(
    r: &Regex,
    sizes: &HashMap<Name, usize>,
) -> Option<Vec<mix_relang::Sym>> {
    match r {
        Regex::Empty => None,
        Regex::Epsilon | Regex::Star(_) | Regex::Opt(_) => Some(vec![]),
        Regex::Sym(s) => sizes.get(&s.name).map(|_| vec![*s]),
        Regex::Concat(v) => {
            let mut out = Vec::new();
            for x in v {
                out.extend(minimal_word(x, sizes)?);
            }
            Some(out)
        }
        Regex::Alt(v) => v
            .iter()
            .filter_map(|x| minimal_word(x, sizes).map(|w| (min_cost(x, sizes), w)))
            .min_by_key(|(c, _)| c.unwrap_or(usize::MAX))
            .map(|(_, w)| w),
        Regex::Plus(x) => minimal_word(x, sizes),
    }
}

/// Convenience: sample `count` documents with a fixed seed.
pub fn sample_documents(dtd: &Dtd, count: usize, seed: u64, cfg: DocConfig) -> Vec<Document> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let sampler = DocSampler::new(dtd, cfg).expect("DTD describes documents");
    (0..count).map(|_| sampler.sample(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{d1_department, section_recursive};
    use crate::validate::satisfies;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_satisfy_d1() {
        let d = d1_department();
        for doc in sample_documents(&d, 100, 7, DocConfig::default()) {
            assert!(satisfies(&d, &doc), "invalid sample:\n{doc:?}");
        }
    }

    #[test]
    fn samples_satisfy_recursive_dtd_and_terminate() {
        let d = section_recursive();
        let cfg = DocConfig {
            max_nodes: 60,
            loop_continue: 0.6,
            ..DocConfig::default()
        };
        for doc in sample_documents(&d, 100, 13, cfg) {
            assert!(satisfies(&d, &doc));
            assert!(doc.size() < 4000, "runaway recursion: {} nodes", doc.size());
        }
    }

    #[test]
    fn unproductive_dtd_yields_no_sampler() {
        let d = crate::parse::parse_compact("{<r : r>}").unwrap();
        assert!(DocSampler::new(&d, DocConfig::default()).is_none());
    }

    #[test]
    fn unproductive_branch_is_never_taken() {
        let d =
            crate::parse::parse_compact("{<r : (loop | a)+> <loop : loop> <a : PCDATA>}").unwrap();
        for doc in sample_documents(&d, 50, 3, DocConfig::default()) {
            assert!(satisfies(&d, &doc));
            assert!(doc.root.walk().all(|e| e.name.as_str() != "loop"));
        }
    }

    #[test]
    fn budget_caps_document_size() {
        let d = crate::parse::parse_compact("{<r : a+> <a : b*> <b : PCDATA>}").unwrap();
        let cfg = DocConfig {
            max_nodes: 10,
            loop_continue: 0.95,
            max_fanout: 6,
            ..DocConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let sampler = DocSampler::new(&d, cfg).unwrap();
        for _ in 0..50 {
            let doc = sampler.sample(&mut rng);
            // soft bound: once exhausted only minimal words are produced,
            // so sizes stay within budget + max_fanout slack
            assert!(doc.size() <= 10 + 6 + 1, "doc too big: {}", doc.size());
        }
    }

    #[test]
    fn strings_come_from_pool() {
        let d = crate::parse::parse_compact("{<r : a> <a : PCDATA>}").unwrap();
        let cfg = DocConfig {
            string_pool: vec!["only".into()],
            ..DocConfig::default()
        };
        for doc in sample_documents(&d, 10, 1, cfg) {
            assert_eq!(doc.root.children()[0].pcdata(), Some("only"));
        }
    }
}
