//! The DTD-based query interface as a workflow: structure summary →
//! menu-driven query construction (validated against the DTD at every
//! step) → classification → execution. This is the [BGL+] interface of
//! Section 1 with stdout instead of fill-in windows.
//!
//! ```sh
//! cargo run --example interactive_interface
//! ```

use mix::dtd::paper::d1_department;
use mix::mediator::{Constraint, QueryBuilder};
use mix::prelude::*;
use mix::relang::symbol::name;
use std::sync::Arc;

fn main() {
    let dtd = d1_department();

    // 1. The interface first shows the user what the data looks like.
    println!("── structure summary (what the interface displays) ──");
    println!("{}", render_structure(&dtd));

    // 2. The user opens the "department" menu; the interface lists the
    //    possible children with their cardinalities.
    let builder = QueryBuilder::new(&dtd, "withJournals");
    println!("── menu under <department> ──");
    for (child, occ) in builder.menu(name("department")) {
        println!(
            "  {child}  (min {} / max {})",
            occ.min,
            match occ.max {
                None => "∞".to_owned(),
                Some(m) => m.to_string(),
            }
        );
    }
    println!();

    // 3. The user clicks a query together. Every step is validated: an
    //    impossible path is rejected immediately, like a greyed-out menu.
    let mut b = QueryBuilder::new(&dtd, "withJournals");
    let err = b
        .require(&["department", "journal"], Constraint::Exists)
        .unwrap_err();
    println!("trying to require department/journal → {err}\n");

    b.require(&["department", "name"], Constraint::Text("CS".into()))
        .expect("name is a PCDATA child");
    let pub1 = b
        .require(
            &["department", "professor", "publication"],
            Constraint::Exists,
        )
        .expect("professor/publication path exists");
    b.require_under(&pub1, &["journal"], Constraint::Exists)
        .expect("journal inside publication");
    let pub2 = b
        .require(
            &["department", "professor", "publication"],
            Constraint::Exists,
        )
        .expect("a second, distinct publication");
    b.require_under(&pub2, &["journal"], Constraint::Exists)
        .expect("journal inside the second publication");
    b.pick(&["department", "professor"])
        .expect("pick professors");
    let query = b.build().expect("pick chosen");
    println!("── the query the interface built ──\n{query}\n");

    // 4. Before running anything the classification is shown.
    let nq = normalize(&query, &dtd).unwrap();
    println!(
        "classification against the source DTD: {:?}\n",
        classify_query(&nq, &dtd)
    );

    // 5. Run it through a mediator.
    let doc = parse_document(
        "<department><name>CS</name>\
           <professor><firstName>Yannis</firstName><lastName>P</lastName>\
             <publication><title>a</title><author>x</author><journal/></publication>\
             <publication><title>b</title><author>x</author><journal/></publication>\
             <teaches/></professor>\
           <professor><firstName>One</firstName><lastName>J</lastName>\
             <publication><title>c</title><author>x</author><journal/></publication>\
             <teaches/></professor>\
           <gradStudent><firstName>G</firstName><lastName>S</lastName>\
             <publication><title>d</title><author>x</author><journal/></publication>\
           </gradStudent></department>",
    )
    .unwrap();
    let mut mediator = Mediator::new();
    mediator.add_source("cs", Arc::new(XmlSource::new(dtd, doc).unwrap()));
    let registered = mediator.register_view("cs", &query).unwrap();
    println!(
        "── inferred view DTD shown back to the user ──\n{}\n",
        registered.inferred.dtd
    );
    let view = mediator.materialize(name("withJournals")).unwrap();
    println!(
        "── the view itself ──\n{}",
        write_document(&view, WriteConfig::default())
    );
    assert_eq!(view.root.children().len(), 1); // only the 2-journal professor
}
