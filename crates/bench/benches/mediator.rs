//! X8 + X9 — the mediator-level ablations that motivate the paper:
//!
//! * X8: answering a provably-empty query with the DTD-based simplifier
//!   on vs. off (the "heavy loss of performance" of living without
//!   structure, Section 1);
//! * X9: answering a member query by view–query composition vs. by
//!   materializing the view;
//! * X9b: materialized evaluation with vs. without DTD-guided condition
//!   pruning (dropping provably-valid subconditions before matching);
//! * X14: the degraded path — a union query over 10 sources with 0%,
//!   10%, and 50% of calls failing (seeded injection), measuring what
//!   retries, breaker accounting, and partial-answer assembly cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mix_bench::{d1, department_of_size};
use mix_mediator::{AnswerPath, FaultInjector, Mediator, ProcessorConfig, XmlSource};
use mix_relang::symbol::name;
use mix_xmas::parse_query;
use std::sync::Arc;
use std::time::Duration;

fn build(professors: usize, cfg: ProcessorConfig) -> Mediator {
    let mut m = Mediator::with_config(cfg);
    m.add_source(
        "cs",
        Arc::new(XmlSource::new(d1(), department_of_size(professors)).expect("valid")),
    );
    let view = parse_query(
        "withJournals = SELECT P WHERE <department> <name>CS</name> \
           P:<professor | gradStudent> <publication><journal/></publication> </> </>",
    )
    .expect("view parses");
    m.register_view("cs", &view).expect("registers");
    m
}

fn bench_mediator(c: &mut Criterion) {
    let mut g = c.benchmark_group("mediator");
    g.sample_size(20).measurement_time(Duration::from_secs(2));

    let unsat = parse_query(
        "ans = SELECT C WHERE <withJournals> <professor> C:<course/> </> </withJournals>",
    )
    .expect("parses");
    let member = parse_query(
        "ans = SELECT X WHERE <withJournals> X:<professor> <teaches/> </professor> </>",
    )
    .expect("parses");
    // a query whose conditions are all guaranteed by the view DTD — the
    // best case for condition pruning
    let prunable = parse_query(
        "ans = SELECT X WHERE <withJournals> X:<professor> \
           <firstName/> <lastName/> <publication><title/><author/></publication> \
         </professor> </withJournals>",
    )
    .expect("parses");

    for professors in [16usize, 64, 256] {
        let on = build(professors, ProcessorConfig::default());
        let off = build(
            professors,
            ProcessorConfig {
                use_simplifier: false,
                use_composition: false,
                use_condition_pruning: false,
                use_sat_pruning: false,
            },
        );
        let compose_only = build(
            professors,
            ProcessorConfig {
                use_simplifier: false,
                use_composition: true,
                use_condition_pruning: false,
                use_sat_pruning: false,
            },
        );

        // X8: unsatisfiable query, simplifier on vs off
        assert_eq!(
            on.query(&unsat).expect("answers").path,
            AnswerPath::PrunedUnsatisfiable
        );
        g.bench_with_input(
            BenchmarkId::new("unsat_simplifier_on", professors),
            &professors,
            |b, _| b.iter(|| on.query(&unsat).expect("answers")),
        );
        g.bench_with_input(
            BenchmarkId::new("unsat_simplifier_off", professors),
            &professors,
            |b, _| b.iter(|| off.query(&unsat).expect("answers")),
        );

        // X9: member query, composed vs materialized
        assert_eq!(
            compose_only.query(&member).expect("answers").path,
            AnswerPath::Composed
        );
        g.bench_with_input(
            BenchmarkId::new("member_composed", professors),
            &professors,
            |b, _| b.iter(|| compose_only.query(&member).expect("answers")),
        );
        g.bench_with_input(
            BenchmarkId::new("member_materialized", professors),
            &professors,
            |b, _| b.iter(|| off.query(&member).expect("answers")),
        );

        // X9b: condition pruning on vs off (both materialized)
        let pruning_only = build(
            professors,
            ProcessorConfig {
                use_simplifier: false,
                use_composition: false,
                use_condition_pruning: true,
                use_sat_pruning: false,
            },
        );
        g.bench_with_input(
            BenchmarkId::new("prunable_pruning_on", professors),
            &professors,
            |b, _| b.iter(|| pruning_only.query(&prunable).expect("answers")),
        );
        g.bench_with_input(
            BenchmarkId::new("prunable_pruning_off", professors),
            &professors,
            |b, _| b.iter(|| off.query(&prunable).expect("answers")),
        );
    }
    g.finish();
}

/// A 10-source union federation with the given per-call fault rate
/// injected in front of every site.
fn build_federation(professors: usize, rate: f64) -> Mediator {
    let mut m = Mediator::new();
    let q = parse_query("fed = SELECT P WHERE <department> P:<professor/> </department>")
        .expect("parses");
    let names: Vec<String> = (0..10).map(|i| format!("site{i}")).collect();
    let mut parts = Vec::new();
    for (i, n) in names.iter().enumerate() {
        let src = Arc::new(XmlSource::new(d1(), department_of_size(professors)).expect("valid"));
        let inj = FaultInjector::seeded(src, 0xFED0 + i as u64, rate);
        m.add_source(n, Arc::new(inj));
        parts.push((n.clone(), q.clone()));
    }
    let refs: Vec<(&str, mix_xmas::Query)> =
        parts.iter().map(|(s, q)| (s.as_str(), q.clone())).collect();
    m.register_union_view("fed", &refs).expect("registers");
    m
}

/// X14: materializing a degraded union — the price of resilience at
/// increasing failure rates.
fn bench_degraded_union(c: &mut Criterion) {
    let mut g = c.benchmark_group("degraded_union");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    for pct in [0u32, 10, 50] {
        let m = build_federation(32, pct as f64 / 100.0);
        // warm the snapshots so failures degrade to stale serving instead
        // of shrinking the answer (steady-state shape of a federation)
        let _ = m.materialize_with_report(name("fed"));
        g.bench_with_input(BenchmarkId::new("fail_rate_pct", pct), &pct, |b, _| {
            b.iter(|| {
                m.materialize_with_report(name("fed"))
                    .expect("some member always survives")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mediator, bench_degraded_union);
criterion_main!(benches);
