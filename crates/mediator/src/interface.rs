//! The DTD-based query interface (Section 1): renders the structure of a
//! (view) DTD as an indented tree with cardinality annotations, "which
//! displays the structure of the view elements and also provides fill-in
//! windows and menus that allow the user to place conditions on the
//! elements". We produce the textual structure summary such an interface
//! displays; cycles (recursive DTDs) are cut with a back-reference marker.

use mix_dtd::{ContentModel, Dtd};
use mix_relang::ast::Regex;
use mix_relang::symbol::Name;
use std::collections::HashSet;
use std::fmt::Write;

/// Occurrence bounds of a child name within a content model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occurs {
    /// Minimum number of occurrences in any word.
    pub min: u32,
    /// Maximum number of occurrences (`None` = unbounded).
    pub max: Option<u32>,
}

impl Occurs {
    fn display(self) -> String {
        match (self.min, self.max) {
            (1, Some(1)) => String::new(),
            (0, Some(1)) => " (0..1)".to_owned(),
            (0, None) => " (0..*)".to_owned(),
            (min, None) => format!(" ({min}..*)"),
            (min, Some(max)) => format!(" ({min}..{max})"),
        }
    }
}

/// Syntactic occurrence bounds of `n` in `r` (exact for star-free parts;
/// `min` takes the cheapest alternative, `max` the widest).
pub fn occurs(r: &Regex, n: Name) -> Occurs {
    fn go(r: &Regex, n: Name) -> (u32, Option<u32>) {
        match r {
            Regex::Empty | Regex::Epsilon => (0, Some(0)),
            Regex::Sym(s) => {
                if s.name == n {
                    (1, Some(1))
                } else {
                    (0, Some(0))
                }
            }
            Regex::Concat(v) => v.iter().fold((0, Some(0)), |(amin, amax), x| {
                let (bmin, bmax) = go(x, n);
                (
                    amin + bmin,
                    match (amax, bmax) {
                        (Some(a), Some(b)) => Some(a + b),
                        _ => None,
                    },
                )
            }),
            Regex::Alt(v) => v.iter().fold((u32::MAX, Some(0)), |(amin, amax), x| {
                let (bmin, bmax) = go(x, n);
                (
                    amin.min(bmin),
                    match (amax, bmax) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        _ => None,
                    },
                )
            }),
            Regex::Star(g) => {
                let (_, gmax) = go(g, n);
                (0, if gmax == Some(0) { Some(0) } else { None })
            }
            Regex::Plus(g) => {
                let (gmin, gmax) = go(g, n);
                (gmin, if gmax == Some(0) { Some(0) } else { None })
            }
            Regex::Opt(g) => {
                let (_, gmax) = go(g, n);
                (0, gmax)
            }
        }
    }
    let (min, max) = go(r, n);
    Occurs {
        min: if min == u32::MAX { 0 } else { min },
        max,
    }
}

/// Renders the structure summary the DTD-based query interface displays.
pub fn render_structure(dtd: &Dtd) -> String {
    let mut out = String::new();
    let mut path: HashSet<Name> = HashSet::new();
    render(dtd, dtd.doc_type, 0, &mut path, &mut out);
    out
}

fn render(dtd: &Dtd, n: Name, depth: usize, path: &mut HashSet<Name>, out: &mut String) {
    let pad = "  ".repeat(depth);
    match dtd.get(n) {
        None => {
            let _ = writeln!(out, "{pad}{n} (undeclared)");
        }
        Some(ContentModel::Pcdata) => {
            let _ = writeln!(out, "{pad}{n}: PCDATA");
        }
        Some(ContentModel::Elements(r)) => {
            let _ = writeln!(out, "{pad}{n}: {r}");
            if path.contains(&n) {
                let _ = writeln!(out, "{pad}  … (recursive)");
                return;
            }
            path.insert(n);
            let mut seen: Vec<Name> = Vec::new();
            for s in r.syms() {
                if seen.contains(&s.name) {
                    continue;
                }
                seen.push(s.name);
            }
            for child in seen {
                let o = occurs(r, child);
                match dtd.get(child) {
                    Some(ContentModel::Pcdata) => {
                        let _ = writeln!(out, "{pad}  {child}: PCDATA{}", o.display());
                    }
                    _ => {
                        let before = out.len();
                        render(dtd, child, depth + 1, path, out);
                        // annotate cardinality on the line we just wrote
                        if let Some(nl) = out[before..].find('\n') {
                            out.insert_str(before + nl, &o.display());
                        }
                    }
                }
            }
            path.remove(&n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_dtd::paper::{d1_department, section_recursive};
    use mix_relang::parse_regex;
    use mix_relang::symbol::name;

    #[test]
    fn occurrence_bounds() {
        let r = parse_regex("name, professor+, gradStudent*, course?").unwrap();
        assert_eq!(
            occurs(&r, name("name")),
            Occurs {
                min: 1,
                max: Some(1)
            }
        );
        assert_eq!(occurs(&r, name("professor")), Occurs { min: 1, max: None });
        assert_eq!(
            occurs(&r, name("gradStudent")),
            Occurs { min: 0, max: None }
        );
        assert_eq!(
            occurs(&r, name("course")),
            Occurs {
                min: 0,
                max: Some(1)
            }
        );
        let r = parse_regex("(journal | conference)").unwrap();
        assert_eq!(
            occurs(&r, name("journal")),
            Occurs {
                min: 0,
                max: Some(1)
            }
        );
        let r = parse_regex("a, a, a*").unwrap();
        assert_eq!(occurs(&r, name("a")), Occurs { min: 2, max: None });
    }

    #[test]
    fn renders_department_structure() {
        let s = render_structure(&d1_department());
        assert!(s.starts_with("department:"), "{s}");
        assert!(s.contains("professor:"));
        assert!(s.contains("firstName: PCDATA"));
        assert!(s.contains("(0..*)") || s.contains("(1..*)"), "{s}");
    }

    #[test]
    fn recursive_dtds_terminate() {
        let s = render_structure(&section_recursive());
        assert!(s.contains("(recursive)"), "{s}");
    }
}
