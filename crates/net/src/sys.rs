//! Thin raw-syscall shim for the reactor: a readiness poller (epoll on
//! Linux, poll(2) on other unixes) and a self-pipe waker.
//!
//! This is the only module in the workspace that speaks to the OS
//! directly — everything else stays on `std`. The declarations below are
//! the handful of stable POSIX/Linux entry points the reactor needs,
//! declared `extern "C"` against the platform libc the binary is linked
//! with anyway; no external crate is involved.
//!
//! Both backends are **level-triggered**: an event repeats on every
//! [`Poller::wait`] until the condition is consumed. The reactor relies
//! on that — it may read only part of a socket's pending bytes in one
//! tick (fair scheduling across connections) and expects to be told
//! again.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

#[cfg(not(unix))]
compile_error!("mix-net's reactor needs a unix readiness backend (epoll or poll)");

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    /// Reading will make progress (data, EOF, or a pending error).
    pub readable: bool,
    /// Writing will make progress.
    pub writable: bool,
}

/// Converts an optional timeout to the millisecond argument poll-family
/// calls take: `None` = block forever (-1); sub-millisecond timeouts
/// round *up* so a 200µs deadline does not busy-spin at zero.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
            ms.min(i32::MAX as u128) as i32
        }
    }
}

extern "C" {
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{timeout_ms, Event};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    // the kernel ABI packs epoll_event on x86-64 only
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// The epoll backend.
    pub struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(
            &mut self,
            op: i32,
            fd: RawFd,
            token: usize,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: if readable { EPOLLIN } else { 0 } | if writable { EPOLLOUT } else { 0 },
                data: token as u64,
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(
            &mut self,
            fd: RawFd,
            token: usize,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, readable, writable)
        }

        pub fn modify(
            &mut self,
            fd: RawFd,
            token: usize,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, readable, writable)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, false, false)
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for i in 0..n as usize {
                let ev = self.buf[i];
                let bits = ev.events;
                // errors and hangups surface as readability: the next
                // read reports the condition precisely (EOF or errno)
                let fail = bits & (EPOLLERR | EPOLLHUP) != 0;
                events.push(Event {
                    token: ev.data as usize,
                    readable: bits & EPOLLIN != 0 || fail,
                    writable: bits & EPOLLOUT != 0 || fail,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }

    /// Creates the waker pipe: nonblocking + close-on-exec both ends.
    pub fn waker_pipe() -> io::Result<[RawFd; 2]> {
        const O_NONBLOCK: i32 = 0o4000;
        const O_CLOEXEC: i32 = 0o2000000;
        extern "C" {
            fn pipe2(fds: *mut i32, flags: i32) -> i32;
        }
        let mut fds = [0i32; 2];
        if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fds)
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::{timeout_ms, Event};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    extern "C" {
        // nfds_t is `unsigned int` on the BSD family this backend serves
        fn poll(fds: *mut PollFd, nfds: u32, timeout: i32) -> i32;
    }

    /// The portable poll(2) backend: a dense pollfd array plus a parallel
    /// token array, rebuilt in place on (infrequent) dereg.
    pub struct Poller {
        fds: Vec<PollFd>,
        tokens: Vec<usize>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Vec::new(),
                tokens: Vec::new(),
            })
        }

        fn events_bits(readable: bool, writable: bool) -> i16 {
            (if readable { POLLIN } else { 0 }) | (if writable { POLLOUT } else { 0 })
        }

        pub fn register(
            &mut self,
            fd: RawFd,
            token: usize,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.fds.push(PollFd {
                fd,
                events: Self::events_bits(readable, writable),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        pub fn modify(
            &mut self,
            fd: RawFd,
            token: usize,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            for (i, p) in self.fds.iter_mut().enumerate() {
                if p.fd == fd {
                    p.events = Self::events_bits(readable, writable);
                    self.tokens[i] = token;
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            if let Some(i) = self.fds.iter().position(|p| p.fd == fd) {
                self.fds.swap_remove(i);
                self.tokens.swap_remove(i);
            }
            Ok(())
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let n = unsafe {
                poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as u32,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (p, &token) in self.fds.iter().zip(&self.tokens) {
                if p.revents == 0 {
                    continue;
                }
                let fail = p.revents & (POLLERR | POLLHUP | POLLNVAL) != 0;
                events.push(Event {
                    token,
                    readable: p.revents & POLLIN != 0 || fail,
                    writable: p.revents & POLLOUT != 0 || fail,
                });
            }
            Ok(())
        }
    }

    /// Creates the waker pipe: pipe(2) + fcntl for nonblocking/cloexec.
    pub fn waker_pipe() -> io::Result<[RawFd; 2]> {
        const F_SETFD: i32 = 2;
        const F_GETFL: i32 = 3;
        const F_SETFL: i32 = 4;
        const FD_CLOEXEC: i32 = 1;
        const O_NONBLOCK: i32 = 0x4; // BSD family
        extern "C" {
            fn pipe(fds: *mut i32) -> i32;
            fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        }
        let mut fds = [0i32; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            unsafe {
                let fl = fcntl(fd, F_GETFL, 0);
                fcntl(fd, F_SETFL, fl | O_NONBLOCK);
                fcntl(fd, F_SETFD, FD_CLOEXEC);
            }
        }
        Ok(fds)
    }
}

pub use imp::Poller;

/// A self-pipe waker: any thread can [`Waker::wake`] the reactor out of
/// its `wait` by writing one byte to the pipe; the reactor registers
/// [`Waker::read_fd`] and [`Waker::drain`]s it when it fires.
///
/// Thread-safe by construction — `write(2)` on a pipe is atomic for
/// single bytes, and a full pipe (`EAGAIN`) means a wake is already
/// pending, which is exactly the semantic wanted.
#[derive(Debug)]
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    /// Creates the pipe pair (both ends nonblocking, close-on-exec).
    pub fn new() -> io::Result<Waker> {
        let [read_fd, write_fd] = imp::waker_pipe()?;
        Ok(Waker { read_fd, write_fd })
    }

    /// The end to register with the [`Poller`] for readability.
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Wakes the reactor. Never blocks; a full pipe is a no-op because a
    /// wake is already pending.
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe { write(self.write_fd, &byte, 1) };
    }

    /// Consumes all pending wake bytes. Returns how many were pending.
    pub fn drain(&self) -> usize {
        let mut total = 0usize;
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                return total;
            }
            total += n as usize;
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_wakes_a_blocked_poller_and_drains() {
        let mut poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.register(waker.read_fd(), 1, true, false).unwrap();
        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w.wake();
            w.wake(); // coalesces, never blocks
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        t.join().unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        assert_eq!(waker.drain(), 2);
        // drained: a zero-timeout wait reports nothing
        events.clear();
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.iter().all(|e| e.token != 1));
    }

    #[test]
    fn timeout_expires_with_no_events() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(waker.read_fd(), 7, true, false).unwrap();
        let mut events = Vec::new();
        let t0 = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(25)))
            .unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert!(events.is_empty());
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .register(listener.as_raw_fd(), 0, true, false)
            .unwrap();
        let _client = std::net::TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 0 && e.readable));
        assert!(listener.accept().is_ok());
    }

    #[test]
    fn sub_millisecond_timeouts_round_up() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(200))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(40))), 40);
    }
}
