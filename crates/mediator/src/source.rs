//! Wrappers and sources.
//!
//! In the MIX architecture (Section 1) *wrappers* conceptually export the
//! source data as XML together with a DTD, and answer queries against it.
//! [`Wrapper`] is that interface; [`XmlSource`] is the standard
//! implementation backed by an in-memory document (our stand-in for the
//! paper's web sources and repositories); mediators themselves implement
//! `Wrapper` for stacking ("mediators can be stacked on top of
//! mediators").

use mix_dtd::{validate_document, Dtd, ValidationError};
use mix_xmas::{evaluate, normalize, Query};
use mix_xml::Document;

/// Anything that exports XML data typed by a DTD and answers pick-element
/// queries about it.
pub trait Wrapper: Send + Sync {
    /// The DTD of the exported data.
    fn dtd(&self) -> &Dtd;

    /// The full exported document.
    fn fetch(&self) -> Document;

    /// Answers a query whose condition is rooted at this source's document
    /// type. The default implementation evaluates over [`Wrapper::fetch`];
    /// real wrappers would push the query to the underlying system.
    fn answer(&self, q: &Query) -> Document {
        let doc = self.fetch();
        match normalize(q, self.dtd()) {
            Ok(nq) => evaluate(&nq, &doc),
            Err(_) => evaluate(q, &doc),
        }
    }
}

/// A source holding one valid XML document — the repository behind a
/// wrapper.
pub struct XmlSource {
    dtd: Dtd,
    document: Document,
}

impl XmlSource {
    /// Creates a source, validating the document against the DTD.
    pub fn new(dtd: Dtd, document: Document) -> Result<XmlSource, ValidationError> {
        validate_document(&dtd, &document)?;
        Ok(XmlSource { dtd, document })
    }

    /// Replaces the document (sources are dynamic), re-validating.
    pub fn update(&mut self, document: Document) -> Result<(), ValidationError> {
        validate_document(&self.dtd, &document)?;
        self.document = document;
        Ok(())
    }
}

impl Wrapper for XmlSource {
    fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    fn fetch(&self) -> Document {
        self.document.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_dtd::paper::d1_department;
    use mix_xmas::parse_query;
    use mix_xml::parse_document;

    fn doc() -> Document {
        parse_document(
            "<department><name>CS</name>\
               <professor><firstName>Y</firstName><lastName>P</lastName>\
                 <publication><title>t</title><author>a</author><journal/></publication>\
                 <teaches/></professor>\
               <gradStudent><firstName>P</firstName><lastName>V</lastName>\
                 <publication><title>u</title><author>a</author><conference/></publication>\
               </gradStudent></department>",
        )
        .unwrap()
    }

    #[test]
    fn source_validates_on_construction() {
        assert!(XmlSource::new(d1_department(), doc()).is_ok());
        let bad = parse_document("<department><name>CS</name></department>").unwrap();
        assert!(XmlSource::new(d1_department(), bad).is_err());
    }

    #[test]
    fn source_answers_queries() {
        let s = XmlSource::new(d1_department(), doc()).unwrap();
        let q = parse_query(
            "profs = SELECT P WHERE <department> P:<professor/> </department>",
        )
        .unwrap();
        let out = s.answer(&q);
        assert_eq!(out.root.children().len(), 1);
        assert_eq!(out.doc_type().as_str(), "profs");
    }

    #[test]
    fn update_revalidates() {
        let mut s = XmlSource::new(d1_department(), doc()).unwrap();
        let bad = parse_document("<department/>").unwrap();
        assert!(s.update(bad).is_err());
        assert!(s.update(doc()).is_ok());
    }
}
