//! X23 — DTD-driven satisfiability pruning: an 8-source federated
//! workload where 6 sources are *statically irrelevant* (their DTDs
//! provably cannot match the federated query), measured pruned versus
//! unpruned.
//!
//! Custom harness (not Criterion): the acceptance criteria are hard
//! assertions — the pruned run fetches exactly 2 of 8 sources
//! (`sat_pruned_total == 6`), the answers are byte-identical, tail
//! latency improves, and an `Unknown` verdict (a duplicated content
//! model defeats the sibling analysis) still fetches. Machine-readable
//! results land in `BENCH_PR10.json` at the workspace root.

use mix_dtd::parse_compact;
use mix_mediator::{Mediator, ProcessorConfig, SourceError, Wrapper, XmlSource};
use mix_obs::Registry;
use mix_relang::symbol::name;
use mix_xmas::{parse_query, Query};
use mix_xml::{parse_document, write_document, Document, WriteConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// An [`XmlSource`] that counts fetches, so the harness can prove the
/// pruned run never touched the irrelevant sources.
struct CountingSource {
    inner: XmlSource,
    fetches: Arc<AtomicUsize>,
}

impl CountingSource {
    fn new(inner: XmlSource) -> (CountingSource, Arc<AtomicUsize>) {
        let fetches = Arc::new(AtomicUsize::new(0));
        (
            CountingSource {
                inner,
                fetches: Arc::clone(&fetches),
            },
            fetches,
        )
    }
}

impl Wrapper for CountingSource {
    fn dtd(&self) -> &mix_dtd::Dtd {
        self.inner.dtd()
    }

    fn fetch(&self) -> Result<Document, SourceError> {
        self.fetches.fetch_add(1, Ordering::SeqCst);
        self.inner.fetch()
    }
}

/// A heavy, statically irrelevant source: a flat archive of PCDATA
/// entries whose document type can never match a `<department>`-rooted
/// query. The size is the point — this is the clone-and-evaluate work
/// the analyzer saves.
fn irrelevant_source(tag: &str, entries: usize) -> XmlSource {
    let dtd = parse_compact("{<archive : entry*> <entry : PCDATA>}").unwrap();
    let body: String = (0..entries)
        .map(|i| format!("<entry>{tag}-{i}</entry>"))
        .collect();
    let doc = parse_document(&format!("<archive>{body}</archive>")).unwrap();
    XmlSource::new(dtd, doc).expect("archive validates")
}

/// Builds the 8-member federation (2 relevant department sources, 6
/// heavy irrelevant archives) over counted wrappers.
fn build(config: ProcessorConfig, registry: Registry) -> (Mediator, Vec<Arc<AtomicUsize>>) {
    let q = mix_bench::q3();
    let mut m = Mediator::with_registry(config, registry);
    let mut counters = Vec::new();
    let mut parts: Vec<(String, Query)> = Vec::new();
    for i in 0..8usize {
        let site = format!("site{i}");
        let inner = if i < 2 {
            XmlSource::new(mix_bench::d1(), mix_bench::department_of_size(4 + 3 * i))
                .expect("department validates")
        } else {
            irrelevant_source(&site, 20_000)
        };
        let (source, fetches) = CountingSource::new(inner);
        m.add_source(&site, Arc::new(source));
        counters.push(fetches);
        parts.push((site, q.clone()));
    }
    let refs: Vec<(&str, Query)> = parts.iter().map(|(s, q)| (s.as_str(), q.clone())).collect();
    m.register_union_view("x23", &refs)
        .expect("union registers");
    (m, counters)
}

/// Materializes the view `iters` times, returning per-iteration seconds
/// and the rendered answer (asserted identical across iterations).
fn run(m: &Mediator, iters: usize) -> (Vec<f64>, String) {
    let mut latencies = Vec::with_capacity(iters);
    let mut reference: Option<String> = None;
    for _ in 0..iters {
        let t = Instant::now();
        let (doc, report) = m
            .materialize_with_report(name("x23"))
            .expect("federation serves");
        latencies.push(t.elapsed().as_secs_f64());
        assert!(report.is_clean(), "X23 runs fault-free: {report}");
        let rendered = write_document(&doc, WriteConfig::default());
        match &reference {
            None => reference = Some(rendered),
            Some(expect) => assert_eq!(expect, &rendered, "answer drifted across iterations"),
        }
    }
    (latencies, reference.expect("at least one iteration"))
}

/// The p-th percentile (nearest-rank) of unsorted latencies, in ms.
fn percentile_ms(latencies: &[f64], p: f64) -> f64 {
    let mut sorted = latencies.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)] * 1e3
}

fn main() {
    const ITERS: usize = 40;

    // -- pruned vs unpruned federation ------------------------------------
    let registry = Registry::new();
    let (pruned, pruned_fetches) = build(ProcessorConfig::default(), registry.clone());
    let (unpruned, unpruned_fetches) = build(
        ProcessorConfig {
            use_sat_pruning: false,
            ..ProcessorConfig::default()
        },
        Registry::new(),
    );

    // one probe answer each pins the per-iteration fetch counts and the
    // prune counter before the timing loop piles on
    let (_, pruned_answer) = run(&pruned, 1);
    let (_, unpruned_answer) = run(&unpruned, 1);
    let fetched: usize = pruned_fetches
        .iter()
        .map(|f| f.load(Ordering::SeqCst))
        .sum();
    let fetched_unpruned: usize = unpruned_fetches
        .iter()
        .map(|f| f.load(Ordering::SeqCst))
        .sum();
    assert_eq!(
        fetched, 2,
        "the pruned federation must fetch only the 2 relevant sources"
    );
    assert_eq!(
        fetched_unpruned, 8,
        "the unpruned federation fetches everything"
    );
    let sat_pruned = registry.snapshot().counters["sat_pruned_total"];
    assert_eq!(sat_pruned, 6, "exactly the 6 irrelevant members are pruned");
    assert_eq!(
        pruned_answer, unpruned_answer,
        "pruning changed the answer bytes"
    );
    println!(
        "X23: 8-source federation, fetches/answer 8 -> 2 (sat_pruned_total={sat_pruned}), \
         answers byte-identical ({} bytes)",
        pruned_answer.len()
    );

    let (pruned_lat, _) = run(&pruned, ITERS);
    let (unpruned_lat, _) = run(&unpruned, ITERS);
    let (p50, p99) = (
        percentile_ms(&pruned_lat, 50.0),
        percentile_ms(&pruned_lat, 99.0),
    );
    let (u50, u99) = (
        percentile_ms(&unpruned_lat, 50.0),
        percentile_ms(&unpruned_lat, 99.0),
    );
    println!(
        "X23: pruned p50 {p50:.3} ms, p99 {p99:.3} ms; unpruned p50 {u50:.3} ms, p99 {u99:.3} ms \
         ({:.1}x at the tail)",
        u99 / p99.max(1e-9)
    );
    // the pruned tail is bounded by the *relevant* members only — the
    // heavy irrelevant clones and evaluations are off the critical path
    assert!(
        p99 < u99,
        "pruning must improve tail latency (pruned p99 {p99:.3} ms vs unpruned {u99:.3} ms)"
    );

    // -- Unknown is not a license to skip ---------------------------------
    // a duplicated content model (a, b, a) defeats the duplicate-free
    // sibling analysis: the verdict degrades to Unknown and the source
    // is fetched — soundness over savings
    let unknown_registry = Registry::new();
    let mut m = Mediator::with_registry(ProcessorConfig::default(), unknown_registry.clone());
    let dup_dtd = parse_compact("{<r : a, b, a> <a : EMPTY> <b : EMPTY>}").unwrap();
    let dup_doc = parse_document("<r><a/><b/><a/></r>").unwrap();
    let (source, dup_fetches) =
        CountingSource::new(XmlSource::new(dup_dtd, dup_doc).expect("dup doc validates"));
    m.add_source("dup", Arc::new(source));
    let uq = parse_query("v = SELECT X WHERE <r> X:<b/> <b/> </>").unwrap();
    m.register_view("dup", &uq).expect("view registers");
    m.materialize(name("v"))
        .expect("unknown-verdict view serves");
    assert_eq!(
        dup_fetches.load(Ordering::SeqCst),
        1,
        "an Unknown verdict must still fetch"
    );
    let snap = unknown_registry.snapshot();
    assert_eq!(
        snap.counters["sat_unknown_total"], 1,
        "the analysis gave up exactly once"
    );
    assert_eq!(
        snap.counters["sat_pruned_total"], 0,
        "Unknown must never count as pruned"
    );
    println!("X23: duplicated-model source: verdict Unknown, fetched (never pruned)");

    let json = format!(
        "{{\n  \"experiment\": \"X23\",\n  \
         \"generated_by\": \"cargo bench -p mix-bench --bench sat\",\n  \
         \"sources\": 8,\n  \"irrelevant_sources\": 6,\n  \
         \"fetches_per_answer\": {{ \"pruned\": 2, \"unpruned\": 8 }},\n  \
         \"sat_pruned_total\": {sat_pruned},\n  \
         \"latency_ms\": {{\n    \"pruned\": {{ \"p50\": {p50:.3}, \"p99\": {p99:.3} }},\n    \
         \"unpruned\": {{ \"p50\": {u50:.3}, \"p99\": {u99:.3} }}\n  }},\n  \
         \"tail_speedup\": {:.2},\n  \
         \"unknown_source\": {{ \"verdict\": \"unknown\", \"fetched\": true }},\n  \
         \"byte_identical_answers\": true\n}}",
        u99 / p99.max(1e-9),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR10.json");
    std::fs::write(out, json + "\n").expect("write BENCH_PR10.json");
    println!("wrote {out}");
}
