//! Inference on *recursive* source DTDs.
//!
//! The paper's algorithm excludes queries with recursive *path
//! expressions* (Section 3.4 shows `startsAndEnds` has no tightest DTD at
//! all, and footnote 9 notes the one-level-extension step breaks on
//! them). Our pick-element language has no recursive paths, so every
//! expressible query has a fixed-depth pick path — and inference must
//! work fine even when the *DTD* is recursive.

use mix::dtd::paper::section_recursive;
use mix::dtd::sample::{sample_documents, DocConfig};
use mix::prelude::*;
use mix::relang::symbol::name;

#[test]
fn fixed_depth_queries_on_recursive_dtds_infer() {
    let d = section_recursive();
    // prologs of *top-level* sections (depth-1 picks only — no recursion
    // in the query itself)
    let q = parse_query("prologs = SELECT P WHERE <section> P:<prolog/> </section>").unwrap();
    let iv = infer_view_dtd(&q, &d).unwrap();
    assert_eq!(iv.verdict, Verdict::Valid); // every section has a prolog
    let root = iv.dtd.get(name("prologs")).unwrap().regex().unwrap();
    assert!(
        equivalent(root, &parse_regex("prolog").unwrap()),
        "got {root}"
    );
}

#[test]
fn second_level_picks_on_recursive_dtds() {
    let d = section_recursive();
    // prologs of depth-2 sections: the subsection list is section*, so
    // the view list is prolog*
    let q = parse_query(
        "subPrologs = SELECT P WHERE <section> <section> P:<prolog/> </section> </section>",
    )
    .unwrap();
    let iv = infer_view_dtd(&q, &d).unwrap();
    assert_eq!(iv.verdict, Verdict::Satisfiable); // a section may have no subsections
    let root = iv.dtd.get(name("subPrologs")).unwrap().regex().unwrap();
    assert!(
        equivalent(root, &parse_regex("prolog*").unwrap()),
        "got {root}"
    );
}

#[test]
fn recursive_pick_type_pulls_the_recursive_definition() {
    let d = section_recursive();
    // picking subsections themselves: their type must carry the full
    // recursive section definition
    let q = parse_query(
        "subs = SELECT S WHERE <section> S:<section> <conclusion/> </section> </section>",
    )
    .unwrap();
    let iv = infer_view_dtd(&q, &d).unwrap();
    assert!(iv.sdtd.types.keys().any(|s| s.name == name("section")));
    assert!(iv.dtd.undefined_names().is_empty());
    // the refined pick type still requires prolog … conclusion
    let s = iv.dtd.get(name("section")).unwrap().regex().unwrap();
    assert!(is_subset(
        s,
        &parse_regex("prolog, section*, conclusion").unwrap()
    ));
}

#[test]
fn soundness_holds_on_recursive_sources() {
    let d = section_recursive();
    let q =
        parse_query("subs = SELECT S WHERE <section> S:<section> <prolog/> </section> </section>")
            .unwrap();
    let iv = infer_view_dtd(&q, &d).unwrap();
    let cfg = DocConfig {
        max_nodes: 80,
        loop_continue: 0.6,
        ..DocConfig::default()
    };
    let validator = mix::dtd::validate::Validator::new(&iv.dtd);
    let acceptor = mix::dtd::sdtd::SAcceptor::new(&iv.sdtd);
    let mut nonempty = 0;
    for doc in sample_documents(&d, 120, 5, cfg) {
        let view = evaluate(&iv.query, &doc);
        if !view.root.children().is_empty() {
            nonempty += 1;
        }
        assert!(validator.validate_document(&view).is_ok());
        assert!(acceptor.document_satisfies(&view));
    }
    assert!(
        nonempty > 0,
        "the experiment never exercised a non-empty view"
    );
}

#[test]
fn counting_on_recursive_view_dtds_terminates() {
    let d = section_recursive();
    let q = parse_query("subs = SELECT S WHERE <section> S:<section/> </section>").unwrap();
    let rows = mix::infer::metrics::tightness_counts(&q, &d, 12);
    // sections of every size exist, and the ladder holds
    assert!(rows.iter().any(|r| r.specialized > 0));
    for r in rows {
        assert!(r.specialized <= r.merged && r.merged <= r.naive);
    }
}
