//! Per-source satisfiability of an XMAS tree pattern under a DTD — the
//! analyzer behind the mediator's "never fetch what is provably empty"
//! optimization.
//!
//! [`check_sat`] walks a normalized pattern top-down against the DTD
//! graph and returns a [`SatVerdict`]: `Sat` (no obstruction found),
//! `Unsat(reason)` (**provably** no valid document of the DTD matches —
//! the reason is the witness path), or `Unknown` (the analysis hit a
//! content model outside its tractable fragment; fall back to fetching).
//!
//! **Soundness rule.** Callers may skip work only on `Unsat`. Every
//! `Unsat` branch below is justified against the evaluator's semantics
//! (`mix_xmas::evaluate`) plus document validity (Definition 2.3):
//!
//! * the root condition is root-anchored, so a root test that excludes
//!   the document type never matches;
//! * a valid element's children word lies in `L(model) ∩ productive*`
//!   (subtrees of a finite valid document are finite and valid), so a
//!   child step whose test misses the restricted model's language-exact
//!   alphabet ([`mix_relang::pool::live_alphabet`]) can bind nothing;
//! * sibling conditions bind **distinct** children, so a set of required
//!   siblings induces a *need multiset* (name → multiplicity) that some
//!   word of the restricted model must dominate. Under a duplicate-free
//!   model ([`mix_dtd::ContentClass::DuplicateFree`], the tractable
//!   fragment of arXiv 1308.0769) that cover check is exact; other
//!   models degrade the joint check to `Unknown`, never to `Unsat`;
//! * text conditions never match an element with element content (and
//!   vice versa), because validity forbids the mismatch.
//!
//! Recursive DTDs need no visited set here: the walk descends the finite
//! *query* tree, and DTD-side recursion is already folded into the
//! [`mix_dtd::productive`] reachability fixpoint.
//!
//! Id-inequalities (`P1 != P2`) are deliberately ignored — dropping a
//! constraint can only make the analyzer *more* willing to say `Sat`,
//! which is the sound direction. The one exception, `X != X`, is folded
//! into `Unsat` before normalization can reject it.
//!
//! [`SatCache`] memoizes verdicts under the same process-independent
//! `(query fingerprint, DTD fingerprint)` key as the [`InferenceCache`](crate::InferenceCache),
//! with optional persistence through the [`WarmStore`] seam, and
//! [`check_sat_memo`] is the process-global entry point the wrapper
//! layers (streaming, remote) share.

use crate::cache::{fingerprint_dtd, fingerprint_query, Fingerprint, WarmStore};
use mix_dtd::{content_class, productive, restrict, ContentClass, ContentModel, Dtd};
use mix_obs::{Counter, Histogram, Registry};
use mix_relang::pool::{self, ReId, ReNode};
use mix_relang::symbol::Name;
use mix_xmas::{normalize, Body, Condition, NameTest, NormalizeError, Query};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Joint-sibling assignments enumerated before the check degrades to
/// `Unknown` (each child step with a k-name disjunctive test multiplies
/// the assignment count by k; single-name steps — the common case —
/// contribute a factor of 1).
pub const MAX_SIBLING_ASSIGNMENTS: usize = 64;

/// Default resident-entry bound of a [`SatCache`] (same philosophy as
/// [`crate::INFERENCE_CACHE_CAPACITY`]: verdicts are cheap to recompute,
/// so at the bound the table flushes wholesale).
pub const SAT_CACHE_CAPACITY: usize = 4096;

/// The satisfiability lattice: `Unsat < Unknown < Sat`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatVerdict {
    /// No obstruction found — the pattern may match some valid document.
    /// (Not a proof of satisfiability: id-inequalities are ignored.)
    Sat,
    /// **Provably** no valid document of the DTD matches; the string is
    /// the witness path explaining why. Callers may skip the fetch and
    /// synthesize the empty answer.
    Unsat(String),
    /// The analysis could not decide (non-tractable content model, or a
    /// normalization failure unrelated to satisfiability). Fetch.
    Unknown,
}

impl SatVerdict {
    /// Is this a provable `Unsat` — the only verdict that licenses
    /// skipping work?
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatVerdict::Unsat(_))
    }

    /// The `Unsat` witness, if any.
    pub fn reason(&self) -> Option<&str> {
        match self {
            SatVerdict::Unsat(r) => Some(r),
            _ => None,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            SatVerdict::Unsat(_) => 0,
            SatVerdict::Unknown => 1,
            SatVerdict::Sat => 2,
        }
    }

    /// Lattice meet (conjunction): keeps the *first* `Unsat` witness.
    fn and(self, other: SatVerdict) -> SatVerdict {
        if other.rank() < self.rank() {
            other
        } else {
            self
        }
    }

    /// Lattice join (disjunction): on equal ranks keeps the *latest*
    /// value, so folding from an `Unsat("")` seed picks up a real witness.
    fn or(self, other: SatVerdict) -> SatVerdict {
        if other.rank() >= self.rank() {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for SatVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SatVerdict::Sat => write!(f, "sat"),
            SatVerdict::Unsat(r) => write!(f, "unsat: {r}"),
            SatVerdict::Unknown => write!(f, "unknown"),
        }
    }
}

fn fmt_test(t: &NameTest) -> String {
    match t {
        NameTest::Wildcard => "*".to_owned(),
        NameTest::Names(v) => {
            let mut out = String::new();
            for (i, n) in v.iter().enumerate() {
                if i > 0 {
                    out.push('|');
                }
                out.push_str(n.as_str());
            }
            out
        }
    }
}

fn fmt_names(names: &[Name]) -> String {
    if names.is_empty() {
        return "none".to_owned();
    }
    let mut v: Vec<&str> = names.iter().map(|n| n.as_str()).collect();
    v.sort_unstable();
    v.join(", ")
}

/// Satisfiability of a (surface) query against a source DTD. Normalizes
/// internally: a `X != X` constraint folds into `Unsat`, any other
/// normalization failure into `Unknown` (the fetch path will surface it
/// as the error the client already knows).
pub fn check_sat(q: &Query, dtd: &Dtd) -> SatVerdict {
    match normalize(q, dtd) {
        Ok(nq) => check_sat_normalized(&nq, dtd),
        Err(NormalizeError::SelfDiseq(v)) => {
            SatVerdict::Unsat(format!("constraint '{v} != {v}' can never hold"))
        }
        Err(_) => SatVerdict::Unknown,
    }
}

/// Satisfiability of an already-normalized query against a source DTD.
pub fn check_sat_normalized(nq: &Query, dtd: &Dtd) -> SatVerdict {
    if !nq.root.test.matches(dtd.doc_type) {
        return SatVerdict::Unsat(format!(
            "root step <{}> never matches document type <{}>",
            fmt_test(&nq.root.test),
            dtd.doc_type
        ));
    }
    let prod = productive(dtd);
    if !prod.contains(&dtd.doc_type) {
        return SatVerdict::Unsat(format!(
            "document type <{}> derives no finite document",
            dtd.doc_type
        ));
    }
    let mut walker = Walker {
        dtd,
        prod,
        restricted: HashMap::new(),
    };
    walker.walk(&nq.root, dtd.doc_type, dtd.doc_type.as_str())
}

/// Per-check state: the productive-name set and a per-name memo of the
/// restricted (pool-interned) content models.
struct Walker<'a> {
    dtd: &'a Dtd,
    prod: HashSet<Name>,
    /// name → (interned `L(model) ∩ productive*`, duplicate-free?)
    restricted: HashMap<Name, (ReId, bool)>,
}

impl Walker<'_> {
    /// The realizable-children language of `n`'s content model: the
    /// model restricted to productive names, interned into the pool so
    /// its language-exact attributes (`live_alphabet`, `empty_lang`) are
    /// cached per node.
    fn restricted_model(&mut self, n: Name, r: &mix_relang::Regex) -> (ReId, bool) {
        if let Some(&hit) = self.restricted.get(&n) {
            return hit;
        }
        let restricted = restrict(r, &self.prod);
        let df = content_class(&ContentModel::Elements(restricted.clone()))
            == ContentClass::DuplicateFree;
        let entry = (mix_relang::intern(&restricted), df);
        self.restricted.insert(n, entry);
        entry
    }

    /// Satisfiability of `cond` matched against an element named `n`
    /// inside a valid document; `path` locates the step for witnesses.
    fn walk(&mut self, cond: &Condition, n: Name, path: &str) -> SatVerdict {
        let Some(model) = self.dtd.get(n) else {
            return SatVerdict::Unsat(format!("{path}: <{n}> is not declared in the DTD"));
        };
        match (&cond.body, model) {
            (Body::Text(_), ContentModel::Pcdata) => SatVerdict::Sat,
            (Body::Text(_), ContentModel::Elements(_)) => SatVerdict::Unsat(format!(
                "{path}: the pattern requires text content but <{n}> has element content"
            )),
            (Body::Children(cs), _) if cs.is_empty() => SatVerdict::Sat,
            (Body::Children(_), ContentModel::Pcdata) => SatVerdict::Unsat(format!(
                "{path}: the pattern requires child elements but <{n}> is PCDATA"
            )),
            (Body::Children(cs), ContentModel::Elements(r)) => self.walk_children(cs, n, r, path),
        }
    }

    fn walk_children(
        &mut self,
        cs: &[Condition],
        n: Name,
        r: &mix_relang::Regex,
        path: &str,
    ) -> SatVerdict {
        let (rid, duplicate_free) = self.restricted_model(n, r);
        let live: Vec<Name> = pool::live_alphabet(rid).iter().map(|s| s.name).collect();
        let mut verdict = SatVerdict::Sat;
        // per child step: the names it could still bind to (test names
        // that are realizable children and not recursively Unsat)
        let mut viable: Vec<Vec<Name>> = Vec::with_capacity(cs.len());
        for cc in cs {
            let mut feasible: Vec<Name> = cc
                .test
                .names()
                .iter()
                .copied()
                .filter(|m| live.contains(m))
                .collect();
            feasible.dedup();
            if feasible.is_empty() {
                return SatVerdict::Unsat(format!(
                    "{path}: child step <{}> never occurs under <{n}> (realizable children: {})",
                    fmt_test(&cc.test),
                    fmt_names(&live),
                ));
            }
            let mut child_verdict = SatVerdict::Unsat(String::new());
            let mut names = Vec::new();
            for &m in &feasible {
                let v = self.walk(cc, m, &format!("{path}/{m}"));
                if !v.is_unsat() {
                    names.push(m);
                }
                child_verdict = child_verdict.or(v);
            }
            if names.is_empty() {
                // every candidate name is recursively Unsat; the join of
                // all-Unsat carries the last inner witness
                return child_verdict;
            }
            verdict = verdict.and(child_verdict);
            viable.push(names);
        }
        if cs.len() >= 2 {
            if !duplicate_free {
                // outside the tractable fragment: the joint check would
                // need multiset splitting across duplicated occurrences
                verdict = verdict.and(SatVerdict::Unknown);
            } else {
                let combos = viable.iter().map(Vec::len).try_fold(1usize, |a, b| {
                    let p = a.checked_mul(b)?;
                    (p <= MAX_SIBLING_ASSIGNMENTS).then_some(p)
                });
                match combos {
                    None => verdict = verdict.and(SatVerdict::Unknown),
                    Some(_) if some_assignment_covers(rid, &viable) => {}
                    Some(_) => {
                        let steps: Vec<String> = cs.iter().map(|c| fmt_test(&c.test)).collect();
                        return SatVerdict::Unsat(format!(
                            "{path}: required siblings [{}] cannot jointly occur under <{n}>",
                            steps.join(", ")
                        ));
                    }
                }
            }
        }
        verdict
    }
}

/// Does any assignment of child steps to their viable names induce a
/// need multiset some word of `L(rid)` dominates? Enumerated with an
/// odometer over the (capped) cartesian product.
fn some_assignment_covers(rid: ReId, viable: &[Vec<Name>]) -> bool {
    let mut idx = vec![0usize; viable.len()];
    loop {
        let mut need: HashMap<Name, usize> = HashMap::new();
        for (slot, names) in idx.iter().zip(viable) {
            *need.entry(names[*slot]).or_insert(0) += 1;
        }
        if covers(rid, &need) {
            return true;
        }
        let mut i = 0;
        loop {
            if i == idx.len() {
                return false;
            }
            idx[i] += 1;
            if idx[i] < viable[i].len() {
                break;
            }
            idx[i] = 0;
            i += 1;
        }
    }
}

fn in_live(id: ReId, n: Name) -> bool {
    pool::live_alphabet(id).iter().any(|s| s.name == n)
}

/// Is there a word `w ∈ L(id)` with `count_n(w) ≥ need[n]` for every
/// needed name? Exact on duplicate-free regexes: each needed name then
/// occurs in at most one concatenation factor, so the partition of the
/// need multiset is forced and no splitting search is required.
fn covers(id: ReId, need: &HashMap<Name, usize>) -> bool {
    if need.is_empty() {
        return !pool::empty_lang(id);
    }
    match pool::node(id) {
        ReNode::Empty | ReNode::Epsilon => false,
        ReNode::Sym(s) => need.len() == 1 && need.get(&s.name) == Some(&1),
        ReNode::Alt(parts) => parts.iter().any(|&p| covers(p, need)),
        ReNode::Concat(parts) => {
            let mut sub: Vec<HashMap<Name, usize>> = vec![HashMap::new(); parts.len()];
            'names: for (&n, &c) in need {
                for (i, &p) in parts.iter().enumerate() {
                    if in_live(p, n) {
                        sub[i].insert(n, c);
                        continue 'names;
                    }
                }
                return false;
            }
            parts.iter().zip(&sub).all(|(&p, s)| covers(p, s))
        }
        // a starred body supplies any multiplicity: one iteration per
        // needed occurrence, each from a word that realizes that name
        ReNode::Star(x) | ReNode::Plus(x) => need.keys().all(|&n| in_live(x, n)),
        ReNode::Opt(x) => covers(x, need),
    }
}

/// A concurrency-safe verdict memo keyed on the same process-independent
/// [`Fingerprint`] as the [`InferenceCache`](crate::InferenceCache),
/// with the `sat_checks_total` / `sat_unknown_total` counters and the
/// `sat_check_ns` histogram recorded into its registry. (The companion
/// `sat_pruned_total` counter belongs to the *call sites* that act on an
/// `Unsat` — one increment per skipped fetch.)
pub struct SatCache {
    map: RwLock<HashMap<Fingerprint, SatVerdict>>,
    capacity: usize,
    store: Option<Arc<dyn WarmStore>>,
    checks: Counter,
    unknown: Counter,
    check_ns: Histogram,
}

impl Default for SatCache {
    fn default() -> SatCache {
        SatCache::new()
    }
}

impl SatCache {
    /// An empty cache observing into its own private registry.
    pub fn new() -> SatCache {
        SatCache::with_registry(Registry::new())
    }

    /// An empty cache recording its instruments into `registry`.
    pub fn with_registry(registry: Registry) -> SatCache {
        SatCache {
            map: RwLock::new(HashMap::new()),
            capacity: SAT_CACHE_CAPACITY,
            store: None,
            checks: registry.counter("sat_checks_total"),
            unknown: registry.counter("sat_unknown_total"),
            check_ns: registry.histogram("sat_check_ns"),
        }
    }

    /// A cache that warm-starts from `store` and writes each freshly
    /// decided `Sat`/`Unsat` verdict behind to it (`Unknown` is never
    /// persisted — it only says the analysis gave up).
    pub fn with_store(registry: Registry, store: Arc<dyn WarmStore>) -> SatCache {
        let mut cache = SatCache::with_registry(registry);
        let mut map = HashMap::new();
        for (fp, v) in store.load_sat_verdicts() {
            if map.len() >= cache.capacity {
                break;
            }
            map.entry(fp).or_insert(v);
        }
        cache.map = RwLock::new(map);
        cache.store = Some(store);
        cache
    }

    /// Memoized [`check_sat`]: every call counts one `sat_check` and
    /// times into `sat_check_ns`, hits and misses alike.
    pub fn verdict(&self, q: &Query, source: &Dtd) -> SatVerdict {
        self.checks.inc();
        let _timer = self.check_ns.start();
        let nq = match normalize(q, source) {
            Ok(nq) => nq,
            Err(NormalizeError::SelfDiseq(v)) => {
                return SatVerdict::Unsat(format!("constraint '{v} != {v}' can never hold"));
            }
            Err(_) => {
                self.unknown.inc();
                return SatVerdict::Unknown;
            }
        };
        let fp = Fingerprint {
            query: fingerprint_query(&nq),
            dtd: fingerprint_dtd(source),
        };
        let hit = self.map.read().get(&fp).cloned();
        if let Some(v) = hit {
            if v == SatVerdict::Unknown {
                self.unknown.inc();
            }
            return v;
        }
        let v = check_sat_normalized(&nq, source);
        if v == SatVerdict::Unknown {
            self.unknown.inc();
        }
        let inserted = {
            let mut map = self.map.write();
            if map.contains_key(&fp) {
                false
            } else {
                // verdicts are cheap to recompute: at the bound, flush
                // wholesale rather than tracking reference bits
                if map.len() >= self.capacity {
                    map.clear();
                }
                map.insert(fp, v.clone());
                true
            }
        };
        if inserted && v != SatVerdict::Unknown {
            if let Some(store) = &self.store {
                store.record_sat_verdict(&fp, &v);
            }
        }
        v
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every resident verdict (counters are kept).
    pub fn clear(&self) {
        self.map.write().clear();
    }

    /// Every resident `(fingerprint, verdict)` pair.
    pub fn entries_snapshot(&self) -> Vec<(Fingerprint, SatVerdict)> {
        self.map
            .read()
            .iter()
            .map(|(&fp, v)| (fp, v.clone()))
            .collect()
    }
}

impl fmt::Debug for SatCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SatCache")
            .field("entries", &self.len())
            .finish()
    }
}

/// The process-global memoized check the wrapper layers share (counters
/// land in [`mix_obs::global`], next to the other wrapper instruments).
pub fn check_sat_memo(q: &Query, dtd: &Dtd) -> SatVerdict {
    static GLOBAL: OnceLock<SatCache> = OnceLock::new();
    GLOBAL
        .get_or_init(|| SatCache::with_registry(mix_obs::global().clone()))
        .verdict(q, dtd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_dtd::paper::{d1_department, section_recursive};
    use mix_dtd::parse_compact;
    use mix_xmas::parse_query;

    fn verdict(query: &str, dtd: &Dtd) -> SatVerdict {
        check_sat(&parse_query(query).unwrap(), dtd)
    }

    #[test]
    fn plain_pattern_is_sat() {
        let d = d1_department();
        let v = verdict(
            "pubs = SELECT P WHERE <department> <professor> P:<publication/> </> </>",
            &d,
        );
        assert_eq!(v, SatVerdict::Sat);
    }

    #[test]
    fn wrong_child_tag_is_unsat_with_witness() {
        let d = d1_department();
        // a professor's content model has no <course> children
        let v = verdict(
            "x = SELECT C WHERE <department> <professor> C:<course/> </> </>",
            &d,
        );
        let reason = v.reason().expect("must be unsat");
        assert!(reason.contains("department/professor"), "{reason}");
        assert!(reason.contains("course"), "{reason}");
    }

    #[test]
    fn root_mismatch_is_unsat() {
        let d = d1_department();
        let v = verdict("x = SELECT P WHERE P:<professor/>", &d);
        assert!(v.reason().unwrap().contains("document type"), "{v}");
    }

    #[test]
    fn impossible_sibling_pair_is_unsat() {
        let d = parse_compact("{<r : a, b?>}").unwrap();
        // two sibling conditions must bind two *distinct* <b> children,
        // but the model admits at most one
        let v = verdict("x = SELECT X WHERE X:<r> <b>u</b> <b>w</b> </r>", &d);
        assert!(
            v.reason().unwrap().contains("jointly"),
            "expected joint-sibling unsat, got {v}"
        );
        // the satisfiable sibling combination stays Sat
        let v = verdict("x = SELECT X WHERE X:<r> <a>u</a> <b>w</b> </r>", &d);
        assert_eq!(v, SatVerdict::Sat);
    }

    #[test]
    fn star_supplies_any_multiplicity() {
        let d = parse_compact("{<r : p*>}").unwrap();
        let v = verdict(
            "x = SELECT X WHERE X:<r> <p>a</p> <p>b</p> <p>c</p> </r>",
            &d,
        );
        assert_eq!(v, SatVerdict::Sat);
    }

    #[test]
    fn duplicated_model_degrades_to_unknown() {
        // truth: three <b> children are impossible under `b, b` — but the
        // model is out of the tractable fragment, so the analyzer must
        // answer Unknown, never a guessed Unsat
        let d = parse_compact("{<r : b, b>}").unwrap();
        let v = verdict(
            "x = SELECT X WHERE X:<r> <b>u</b> <b>w</b> <b>y</b> </r>",
            &d,
        );
        assert_eq!(v, SatVerdict::Unknown);
    }

    #[test]
    fn content_kind_mismatches_are_unsat() {
        let d = d1_department();
        // text required of an element-content type
        let v = verdict("x = SELECT X WHERE X:<department>CS</department>", &d);
        assert!(v.reason().unwrap().contains("text content"), "{v}");
        // children required of a PCDATA type
        let v = verdict(
            "x = SELECT C WHERE <department> <name> C:<x/> </name> </>",
            &d,
        );
        assert!(v.reason().unwrap().contains("PCDATA"), "{v}");
    }

    #[test]
    fn recursive_dtd_is_handled() {
        let d = section_recursive();
        let v = verdict(
            "x = SELECT P WHERE <section> <section> <section> P:<prolog/> </> </> </>",
            &d,
        );
        assert_eq!(v, SatVerdict::Sat);
        let v = verdict(
            "x = SELECT P WHERE <section> <section> P:<teaches/> </> </>",
            &d,
        );
        assert!(v.is_unsat(), "{v}");
    }

    #[test]
    fn unproductive_document_type_is_unsat() {
        let d = parse_compact("{<r : r>}").unwrap();
        let v = verdict("x = SELECT X WHERE X:<r/>", &d);
        assert!(v.reason().unwrap().contains("finite"), "{v}");
    }

    #[test]
    fn unproductive_names_restrict_the_model() {
        // b only ever appears next to a mandatory unproductive u, so a
        // pattern stepping to b is unsatisfiable even though b is in the
        // raw content model
        let d = parse_compact("{<r : (u, b) | c> <u : u>}").unwrap();
        let v = verdict("x = SELECT X WHERE <r> X:<b/> </r>", &d);
        assert!(v.is_unsat(), "{v}");
        let v = verdict("x = SELECT X WHERE <r> X:<c/> </r>", &d);
        assert_eq!(v, SatVerdict::Sat);
    }

    #[test]
    fn self_diseq_folds_to_unsat_other_errors_to_unknown() {
        let d = d1_department();
        let q = parse_query("x = SELECT P WHERE <department> P:<professor id=A/> </> AND A != A")
            .unwrap();
        assert!(check_sat(&q, &d).is_unsat());
        // pick variable never bound: not a satisfiability question
        let q = parse_query("x = SELECT Z WHERE <department> <professor/> </>").unwrap();
        assert_eq!(check_sat(&q, &d), SatVerdict::Unknown);
    }

    #[test]
    fn diseqs_are_ignored_soundly() {
        let d = d1_department();
        // two distinct professors may exist — and even if they could
        // not, ignoring the constraint only errs toward Sat
        let q = parse_query(
            "x = SELECT P WHERE <department> P:<professor id=A/> <professor id=B/> </> AND A != B",
        )
        .unwrap();
        assert_eq!(check_sat(&q, &d), SatVerdict::Sat);
    }

    #[test]
    fn cache_memoizes_and_counts() {
        let registry = Registry::new();
        let cache = SatCache::with_registry(registry.clone());
        let d = d1_department();
        let q = parse_query("x = SELECT C WHERE <department> <publication> C:<course/> </> </>")
            .unwrap();
        let a = cache.verdict(&q, &d);
        let b = cache.verdict(&q, &d);
        assert_eq!(a, b);
        assert!(a.is_unsat());
        assert_eq!(cache.len(), 1);
        assert_eq!(registry.counter("sat_checks_total").get(), 2);
        assert_eq!(registry.counter("sat_unknown_total").get(), 0);
    }

    #[test]
    fn warm_store_roundtrips_verdicts() {
        #[derive(Default)]
        struct SatStore {
            recorded: parking_lot::Mutex<Vec<(Fingerprint, SatVerdict)>>,
        }
        impl WarmStore for SatStore {
            fn load_views(&self) -> Vec<(Fingerprint, crate::InferredView)> {
                Vec::new()
            }
            fn record_view(&self, _fp: &Fingerprint, _iv: &crate::InferredView) {}
            fn compact(&self, _entries: &[(Fingerprint, Arc<crate::InferredView>)]) {}
            fn load_sat_verdicts(&self) -> Vec<(Fingerprint, SatVerdict)> {
                self.recorded.lock().clone()
            }
            fn record_sat_verdict(&self, fp: &Fingerprint, v: &SatVerdict) {
                self.recorded.lock().push((*fp, v.clone()));
            }
        }
        let store = Arc::new(SatStore::default());
        let d = d1_department();
        let q = parse_query("x = SELECT C WHERE <department> <publication> C:<course/> </> </>")
            .unwrap();
        let cache = SatCache::with_store(Registry::new(), Arc::clone(&store) as Arc<dyn WarmStore>);
        assert!(cache.verdict(&q, &d).is_unsat());
        assert_eq!(store.recorded.lock().len(), 1, "unsat is persisted");
        // a second cache warm-starts resident and re-records nothing
        let warm = SatCache::with_store(Registry::new(), Arc::clone(&store) as Arc<dyn WarmStore>);
        assert_eq!(warm.len(), 1);
        assert!(warm.verdict(&q, &d).is_unsat());
        assert_eq!(store.recorded.lock().len(), 1);
    }
}
