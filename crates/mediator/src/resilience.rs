//! Per-source resilience: retries, circuit breakers, last-known-good
//! snapshots, and the degradation report for partial union answers.
//!
//! Everything here is deterministic. Retry backoff is *virtual* — the
//! would-have-slept milliseconds are recorded in the outcome, never
//! slept. Breaker cooldown is measured in rejected calls *to that
//! source*, not wall time, so the state machine advances identically no
//! matter how fast (or parallel) the callers are. Combined with the
//! seeded [`crate::fault::FaultInjector`], a federation run with a fixed
//! seed produces the same [`DegradationReport`] byte for byte, every
//! time.
//!
//! The call path ([`resilient_answer`]) deliberately does *not* trust the
//! wrapper's own `answer`: it fetches, validates the fetched document
//! against the advertised DTD (catching silently-corrupted exports as
//! [`SourceError::DtdInvalid`]), and evaluates the normalized query
//! locally. That makes validation a property of the mediator's edge, not
//! of each wrapper's good behavior.

use crate::error::SourceError;
use crate::obs::SourceInstruments;
use crate::source::Wrapper;
use mix_xmas::{evaluate, normalize, Query};
use mix_xml::Document;
use std::fmt;
use std::sync::Mutex;

/// Knobs for the per-source resilience machinery.
#[derive(Debug, Clone, Copy)]
pub struct ResiliencePolicy {
    /// Extra attempts after the first, for *transient* errors only.
    pub max_retries: u32,
    /// Virtual backoff before retry `n` is `backoff_base_ms << (n-1)`
    /// milliseconds; recorded, never slept.
    pub backoff_base_ms: u64,
    /// Consecutive source faults that trip the breaker open.
    pub failure_threshold: u32,
    /// Calls rejected while open before the breaker half-opens and lets
    /// one probe through.
    pub cooldown_calls: u32,
    /// Validate every fetched document against the wrapper's advertised
    /// DTD; a violation is a [`SourceError::DtdInvalid`] failure.
    pub validate_fetches: bool,
    /// On failure, serve the last-known-good snapshot (marked
    /// [`FetchStatus::Stale`]) instead of failing the member outright.
    pub serve_stale: bool,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            max_retries: 2,
            backoff_base_ms: 10,
            failure_threshold: 3,
            cooldown_calls: 2,
            validate_fetches: true,
            serve_stale: true,
        }
    }
}

/// The circuit breaker's state for one source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow through.
    Closed,
    /// Tripped: calls are rejected without contacting the source.
    Open,
    /// Cooled down: the next call is a probe; success re-closes, failure
    /// re-opens.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Mutable per-source health, shared by every call that targets the
/// source.
#[derive(Debug)]
pub struct Health {
    state: BreakerState,
    consecutive_failures: u32,
    rejected_while_open: u32,
    snapshot: Option<Document>,
}

/// What the breaker decided for one incoming call — the result of
/// [`Health::gate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerGate {
    /// Closed: the call flows through normally.
    Pass,
    /// This call completed the cooldown and transitioned Open →
    /// HalfOpen *now*: it goes through as the single probe, and the
    /// caller should emit its half-open event.
    HalfOpened,
    /// Already half-open (some earlier call transitioned): this call
    /// also probes, but no transition happened here.
    Probe,
    /// Open and still cooling down: reject without contacting the
    /// source.
    Reject,
}

impl Health {
    /// A fresh, closed, snapshot-less health record.
    pub fn new() -> Health {
        Health {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            rejected_while_open: 0,
            snapshot: None,
        }
    }

    /// Current breaker state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether a last-known-good snapshot is held.
    pub fn has_snapshot(&self) -> bool {
        self.snapshot.is_some()
    }

    /// Source faults recorded since the last success.
    pub fn failure_streak(&self) -> u32 {
        self.consecutive_failures
    }

    /// Gates one call through the breaker: an open breaker counts the
    /// rejection and half-opens once `cooldown_calls` of them have
    /// accumulated. This is the shared state machine of
    /// [`resilient_answer`] and the replica router
    /// ([`crate::topology::ReplicaSet`]); observability stays with the
    /// caller so event ordering is theirs to pin.
    pub fn gate(&mut self, cooldown_calls: u32) -> BreakerGate {
        match self.state {
            BreakerState::Closed => BreakerGate::Pass,
            BreakerState::HalfOpen => BreakerGate::Probe,
            BreakerState::Open => {
                self.rejected_while_open += 1;
                if self.rejected_while_open >= cooldown_calls {
                    self.state = BreakerState::HalfOpen;
                    BreakerGate::HalfOpened
                } else {
                    BreakerGate::Reject
                }
            }
        }
    }

    /// Records a successful call: failure accounting resets, the breaker
    /// closes, and `snapshot` (when given) replaces the last-known-good
    /// document. Returns `true` when this closed a previously non-closed
    /// breaker — the caller's cue to emit its close event.
    pub fn record_success(&mut self, snapshot: Option<Document>) -> bool {
        let reclosed = self.state != BreakerState::Closed;
        if let Some(doc) = snapshot {
            self.snapshot = Some(doc);
        }
        self.consecutive_failures = 0;
        self.rejected_while_open = 0;
        self.state = BreakerState::Closed;
        reclosed
    }

    /// Records a source fault: a failed half-open probe re-opens
    /// immediately, and `failure_threshold` consecutive faults trip a
    /// closed breaker. Returns `true` when this opened a previously
    /// non-open breaker — the caller's cue to emit its open event.
    /// Callers must filter with [`SourceError::is_source_fault`] first;
    /// query errors, version mismatches, and throttles never land here.
    pub fn record_failure(&mut self, failure_threshold: u32) -> bool {
        self.consecutive_failures += 1;
        if self.state == BreakerState::HalfOpen || self.consecutive_failures >= failure_threshold {
            let newly_opened = self.state != BreakerState::Open;
            self.state = BreakerState::Open;
            self.rejected_while_open = 0;
            newly_opened
        } else {
            false
        }
    }
}

impl Default for Health {
    fn default() -> Self {
        Health::new()
    }
}

/// How a member's data was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchStatus {
    /// Served from a live, validated fetch.
    Fresh,
    /// The live call failed; served from the last-known-good snapshot.
    Stale,
    /// The live call failed and no snapshot was available: this member
    /// contributed nothing.
    Failed,
}

impl fmt::Display for FetchStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FetchStatus::Fresh => "fresh",
            FetchStatus::Stale => "stale",
            FetchStatus::Failed => "failed",
        })
    }
}

/// What happened on one resilient call to one source.
#[derive(Debug, Clone)]
pub struct SourceOutcome {
    /// The source's registered name.
    pub source: String,
    /// How (whether) the member was served.
    pub status: FetchStatus,
    /// Retries actually used (0 = first attempt decided it).
    pub retries: u32,
    /// Total virtual backoff recorded across those retries, in ms.
    pub backoff_ms: u64,
    /// The last error, if the live call ultimately failed.
    pub error: Option<SourceError>,
    /// Breaker state *after* the call.
    pub breaker: BreakerState,
    /// True when the breaker rejected the call without contacting the
    /// source at all.
    pub short_circuited: bool,
}

/// The structured account of a degraded (or clean) view materialization:
/// one [`SourceOutcome`] per member source, in registration order.
#[derive(Debug, Clone)]
pub struct DegradationReport {
    /// The view that was materialized.
    pub view: String,
    /// Per-source outcomes, in registration (union) order.
    pub outcomes: Vec<SourceOutcome>,
    /// Whether the inferred union view DTD still soundly covers the
    /// partial answer assembled from the surviving members. `false` means
    /// a consumer reasoning with the advertised view DTD could draw
    /// unsound conclusions about this particular answer.
    pub union_dtd_covers_survivors: bool,
}

impl DegradationReport {
    /// True when every member was served fresh.
    pub fn is_clean(&self) -> bool {
        self.outcomes.iter().all(|o| o.status == FetchStatus::Fresh)
    }

    /// The sources that contributed nothing.
    pub fn failed_sources(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| o.status == FetchStatus::Failed)
            .map(|o| o.source.as_str())
            .collect()
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let served = self
            .outcomes
            .iter()
            .filter(|o| o.status != FetchStatus::Failed)
            .count();
        writeln!(
            f,
            "view '{}': {}/{} sources served, union DTD covers survivors: {}",
            self.view,
            served,
            self.outcomes.len(),
            if self.union_dtd_covers_survivors {
                "yes"
            } else {
                "no"
            }
        )?;
        for o in &self.outcomes {
            write!(
                f,
                "  {:<12} {:<6} breaker={}",
                o.source,
                o.status.to_string(),
                o.breaker
            )?;
            if o.retries > 0 {
                write!(f, " retries={} backoff={}ms", o.retries, o.backoff_ms)?;
            }
            if o.short_circuited {
                write!(f, " short-circuited")?;
            }
            if let Some(e) = &o.error {
                write!(f, " error[{}]: {}", e.kind(), e)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// One resilient answer call: breaker check, bounded retry with virtual
/// backoff, fetch validation, snapshot capture, and stale fallback.
///
/// Returns the answer document (when status is not [`FetchStatus::Failed`])
/// plus the outcome record. `source` is only used to label the outcome.
///
/// `obs` records what happened *as it happens*: per-attempt fetch
/// latency (histogram + `fetch/<source>` span), retry and
/// short-circuit counters, served-fresh/stale/failed counters, and an
/// ordered event for every breaker transition and degraded serve —
/// emitted at the transition point, not reconstructed from the
/// [`DegradationReport`] afterwards. Callers outside a mediator pass
/// [`SourceInstruments::noop`].
pub fn resilient_answer(
    source: &str,
    wrapper: &dyn Wrapper,
    query: &Query,
    policy: &ResiliencePolicy,
    health: &Mutex<Health>,
    obs: &SourceInstruments,
) -> (Option<Document>, SourceOutcome) {
    let mut outcome = SourceOutcome {
        source: source.to_owned(),
        status: FetchStatus::Failed,
        retries: 0,
        backoff_ms: 0,
        error: None,
        breaker: BreakerState::Closed,
        short_circuited: false,
    };

    // The query must normalize against this source's DTD before anything
    // else; a rejection is the caller's fault and never touches the
    // breaker or the source.
    let nq = match normalize(query, wrapper.dtd()) {
        Ok(nq) => nq,
        Err(e) => {
            let mut h = health
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            outcome.error = Some(SourceError::Query(e));
            outcome.breaker = h.state;
            // no normalized form exists, so no snapshot evaluation either
            return serve_stale_or_fail(&None, &mut h, policy, outcome, obs);
        }
    };

    // Breaker gate.
    {
        let mut h = health
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match h.gate(policy.cooldown_calls) {
            BreakerGate::HalfOpened => {
                obs.breaker_half_opened.inc();
                obs.event("breaker-half-open", "cooldown complete; this call probes");
            }
            BreakerGate::Reject => {
                outcome.error = Some(SourceError::Unavailable(format!(
                    "circuit open for '{source}'"
                )));
                outcome.breaker = h.state;
                outcome.short_circuited = true;
                obs.short_circuits.inc();
                return serve_stale_or_fail(&Some(nq), &mut h, policy, outcome, obs);
            }
            BreakerGate::Pass | BreakerGate::Probe => {}
        }
    }

    // Attempt loop: the first attempt plus up to `max_retries` retries,
    // retrying only transient errors. Half-open probes get exactly one
    // attempt — a flapping source must prove itself without the benefit
    // of retries.
    let probing = health
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .state
        == BreakerState::HalfOpen;
    let budget = if probing { 0 } else { policy.max_retries };
    let mut last_err: SourceError;
    loop {
        let attempt = {
            let _span = obs.registry().span(obs.fetch_stage());
            let timer = obs.fetch_latency.start();
            let r = checked_fetch(wrapper, policy);
            timer.stop();
            r
        };
        match attempt {
            Ok(doc) => {
                let answer = evaluate(&nq, &doc);
                let mut h = health
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if h.record_success(Some(doc)) {
                    obs.breaker_closed.inc();
                    obs.event("breaker-close", "probe succeeded; breaker closed");
                }
                obs.fresh.inc();
                outcome.status = FetchStatus::Fresh;
                outcome.breaker = h.state;
                return (Some(answer), outcome);
            }
            Err(e) => {
                let retryable = e.is_transient();
                last_err = e;
                if retryable && outcome.retries < budget {
                    outcome.retries += 1;
                    outcome.backoff_ms += policy.backoff_base_ms << (outcome.retries - 1);
                    obs.retries.inc();
                    continue;
                }
                break;
            }
        }
    }

    // The call failed for good: account it against the breaker, then
    // degrade to the snapshot if allowed.
    let mut h = health
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if last_err.is_source_fault() && h.record_failure(policy.failure_threshold) {
        obs.breaker_opened.inc();
        obs.event(
            "breaker-open",
            &format!(
                "opened after {} consecutive failures ({})",
                h.consecutive_failures,
                last_err.kind()
            ),
        );
    }
    outcome.error = Some(last_err);
    outcome.breaker = h.state;
    serve_stale_or_fail(&Some(nq), &mut h, policy, outcome, obs)
}

/// Fetch once, optionally validating the document against the wrapper's
/// advertised DTD.
fn checked_fetch(
    wrapper: &dyn Wrapper,
    policy: &ResiliencePolicy,
) -> Result<Document, SourceError> {
    let doc = wrapper.fetch()?;
    if policy.validate_fetches {
        mix_dtd::validate_document(wrapper.dtd(), &doc).map_err(|e| SourceError::invalid(&e))?;
    }
    Ok(doc)
}

/// Degrade to the last-known-good snapshot when policy and state allow,
/// otherwise report the member failed. Either way the degradation is
/// recorded as an obs event *now* — at occurrence time — so a live
/// `mixctl stats` sees it even if the eventual [`DegradationReport`] is
/// dropped by the caller.
fn serve_stale_or_fail(
    nq: &Option<Query>,
    h: &mut Health,
    policy: &ResiliencePolicy,
    mut outcome: SourceOutcome,
    obs: &SourceInstruments,
) -> (Option<Document>, SourceOutcome) {
    if policy.serve_stale {
        if let (Some(nq), Some(snap)) = (nq, &h.snapshot) {
            outcome.status = FetchStatus::Stale;
            obs.stale.inc();
            obs.event("stale-serve", "serving last-known-good snapshot");
            return (Some(evaluate(nq, snap)), outcome);
        }
    }
    outcome.status = FetchStatus::Failed;
    obs.failed.inc();
    let cause = outcome.error.as_ref().map_or("unknown", |e| e.kind());
    obs.event(
        "source-failed",
        &format!("no live answer and no snapshot; member failed ({cause})"),
    );
    (None, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultInjector, FaultPlan};
    use crate::source::XmlSource;
    use mix_dtd::parse_compact;
    use mix_xmas::parse_query;
    use mix_xml::parse_document;
    use std::sync::Arc;

    fn base() -> Arc<XmlSource> {
        let dtd = parse_compact("{<r : a*> <a : PCDATA>}").unwrap();
        let doc = parse_document("<r><a>1</a><a>2</a></r>").unwrap();
        Arc::new(XmlSource::new(dtd, doc).unwrap())
    }

    fn query() -> Query {
        parse_query("ans = SELECT X WHERE <r> X:<a/> </r>").unwrap()
    }

    fn call(
        w: &dyn Wrapper,
        policy: &ResiliencePolicy,
        health: &Mutex<Health>,
    ) -> (Option<Document>, SourceOutcome) {
        resilient_answer(
            "s",
            w,
            &query(),
            policy,
            health,
            &SourceInstruments::noop("s"),
        )
    }

    fn call_obs(
        w: &dyn Wrapper,
        policy: &ResiliencePolicy,
        health: &Mutex<Health>,
        obs: &SourceInstruments,
    ) -> (Option<Document>, SourceOutcome) {
        resilient_answer("s", w, &query(), policy, health, obs)
    }

    #[test]
    fn clean_source_serves_fresh() {
        let w = base();
        let health = Mutex::new(Health::new());
        let (doc, o) = call(w.as_ref(), &ResiliencePolicy::default(), &health);
        assert_eq!(o.status, FetchStatus::Fresh);
        assert_eq!(o.breaker, BreakerState::Closed);
        assert_eq!(o.retries, 0);
        assert_eq!(doc.unwrap().root.children().len(), 2);
        assert!(health.lock().unwrap().has_snapshot());
    }

    #[test]
    fn transient_errors_are_retried_with_virtual_backoff() {
        // faults on calls 0 and 1; call 2 succeeds — inside the default
        // 2-retry budget
        let w = FaultInjector::new(
            base(),
            FaultPlan::Script(vec![Some(Fault::Transient), Some(Fault::Timeout), None]),
        );
        let health = Mutex::new(Health::new());
        let (doc, o) = call(&w, &ResiliencePolicy::default(), &health);
        assert_eq!(o.status, FetchStatus::Fresh);
        assert_eq!(o.retries, 2);
        assert_eq!(o.backoff_ms, 10 + 20);
        assert!(doc.is_some());
        // success resets the failure count
        assert_eq!(health.lock().unwrap().consecutive_failures, 0);
    }

    #[test]
    fn non_transient_errors_are_not_retried() {
        let w = FaultInjector::new(
            base(),
            FaultPlan::Script(vec![Some(Fault::MalformedXml), None]),
        );
        let health = Mutex::new(Health::new());
        let policy = ResiliencePolicy {
            serve_stale: false,
            ..ResiliencePolicy::default()
        };
        let (doc, o) = call(&w, &policy, &health);
        assert_eq!(o.status, FetchStatus::Failed);
        assert_eq!(o.retries, 0);
        assert!(doc.is_none());
        assert_eq!(w.calls(), 1, "must not have retried a permanent error");
    }

    #[test]
    fn corrupted_fetch_is_caught_by_validation() {
        let w = FaultInjector::new(base(), FaultPlan::Script(vec![Some(Fault::DtdViolate)]));
        let health = Mutex::new(Health::new());
        let policy = ResiliencePolicy {
            serve_stale: false,
            ..ResiliencePolicy::default()
        };
        let (_, o) = call(&w, &policy, &health);
        assert_eq!(o.status, FetchStatus::Failed);
        assert!(matches!(o.error, Some(SourceError::DtdInvalid(_))));
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens_after_cooldown() {
        // an unbroken run of hard outages (a seeded rate-1.0 plan could
        // deal a Truncate, which `a*` happens to still cover)
        let w = FaultInjector::new(
            base(),
            FaultPlan::Script(vec![Some(Fault::Unavailable); 10]),
        );
        let health = Mutex::new(Health::new());
        let policy = ResiliencePolicy {
            max_retries: 0,
            failure_threshold: 3,
            cooldown_calls: 2,
            serve_stale: false,
            ..ResiliencePolicy::default()
        };
        // three failing calls trip the breaker
        for i in 0..3 {
            let (_, o) = call(&w, &policy, &health);
            assert_eq!(o.status, FetchStatus::Failed, "call {i}");
            assert!(!o.short_circuited);
        }
        assert_eq!(health.lock().unwrap().state(), BreakerState::Open);
        let contacted = w.calls();
        // next (cooldown_calls - 1) calls are rejected without contact
        let (_, o) = call(&w, &policy, &health);
        assert!(o.short_circuited);
        assert_eq!(o.breaker, BreakerState::Open);
        assert_eq!(
            w.calls(),
            contacted,
            "open breaker must not contact the source"
        );
        // the cooldown-completing call goes through as a half-open probe;
        // the source still faults, so the breaker re-opens
        let (_, o) = call(&w, &policy, &health);
        assert!(!o.short_circuited);
        assert_eq!(w.calls(), contacted + 1);
        assert_eq!(o.breaker, BreakerState::Open);
    }

    #[test]
    fn half_open_probe_success_recloses() {
        // fail 3 times (trip), then the probe succeeds
        let w = FaultInjector::new(
            base(),
            FaultPlan::Script(vec![
                Some(Fault::Unavailable),
                Some(Fault::Unavailable),
                Some(Fault::Unavailable),
                None,
            ]),
        );
        let health = Mutex::new(Health::new());
        let policy = ResiliencePolicy {
            max_retries: 0,
            failure_threshold: 3,
            cooldown_calls: 1,
            serve_stale: false,
            ..ResiliencePolicy::default()
        };
        for _ in 0..3 {
            call(&w, &policy, &health);
        }
        assert_eq!(health.lock().unwrap().state(), BreakerState::Open);
        // cooldown_calls = 1 → this very call becomes the probe
        let (doc, o) = call(&w, &policy, &health);
        assert_eq!(o.status, FetchStatus::Fresh);
        assert_eq!(o.breaker, BreakerState::Closed);
        assert!(doc.is_some());
    }

    #[test]
    fn snapshot_serves_stale_answers_after_failure() {
        // call 0 succeeds (captures the snapshot), everything after fails
        let mut script = vec![None];
        script.extend(vec![Some(Fault::Unavailable); 10]);
        let w = FaultInjector::new(base(), FaultPlan::Script(script));
        let health = Mutex::new(Health::new());
        let policy = ResiliencePolicy::default();
        let (_, o) = call(&w, &policy, &health);
        assert_eq!(o.status, FetchStatus::Fresh);
        let (doc, o) = call(&w, &policy, &health);
        assert_eq!(o.status, FetchStatus::Stale);
        assert!(o.error.is_some());
        assert_eq!(
            doc.unwrap().root.children().len(),
            2,
            "stale answer still full"
        );
    }

    #[test]
    fn breaker_transitions_emit_events_and_counters_at_occurrence_time() {
        let w = FaultInjector::new(
            base(),
            FaultPlan::Script(vec![
                Some(Fault::Unavailable), // trip 1/3
                Some(Fault::Unavailable), // trip 2/3
                Some(Fault::Unavailable), // trip 3/3 → breaker-open
                // call 3 short-circuits (cooldown 2), call 4 probes…
                Some(Fault::Unavailable), // …and fails → breaker-open again
                None,                     // second probe succeeds → breaker-close
            ]),
        );
        let registry = mix_obs::Registry::new();
        let obs = SourceInstruments::new(&registry, "s");
        let health = Mutex::new(Health::new());
        let policy = ResiliencePolicy {
            max_retries: 0,
            failure_threshold: 3,
            cooldown_calls: 2,
            serve_stale: false,
            ..ResiliencePolicy::default()
        };
        for _ in 0..6 {
            // 3 failures, 1 rejection, 1 failed probe, then: the re-opened
            // breaker rejects once more before its probe — so run one extra
            // pair of calls to reach the successful probe
            call_obs(&w, &policy, &health, &obs);
        }
        call_obs(&w, &policy, &health, &obs);
        assert_eq!(health.lock().unwrap().state(), BreakerState::Closed);
        let snap = registry.snapshot();
        let kinds: Vec<&str> = snap.events.iter().map(|e| e.kind.as_str()).collect();
        // events landed in transition order, interleaved with the
        // occurrence-time failure events — not reconstructed post-hoc
        let transitions: Vec<&&str> = kinds.iter().filter(|k| k.starts_with("breaker-")).collect();
        assert_eq!(
            transitions,
            [
                &"breaker-open",
                &"breaker-half-open",
                &"breaker-open",
                &"breaker-half-open",
                &"breaker-close"
            ]
        );
        assert_eq!(
            snap.counters[r#"source_breaker_opened_total{source="s"}"#],
            2
        );
        assert_eq!(
            snap.counters[r#"source_breaker_half_opened_total{source="s"}"#],
            2
        );
        assert_eq!(
            snap.counters[r#"source_breaker_closed_total{source="s"}"#],
            1
        );
        assert_eq!(
            snap.counters[r#"source_short_circuits_total{source="s"}"#],
            2
        );
        assert_eq!(snap.counters[r#"source_served_fresh_total{source="s"}"#], 1);
        // every contacted attempt left a fetch-latency observation and a span
        let hist = &snap.histograms[r#"source_fetch_latency_ns{source="s"}"#];
        assert_eq!(hist.count, 5);
        assert!(snap.spans.iter().any(|s| s.stage == "fetch/s"));
    }

    #[test]
    fn degradation_events_fire_when_the_fault_occurs_seeded() {
        // Seeded plan: deterministic schedule — every call faults. The
        // strict `a, a` model makes even the corruption faults (Truncate,
        // DtdViolate) fail validation, so no fault can serve fresh.
        let dtd = parse_compact("{<r : a, a> <a : PCDATA>}").unwrap();
        let doc = parse_document("<r><a>1</a><a>2</a></r>").unwrap();
        let strict = Arc::new(XmlSource::new(dtd, doc).unwrap());
        let w = FaultInjector::new(strict, FaultPlan::Seeded { seed: 7, rate: 1.0 });
        let registry = mix_obs::Registry::new();
        let obs = SourceInstruments::new(&registry, "s");
        let health = Mutex::new(Health::new());
        let policy = ResiliencePolicy {
            max_retries: 1,
            ..ResiliencePolicy::default()
        };
        let (_, o) = call_obs(&w, &policy, &health, &obs);
        // the event is already in the registry the moment the call
        // returns, regardless of what the caller does with the outcome
        let snap = registry.snapshot();
        match o.status {
            FetchStatus::Failed => {
                assert_eq!(snap.counters[r#"source_failed_total{source="s"}"#], 1);
                assert!(snap.events.iter().any(|e| e.kind == "source-failed"));
            }
            FetchStatus::Stale => {
                assert_eq!(snap.counters[r#"source_served_stale_total{source="s"}"#], 1);
                assert!(snap.events.iter().any(|e| e.kind == "stale-serve"));
            }
            FetchStatus::Fresh => panic!("rate-1.0 seeded plan cannot serve fresh"),
        }
        assert_eq!(
            snap.counters[r#"source_retries_total{source="s"}"#],
            o.retries as u64
        );
    }

    #[test]
    fn query_errors_never_touch_the_breaker() {
        let w = base();
        let health = Mutex::new(Health::new());
        let bad = parse_query("ans = SELECT Z WHERE <r> X:<a/> </r>").unwrap();
        let (_, o) = resilient_answer(
            "s",
            w.as_ref(),
            &bad,
            &ResiliencePolicy::default(),
            &health,
            &SourceInstruments::noop("s"),
        );
        assert_eq!(o.status, FetchStatus::Failed);
        assert!(matches!(o.error, Some(SourceError::Query(_))));
        let h = health.lock().unwrap();
        assert_eq!(h.state(), BreakerState::Closed);
        assert_eq!(h.consecutive_failures, 0);
    }
}
