//! # mix-dtd — DTDs and specialized DTDs
//!
//! Document Type Definitions exactly as the paper models them
//! (Definition 2.2) plus the paper's *specialized DTDs* (Definition 3.8),
//! with:
//!
//! * two parsers (real `<!ELEMENT …>` syntax and the paper's compact
//!   `<name : model>` notation) and matching display,
//! * validation of documents ([`validate_document`], Definition 2.3/2.4)
//!   and s-DTD satisfaction ([`sdtd_satisfies`], Definition 3.10, via
//!   bottom-up tree-automaton acceptance),
//! * exact tightness comparison ([`tighter_than`], Definitions 3.2–3.4)
//!   built on productivity/usability analyses,
//! * exact document counting ([`count_documents_by_size`],
//!   [`count_sdocuments_by_size`]) — the quantitative tightness metric,
//! * random DTD and valid-document generators for workloads.

#![warn(missing_docs)]

pub mod analysis;
pub mod compare;
pub mod count;
mod display;
pub mod enumerate;
pub mod generate;
pub mod model;
pub mod paper;
pub mod parse;
pub mod sample;
pub mod scompare;
pub mod sdtd;
pub mod validate;
pub mod xml_syntax;

pub use analysis::{
    content_class, describes_some_document, nondeterministic_names, productive, restrict, usable,
    ContentClass,
};
pub use compare::{same_documents, strictly_tighter, tighter_than, Tightness};
pub use count::{
    count_documents_by_size, count_documents_upto, count_sdocuments_by_size, count_sdocuments_upto,
};
pub use enumerate::enumerate_documents;
pub use generate::{
    random_dtd, seeded_dtd, write_sized_document, ChunkedDocConfig, ChunkedDocWriter, DtdGenConfig,
};
pub use model::{ContentModel, Dtd, SDtd, TypeMap};
pub use parse::{parse_compact, parse_compact_sdtd, parse_xml_dtd, DtdError};
pub use sample::{sample_documents, DocConfig, DocSampler};
pub use scompare::{
    counting_necessary_condition, sdtd_image_dtd, sdtd_tighter_than_bounded, SBoundedTightness,
};
pub use sdtd::{sdtd_satisfies, SAcceptor};
pub use validate::{
    satisfies, validate_document, validate_element, ValidationError, ValidationErrorKind, Validator,
};
pub use xml_syntax::to_xml_syntax;
