//! # mix-store — persistent content-addressed warm-start store
//!
//! Everything the serving stack pays to compute once per process — the
//! hash-consed regex pool arena with its cached per-node attributes, the
//! memoized `(ReId, ReId) → bool` inclusion table, and the
//! [`InferenceCache`](mix_infer::InferenceCache) entries — dies with the
//! process, so every restart serves cold traffic. This crate persists
//! all three to disk and reloads them on construction, keyed entirely by
//! **content**: process-independent structural fingerprints
//! ([`mix_relang::pool::fingerprint`], [`mix_infer::fingerprint_query`],
//! [`mix_infer::fingerprint_dtd`]), never by intern indices, which are
//! meaningless across processes.
//!
//! ## Layout
//!
//! A store directory holds numbered **generation snapshots**
//! (`gen-NNNNNNNN.snap`) and one **write-behind log** (`wal.log`). Both
//! are the same format: an 8-byte magic, then length-prefixed,
//! FNV-1a-checksummed records ([`codec`]). Snapshots carry the pool
//! arena, the inclusion batch, and every cache entry; the wal carries
//! only the view entries appended as misses happen, so even a
//! `SIGKILL`ed daemon warm-starts its inference cache.
//!
//! ## Corruption safety
//!
//! Nothing on disk is trusted. Every record is checksum-verified; pool
//! slots are re-interned and their fingerprints recomputed
//! ([`mix_relang::pool::import_arena`]); inclusion entries are dropped
//! with the slots they reference; view entries must parse and re-hash to
//! their stored query fingerprint. Any mismatch or truncation skips the
//! record — counted in `store_load_skipped_total` — and never poisons
//! the process: the cold path is always the correct fallback.
//!
//! ## Crash safety
//!
//! [`Store::compact_now`] writes the next generation to a `.tmp` file,
//! fsyncs it, and atomically renames it into place before truncating the
//! wal and removing older generations. A crash at *any* point leaves
//! either the previous generation intact (rename not reached — `.tmp`
//! files are ignored by loading) or the new generation plus a stale wal
//! (harmless: loading is idempotent). The crash-point enumeration test
//! below walks every window.

mod codec;

use codec::{
    frame, Dec, Enc, Records, Scan, KIND_INCLUSIONS, KIND_POOL, KIND_SAT, KIND_VIEW, MAGIC,
};
use mix_infer::{fingerprint_query, Fingerprint, InferredView, SatVerdict, Verdict, WarmStore};
use mix_obs::{Counter, Histogram, Registry};
use mix_relang::pool::{self, PortableEntry, PortableNode, ReId};
use mix_relang::symbol::Name;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Counters of one [`Store`] (typed view over its `store_*` instruments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Entities (pool slots, inclusion entries, views) loaded and
    /// re-validated.
    pub loads: u64,
    /// Entities or records skipped on load: checksum/fingerprint
    /// mismatch, truncation, or an unreadable generation.
    pub load_skipped: u64,
    /// Write-behind records appended to the wal.
    pub writes: u64,
    /// Compacting snapshots written.
    pub compactions: u64,
    /// Bytes written (wal appends + snapshots).
    pub bytes: u64,
}

/// A content-addressed on-disk store for the warm state of one serving
/// process. Open it with the serving registry so its `store_*`
/// instruments land in the same exposition `mixctl stats` scrapes.
pub struct Store {
    dir: PathBuf,
    /// The append handle of `wal.log`, opened lazily; also serializes
    /// wal truncation against concurrent appends during compaction.
    wal: Mutex<Option<File>>,
    /// Every satisfiability verdict this store has seen — loaded records
    /// plus write-behind appends — so compaction re-emits them and a
    /// `SatCache` constructed after the inference cache warm-starts
    /// without re-reading the directory.
    sat: Mutex<HashMap<Fingerprint, SatVerdict>>,
    /// Whether [`Store::load`] has run (a sat-verdict read on a store
    /// nobody loaded yet triggers one).
    loaded: AtomicBool,
    loads: Counter,
    load_skipped: Counter,
    writes: Counter,
    compactions: Counter,
    bytes: Counter,
    load_ns: Histogram,
}

impl Store {
    /// Opens (creating if needed) the store directory. Nothing is read
    /// until [`Store::load`].
    pub fn open(dir: impl AsRef<Path>, registry: &Registry) -> io::Result<Store> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(Store {
            dir,
            wal: Mutex::new(None),
            sat: Mutex::new(HashMap::new()),
            loaded: AtomicBool::new(false),
            loads: registry.counter("store_loads_total"),
            load_skipped: registry.counter("store_load_skipped_total"),
            writes: registry.counter("store_writes_total"),
            compactions: registry.counter("store_compactions_total"),
            bytes: registry.counter("store_bytes_total"),
            load_ns: registry.histogram("store_load_ns"),
        })
    }

    /// Current counter values.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            loads: self.loads.get(),
            load_skipped: self.load_skipped.get(),
            writes: self.writes.get(),
            compactions: self.compactions.get(),
            bytes: self.bytes.get(),
        }
    }

    /// The numbered generation snapshots present, ascending.
    fn generations(&self) -> Vec<(u64, PathBuf)> {
        let mut gens = Vec::new();
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return gens;
        };
        for entry in dir.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(num) = name
                .strip_prefix("gen-")
                .and_then(|rest| rest.strip_suffix(".snap"))
            {
                if let Ok(n) = num.parse::<u64>() {
                    gens.push((n, entry.path()));
                }
            }
        }
        gens.sort();
        gens
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    /// Loads the newest readable generation, then the wal, into the
    /// process: the pool arena and inclusion table are seeded in place
    /// (globals), and the re-validated inference-cache entries are
    /// returned for the caller's cache. Corrupt or truncated state is
    /// skipped, never fatal.
    pub fn load(&self) -> Vec<(Fingerprint, InferredView)> {
        let t = Instant::now();
        self.loaded.store(true, Ordering::Release);
        let mut views = Vec::new();
        for (_, path) in self.generations().iter().rev() {
            match std::fs::read(path) {
                Ok(bytes) if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC => {
                    self.load_body(&bytes[MAGIC.len()..], &mut views);
                    break; // older generations are strictly staler
                }
                // unreadable or foreign header: fall back a generation
                _ => self.load_skipped.inc(),
            }
        }
        match std::fs::read(self.wal_path()) {
            Ok(bytes) if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC => {
                self.load_body(&bytes[MAGIC.len()..], &mut views);
            }
            Ok(bytes) if !bytes.is_empty() => self.load_skipped.inc(),
            _ => {} // absent or empty wal is a clean cold start
        }
        self.load_ns.observe(t.elapsed().as_nanos() as u64);
        views
    }

    /// Replays one record stream. `views` accumulates re-validated cache
    /// entries; pool/inclusion records seed the process-wide tables.
    fn load_body(&self, body: &[u8], views: &mut Vec<(Fingerprint, InferredView)>) {
        // inclusion ids reference the pool record of the same stream
        let mut arena: Option<pool::ImportedArena> = None;
        let mut records = Records::new(body);
        loop {
            match records.next() {
                Scan::End => break,
                Scan::Truncated => {
                    self.load_skipped.inc();
                    break;
                }
                Scan::Corrupt => self.load_skipped.inc(),
                Scan::Record { kind, payload } => match kind {
                    KIND_POOL => match decode_pool(payload) {
                        Some(entries) => {
                            let imported = pool::import_arena(&entries);
                            self.loads.add(imported.imported as u64);
                            self.load_skipped.add(imported.skipped as u64);
                            arena = Some(imported);
                        }
                        None => self.load_skipped.inc(),
                    },
                    KIND_INCLUSIONS => match decode_inclusions(payload) {
                        Some(triples) => {
                            let mut mapped = Vec::with_capacity(triples.len());
                            for (a, b, v) in triples {
                                match arena.as_ref().and_then(|m| Some((m.id(a)?, m.id(b)?))) {
                                    Some((a, b)) => mapped.push((a, b, v)),
                                    // the slot an entry rests on was
                                    // skipped: the entry goes with it
                                    None => self.load_skipped.inc(),
                                }
                            }
                            self.loads.add(mapped.len() as u64);
                            mix_relang::import_inclusions(mapped);
                        }
                        None => self.load_skipped.inc(),
                    },
                    KIND_VIEW => match decode_view(payload) {
                        Some(entry) => {
                            self.loads.inc();
                            views.push(entry);
                        }
                        None => self.load_skipped.inc(),
                    },
                    KIND_SAT => match decode_sat(payload) {
                        Some((fp, v)) => {
                            self.loads.inc();
                            self.sat.lock().insert(fp, v);
                        }
                        None => self.load_skipped.inc(),
                    },
                    // an unknown kind is a future format: skip, don't fail
                    _ => self.load_skipped.inc(),
                },
            }
        }
    }

    /// Appends one inference result to the write-behind log.
    /// Best-effort: an I/O error is reported and swallowed — durability
    /// never blocks serving, and the entry stays resident in memory.
    pub fn append_view(&self, fp: &Fingerprint, iv: &InferredView) {
        self.append_framed(frame(KIND_VIEW, &encode_view(fp, iv)));
    }

    /// Appends one satisfiability verdict to the write-behind log (and
    /// the in-memory accumulator compaction re-emits from). Best-effort,
    /// like [`Store::append_view`].
    pub fn append_sat(&self, fp: &Fingerprint, verdict: &SatVerdict) {
        self.sat.lock().insert(*fp, verdict.clone());
        self.append_framed(frame(KIND_SAT, &encode_sat(fp, verdict)));
    }

    fn append_framed(&self, framed: Vec<u8>) {
        let mut guard = self.wal.lock();
        let result = (|| -> io::Result<()> {
            if guard.is_none() {
                let path = self.wal_path();
                let fresh = !path.exists() || std::fs::metadata(&path)?.len() == 0;
                let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
                if fresh {
                    file.write_all(&MAGIC)?;
                }
                *guard = Some(file);
            }
            let file = guard.as_mut().expect("opened above");
            file.write_all(&framed)?;
            file.flush()
        })();
        match result {
            Ok(()) => {
                self.writes.inc();
                self.bytes.add(framed.len() as u64);
            }
            Err(e) => {
                *guard = None; // reopen on the next append
                eprintln!("mix-store: wal append failed (serving continues cold): {e}");
            }
        }
    }

    /// Writes the next compacted generation: the whole pool arena, the
    /// inclusion table, and `entries`, fsynced and atomically renamed
    /// into place; then truncates the wal and removes older generations.
    /// A crash anywhere in between leaves the store loadable at the
    /// previous generation (`.tmp` files are never read).
    pub fn compact_now(&self, entries: &[(Fingerprint, Arc<InferredView>)]) -> io::Result<u64> {
        // export the arena first: inclusion ids at or past the arena
        // snapshot would dangle, so they are filtered out
        let arena = pool::export_arena();
        let inclusions: Vec<(ReId, ReId, bool)> = mix_relang::export_inclusions()
            .into_iter()
            .filter(|(a, b, _)| {
                (a.index() as usize) < arena.len() && (b.index() as usize) < arena.len()
            })
            .collect();

        let next = self.generations().last().map_or(1, |(n, _)| n + 1);
        let tmp = self.dir.join(format!("gen-{next:08}.snap.tmp"));
        let dest = self.dir.join(format!("gen-{next:08}.snap"));
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&frame(KIND_POOL, &encode_pool(&arena)));
        buf.extend_from_slice(&frame(KIND_INCLUSIONS, &encode_inclusions(&inclusions)));
        for (fp, iv) in entries {
            buf.extend_from_slice(&frame(KIND_VIEW, &encode_view(fp, iv)));
        }
        // sat verdicts ride along in fingerprint order (deterministic
        // snapshots), so truncating the wal below never loses them
        let mut sat: Vec<(Fingerprint, SatVerdict)> = self
            .sat
            .lock()
            .iter()
            .map(|(&fp, v)| (fp, v.clone()))
            .collect();
        sat.sort_by_key(|(fp, _)| (fp.dtd, fp.query));
        for (fp, v) in &sat {
            buf.extend_from_slice(&frame(KIND_SAT, &encode_sat(fp, v)));
        }
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&buf)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &dest)?;
        // fsync the directory so the rename itself is durable (best
        // effort: not every filesystem supports opening a directory)
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.compactions.inc();
        self.bytes.add(buf.len() as u64);

        // the snapshot covers everything the wal held: truncate it (under
        // the append lock) and drop the older generations
        {
            let mut guard = self.wal.lock();
            *guard = None;
            let _ = std::fs::write(self.wal_path(), MAGIC);
        }
        for (n, path) in self.generations() {
            if n < next {
                let _ = std::fs::remove_file(path);
            }
        }
        Ok(next)
    }
}

impl WarmStore for Store {
    fn load_views(&self) -> Vec<(Fingerprint, InferredView)> {
        self.load()
    }

    fn record_view(&self, fp: &Fingerprint, iv: &InferredView) {
        self.append_view(fp, iv);
    }

    fn compact(&self, entries: &[(Fingerprint, Arc<InferredView>)]) {
        if let Err(e) = self.compact_now(entries) {
            eprintln!("mix-store: compaction failed (previous generation remains): {e}");
        }
    }

    fn load_sat_verdicts(&self) -> Vec<(Fingerprint, SatVerdict)> {
        // the usual construction order loads views (and with them the
        // sat records) first; a store nobody loaded yet reads the disk
        if !self.loaded.load(Ordering::Acquire) {
            let _ = self.load();
        }
        self.sat
            .lock()
            .iter()
            .map(|(&fp, v)| (fp, v.clone()))
            .collect()
    }

    fn record_sat_verdict(&self, fp: &Fingerprint, verdict: &SatVerdict) {
        self.append_sat(fp, verdict);
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Payload encodings
// ---------------------------------------------------------------------

fn encode_pool(entries: &[PortableEntry]) -> Vec<u8> {
    let mut e = Enc::default();
    e.u32(entries.len() as u32);
    for entry in entries {
        match &entry.node {
            PortableNode::Empty => e.u8(0),
            PortableNode::Epsilon => e.u8(1),
            PortableNode::Sym { name, tag } => {
                e.u8(2);
                e.str(name);
                e.u32(*tag);
            }
            PortableNode::Concat(v) | PortableNode::Alt(v) => {
                e.u8(if matches!(&entry.node, PortableNode::Concat(_)) {
                    3
                } else {
                    4
                });
                e.u32(v.len() as u32);
                for &c in v {
                    e.u32(c);
                }
            }
            PortableNode::Star(x) => {
                e.u8(5);
                e.u32(*x);
            }
            PortableNode::Plus(x) => {
                e.u8(6);
                e.u32(*x);
            }
            PortableNode::Opt(x) => {
                e.u8(7);
                e.u32(*x);
            }
        }
        e.u64(entry.fp);
    }
    e.finish()
}

fn decode_pool(payload: &[u8]) -> Option<Vec<PortableEntry>> {
    let mut d = Dec::new(payload);
    let count = d.u32()? as usize;
    // cap preallocation by what the payload could possibly hold (2 bytes
    // is the smallest slot) so a corrupt count cannot balloon memory
    let mut out = Vec::with_capacity(count.min(payload.len() / 2));
    for _ in 0..count {
        let node = match d.u8()? {
            0 => PortableNode::Empty,
            1 => PortableNode::Epsilon,
            2 => PortableNode::Sym {
                name: d.str()?,
                tag: d.u32()?,
            },
            tag @ (3 | 4) => {
                let n = d.u32()? as usize;
                if n > payload.len() / 4 {
                    return None; // a corrupt child count, not a real slot
                }
                let mut kids = Vec::with_capacity(n);
                for _ in 0..n {
                    kids.push(d.u32()?);
                }
                if tag == 3 {
                    PortableNode::Concat(kids)
                } else {
                    PortableNode::Alt(kids)
                }
            }
            5 => PortableNode::Star(d.u32()?),
            6 => PortableNode::Plus(d.u32()?),
            7 => PortableNode::Opt(d.u32()?),
            _ => return None,
        };
        out.push(PortableEntry { node, fp: d.u64()? });
    }
    d.is_done().then_some(out)
}

/// Inclusion triples reference *export indices* of the pool record in
/// the same stream, so they survive only next to a pool record that
/// re-validated those slots.
fn encode_inclusions(triples: &[(ReId, ReId, bool)]) -> Vec<u8> {
    let mut e = Enc::default();
    e.u32(triples.len() as u32);
    for (a, b, v) in triples {
        e.u32(a.index());
        e.u32(b.index());
        e.u8(*v as u8);
    }
    e.finish()
}

fn decode_inclusions(payload: &[u8]) -> Option<Vec<(u32, u32, bool)>> {
    let mut d = Dec::new(payload);
    let count = d.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(payload.len() / 9));
    for _ in 0..count {
        let a = d.u32()?;
        let b = d.u32()?;
        let v = match d.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        out.push((a, b, v));
    }
    d.is_done().then_some(out)
}

/// A view entry is pure text: every component round-trips through its
/// canonical `Display` form and parser, which makes the payload
/// process-independent and lets load re-verify the query fingerprint
/// against the stored key.
fn encode_view(fp: &Fingerprint, iv: &InferredView) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(fp.query);
    e.u64(fp.dtd);
    e.str(&iv.query.to_string());
    e.str(&iv.sdtd.to_string());
    e.str(&iv.dtd.to_string());
    e.u32(iv.merged_names.len() as u32);
    for n in &iv.merged_names {
        e.str(n.as_str());
    }
    e.u8(match iv.verdict {
        Verdict::Unsatisfiable => 0,
        Verdict::Satisfiable => 1,
        Verdict::Valid => 2,
    });
    e.str(&iv.list_type.to_string());
    e.finish()
}

fn decode_view(payload: &[u8]) -> Option<(Fingerprint, InferredView)> {
    let mut d = Dec::new(payload);
    let fp = Fingerprint {
        query: d.u64()?,
        dtd: d.u64()?,
    };
    let query = mix_xmas::parse_query(&d.str()?).ok()?;
    // content-addressing check: the parsed query must hash back to the
    // key it is filed under, or a lookup could hand out a foreign result
    if fingerprint_query(&query) != fp.query {
        return None;
    }
    let sdtd = mix_dtd::parse_compact_sdtd(&d.str()?).ok()?;
    let dtd = mix_dtd::parse_compact(&d.str()?).ok()?;
    let n = d.u32()? as usize;
    if n > payload.len() / 4 {
        return None;
    }
    let mut merged_names = Vec::with_capacity(n);
    for _ in 0..n {
        merged_names.push(Name::intern(&d.str()?));
    }
    let verdict = match d.u8()? {
        0 => Verdict::Unsatisfiable,
        1 => Verdict::Satisfiable,
        2 => Verdict::Valid,
        _ => return None,
    };
    let list_type = mix_relang::parse_regex(&d.str()?).ok()?;
    d.is_done().then_some((
        fp,
        InferredView {
            query,
            sdtd,
            dtd,
            merged_names,
            verdict,
            list_type,
        },
    ))
}

/// A sat record is the fingerprint pair plus the verdict. Only decided
/// verdicts persist (`Unknown` just means the analyzer gave up, which a
/// fresh process can rediscover for free); the record-level checksum is
/// the integrity guard, exactly as for inclusion entries.
fn encode_sat(fp: &Fingerprint, verdict: &SatVerdict) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(fp.query);
    e.u64(fp.dtd);
    match verdict {
        SatVerdict::Sat => {
            e.u8(0);
            e.str("");
        }
        SatVerdict::Unsat(reason) => {
            e.u8(1);
            e.str(reason);
        }
        SatVerdict::Unknown => {
            e.u8(2);
            e.str("");
        }
    }
    e.finish()
}

fn decode_sat(payload: &[u8]) -> Option<(Fingerprint, SatVerdict)> {
    let mut d = Dec::new(payload);
    let fp = Fingerprint {
        query: d.u64()?,
        dtd: d.u64()?,
    };
    let code = d.u8()?;
    let reason = d.str()?;
    let verdict = match code {
        0 => SatVerdict::Sat,
        1 => SatVerdict::Unsat(reason),
        _ => return None, // Unknown (or a future code) is never resident
    };
    d.is_done().then_some((fp, verdict))
}

#[cfg(test)]
mod tests;
