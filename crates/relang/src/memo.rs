//! Memoized automata construction and language-relation results.
//!
//! The serving layer answers *many* queries over the same handful of
//! source DTDs, so the same content-model regexes flow through
//! [`crate::is_subset`] / [`crate::equivalent`] over and over — and DFA
//! construction (subset construction + minimization) dominates the cost
//! of tighten/collapse/merge. This module keeps two process-wide memo
//! tables behind `parking_lot` locks:
//!
//! * a **DFA cache** keyed on `(ReId, alphabet id)` — the minimized
//!   complete DFA for a regex over an explicit alphabet is pure, so it is
//!   shared across every inclusion check that needs it. Both key halves
//!   are pool-interned `u32`s ([`crate::pool`]), so a probe hashes eight
//!   bytes instead of deep-hashing a boxed regex and cloning its
//!   alphabet;
//! * an **inclusion cache** keyed on `(ReId, ReId)` holding the boolean
//!   result of `L(a) ⊆ L(b)` — the collapse/equivalence passes re-ask the
//!   same pairs constantly (every pipeline run re-derives the same
//!   specializations).
//!
//! When [`crate::pool::boxed_baseline`] is on, lookups route to separate
//! legacy tables keyed on `(Regex, Vec<Sym>)` / `(Regex, Regex)` with the
//! pre-intern Moore minimizer — the X18 benchmark's "before" measurement,
//! kept so the baseline pays exactly the seed implementation's costs.
//!
//! Both id tables are bounded: when a table reaches its capacity it is
//! flushed wholesale (counted as an eviction) rather than growing without
//! limit — the working set of a mediator is small and re-warming is
//! cheap. Results are pure functions of their keys, so memoization never
//! changes any answer; `tests/serving_prop.rs` property-checks this
//! against the uncached procedures.
//!
//! Hit/miss/eviction accounting lives in the process-wide
//! [`mix_obs::global()`] registry (the memo is itself process-wide, so
//! the global registry is its natural home); [`memo_stats`] remains as a
//! typed view over those counters for the serving layer and benches, and
//! [`memo_footprint`] reports resident entry/state/byte counts for the
//! X18 memory study.

use crate::ast::Regex;
use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::pool::{self, ReId};
use crate::symbol::Sym;
use mix_obs::Counter;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Entries kept per table before a wholesale flush.
const DFA_CAPACITY: usize = 4096;
const INCLUSION_CAPACITY: usize = 1 << 15;

/// DFA-table key: pool id of the regex plus pool id of the (sorted)
/// alphabet it was built over.
type DfaKey = (ReId, u32);

/// Deep-hashed DFA key for the boxed-baseline tables: the regex plus
/// the literal alphabet it was built over.
type BoxedDfaKey = (Regex, Vec<Sym>);

struct Memo {
    dfas: RwLock<HashMap<DfaKey, Arc<Dfa>>>,
    inclusions: RwLock<HashMap<(ReId, ReId), bool>>,
    // The pre-intern tables: deep-hashed keys, used only in
    // boxed-baseline benchmark mode.
    dfas_boxed: RwLock<HashMap<BoxedDfaKey, Arc<Dfa>>>,
    inclusions_boxed: RwLock<HashMap<(Regex, Regex), bool>>,
    dfa_hits: Counter,
    dfa_misses: Counter,
    inclusion_hits: Counter,
    inclusion_misses: Counter,
    evictions: Counter,
}

fn memo() -> &'static Memo {
    static MEMO: OnceLock<Memo> = OnceLock::new();
    MEMO.get_or_init(|| {
        let obs = mix_obs::global();
        Memo {
            dfas: RwLock::new(HashMap::new()),
            inclusions: RwLock::new(HashMap::new()),
            dfas_boxed: RwLock::new(HashMap::new()),
            inclusions_boxed: RwLock::new(HashMap::new()),
            dfa_hits: obs.counter("relang_dfa_memo_hits_total"),
            dfa_misses: obs.counter("relang_dfa_memo_misses_total"),
            inclusion_hits: obs.counter("relang_inclusion_memo_hits_total"),
            inclusion_misses: obs.counter("relang_inclusion_memo_misses_total"),
            evictions: obs.counter("relang_memo_evictions_total"),
        }
    })
}

/// Counters of the process-wide automata memo tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// DFA-cache lookups served from the table.
    pub dfa_hits: u64,
    /// DFA-cache lookups that had to run subset construction.
    pub dfa_misses: u64,
    /// Inclusion-result lookups served from the table.
    pub inclusion_hits: u64,
    /// Inclusion-result lookups that had to run the product check.
    pub inclusion_misses: u64,
    /// Wholesale table flushes triggered by the capacity bound.
    pub evictions: u64,
}

/// A snapshot of the memo counters (a typed view over the
/// `relang_*_memo_*` counters of [`mix_obs::global()`]).
pub fn memo_stats() -> MemoStats {
    let m = memo();
    MemoStats {
        dfa_hits: m.dfa_hits.get(),
        dfa_misses: m.dfa_misses.get(),
        inclusion_hits: m.inclusion_hits.get(),
        inclusion_misses: m.inclusion_misses.get(),
        evictions: m.evictions.get(),
    }
}

/// Resident sizes of the memo tables — what the DFA cache actually holds,
/// for the X18 memory-footprint study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoFootprint {
    /// Memoized DFAs resident (id-keyed and boxed-keyed tables combined).
    pub dfa_entries: usize,
    /// Total states across all memoized DFAs.
    pub dfa_states: usize,
    /// Approximate bytes of the memoized DFAs (transition tables,
    /// acceptance vectors, alphabets).
    pub dfa_bytes: usize,
    /// Memoized inclusion results resident.
    pub inclusion_entries: usize,
}

/// Measures the resident memo tables.
pub fn memo_footprint() -> MemoFootprint {
    let m = memo();
    let mut out = MemoFootprint::default();
    let weigh = |d: &Dfa, out: &mut MemoFootprint| {
        out.dfa_entries += 1;
        out.dfa_states += d.len();
        out.dfa_bytes += d.transitions.len() * std::mem::size_of::<u32>()
            + d.accepting.len()
            + d.alphabet.len() * std::mem::size_of::<Sym>();
    };
    for d in m.dfas.read().values() {
        weigh(d, &mut out);
    }
    for d in m.dfas_boxed.read().values() {
        weigh(d, &mut out);
    }
    out.inclusion_entries = m.inclusions.read().len() + m.inclusions_boxed.read().len();
    out
}

/// Drops every memoized DFA and inclusion result (counters are kept).
/// Only needed by benchmarks that want a genuinely cold start.
pub fn clear_memo() {
    let m = memo();
    m.dfas.write().clear();
    m.inclusions.write().clear();
    m.dfas_boxed.write().clear();
    m.inclusions_boxed.write().clear();
}

/// Snapshots the id-keyed inclusion table as `(a, b, L(a) ⊆ L(b))`
/// triples — the mix-store persistence surface. The ids are only
/// meaningful next to a matching arena export ([`pool::export_arena`])
/// taken in the same process, which is why the store writes both into
/// one checksummed generation.
pub fn export_inclusions() -> Vec<(ReId, ReId, bool)> {
    memo()
        .inclusions
        .read()
        .iter()
        .map(|(&(a, b), &v)| (a, b, v))
        .collect()
}

/// Seeds the id-keyed inclusion table with persisted results whose ids
/// were re-validated through [`pool::import_arena`]. Seeding respects
/// the capacity bound (entries past it are dropped rather than flushing
/// warm state) and never overwrites a resident entry. Returns how many
/// entries were inserted.
pub fn import_inclusions(entries: impl IntoIterator<Item = (ReId, ReId, bool)>) -> usize {
    let m = memo();
    let mut table = m.inclusions.write();
    let mut inserted = 0;
    for (a, b, v) in entries {
        if table.len() >= INCLUSION_CAPACITY {
            break;
        }
        if let std::collections::hash_map::Entry::Vacant(slot) = table.entry((a, b)) {
            slot.insert(v);
            inserted += 1;
        }
    }
    inserted
}

/// The minimized complete DFA of `r` over `alphabet`, shared via the
/// process-wide cache. `alphabet` must be sorted and must contain every
/// symbol of `r` (as guaranteed by the callers in [`crate::ops`]).
pub fn memoized_dfa(r: &Regex, alphabet: &[Sym]) -> Arc<Dfa> {
    if pool::boxed_baseline() {
        return memoized_dfa_boxed(r, alphabet);
    }
    memoized_dfa_id(pool::intern(r), pool::intern_alphabet(alphabet))
}

/// The id-keyed DFA memo: the hot path. A probe hashes `(u32, u32)`.
pub fn memoized_dfa_id(r: ReId, alphabet_id: u32) -> Arc<Dfa> {
    let m = memo();
    {
        let table = m.dfas.read();
        if let Some(dfa) = table.get(&(r, alphabet_id)) {
            m.dfa_hits.inc();
            return Arc::clone(dfa);
        }
    }
    m.dfa_misses.inc();
    let alphabet = pool::alphabet_by_index(alphabet_id);
    let regex = pool::to_regex(r);
    let built = Arc::new(Dfa::from_nfa(&Nfa::from_regex(&regex), &alphabet).minimize());
    let mut table = m.dfas.write();
    if table.len() >= DFA_CAPACITY {
        table.clear();
        m.evictions.inc();
    }
    table
        .entry((r, alphabet_id))
        .or_insert_with(|| Arc::clone(&built));
    built
}

/// The pre-intern DFA memo: a probe deep-clones and deep-hashes the key,
/// and minimization is the seed Moore pass. Benchmark baseline only.
fn memoized_dfa_boxed(r: &Regex, alphabet: &[Sym]) -> Arc<Dfa> {
    let m = memo();
    {
        let table = m.dfas_boxed.read();
        if let Some(dfa) = table.get(&(r.clone(), alphabet.to_vec())) {
            m.dfa_hits.inc();
            return Arc::clone(dfa);
        }
    }
    m.dfa_misses.inc();
    let built = Arc::new(Dfa::from_nfa(&Nfa::from_regex(r), alphabet).minimize_moore());
    let mut table = m.dfas_boxed.write();
    if table.len() >= DFA_CAPACITY {
        table.clear();
        m.evictions.inc();
    }
    table
        .entry((r.clone(), alphabet.to_vec()))
        .or_insert_with(|| Arc::clone(&built));
    built
}

/// Memoized `L(a) ⊆ L(b)`; the uncached procedure lives in [`crate::ops`].
pub fn memoized_subset(a: &Regex, b: &Regex) -> bool {
    if pool::boxed_baseline() {
        return memoized_subset_boxed(a, b);
    }
    if a.is_empty_lang() {
        return true;
    }
    memoized_subset_id(pool::intern(a), pool::intern(b))
}

/// Id-keyed memoized inclusion. `ReId` equality covers the structural
/// fast path for free.
pub fn memoized_subset_id(a: ReId, b: ReId) -> bool {
    if a == ReId::EMPTY || a == b {
        return true;
    }
    let m = memo();
    {
        let table = m.inclusions.read();
        if let Some(&result) = table.get(&(a, b)) {
            m.inclusion_hits.inc();
            return result;
        }
    }
    m.inclusion_misses.inc();
    let result = refute_subset_id(a, b).unwrap_or_else(|| {
        let alpha = pool::shared_alphabet_ids(a, b);
        let alphabet_id = pool::intern_alphabet(&alpha);
        let da = inclusion_dfa(a, alphabet_id, &alpha);
        let db = inclusion_dfa(b, alphabet_id, &alpha);
        da.subset_of(&db)
    });
    let mut table = m.inclusions.write();
    if table.len() >= INCLUSION_CAPACITY {
        table.clear();
        m.evictions.inc();
    }
    table.insert((a, b), result);
    result
}

/// Decides `L(a) ⊆ L(b)` from the pool's *language-exact* cached
/// attributes alone, without building automata. Returns `None` when the
/// attributes cannot settle it (the product check runs then). These are
/// decisions, not heuristics — every arm is exact, so the memo stays
/// answer-identical to the uncached procedure:
///
/// * `L(a) = ∅` ⟹ trivially included;
/// * `L(b) = ∅` (and `L(a) ≠ ∅`) ⟹ refuted;
/// * `ε ∈ L(a)` but `ε ∉ L(b)` ⟹ refuted;
/// * some symbol occurs in a word of `a` but in no word of `b` ⟹ that
///   word refutes inclusion;
/// * some symbol starts a word of `a` but starts no word of `b` ⟹
///   refuted likewise.
///
/// In the inference stack the bulk of inclusion probes are *failed*
/// subsumption candidates (simplify's union pruning, tighten's validity
/// checks), and almost all of them fall to one of these arms — this is
/// where the X18 cold-inference speedup comes from.
/// The automaton for one side of an inclusion walk. Reuses the cached
/// minimized DFA when some caller already paid for it; otherwise builds
/// the *raw* subset construction and does not cache it. [`Dfa::subset_of`]
/// is a reachability walk, correct on any complete DFA pair over a shared
/// alphabet, so minimizing here would be pure overhead — the inclusion
/// *answer* is what gets memoized (two `u32`s and a bool per entry),
/// which is the right cache granularity for this decision procedure.
/// Canonical minimized DFAs stay available via [`memoized_dfa_id`].
fn inclusion_dfa(r: ReId, alphabet_id: u32, alphabet: &[Sym]) -> Arc<Dfa> {
    let m = memo();
    if let Some(dfa) = m.dfas.read().get(&(r, alphabet_id)) {
        m.dfa_hits.inc();
        return Arc::clone(dfa);
    }
    m.dfa_misses.inc();
    let regex = pool::to_regex(r);
    Arc::new(Dfa::from_nfa(&Nfa::from_regex(&regex), alphabet))
}

fn refute_subset_id(a: ReId, b: ReId) -> Option<bool> {
    if pool::empty_lang(a) {
        return Some(true);
    }
    if pool::empty_lang(b) {
        return Some(false);
    }
    if pool::nullable(a) && !pool::nullable(b) {
        return Some(false);
    }
    if !pool::syms_subset(&pool::live_alphabet(a), &pool::live_alphabet(b)) {
        return Some(false);
    }
    if !pool::syms_subset(&pool::live_first(a), &pool::live_first(b)) {
        return Some(false);
    }
    None
}

/// The pre-intern inclusion memo (benchmark baseline only).
fn memoized_subset_boxed(a: &Regex, b: &Regex) -> bool {
    if a.is_empty_lang() {
        return true;
    }
    if a == b {
        return true;
    }
    let m = memo();
    {
        let table = m.inclusions_boxed.read();
        if let Some(&result) = table.get(&(a.clone(), b.clone())) {
            m.inclusion_hits.inc();
            return result;
        }
    }
    m.inclusion_misses.inc();
    let alpha = crate::ops::shared_alphabet(a, b);
    let da = memoized_dfa_boxed(a, &alpha);
    let db = memoized_dfa_boxed(b, &alpha);
    let result = da.product(&db.complement()).language_is_empty();
    let mut table = m.inclusions_boxed.write();
    if table.len() >= INCLUSION_CAPACITY {
        table.clear();
        m.evictions.inc();
    }
    table.insert((a.clone(), b.clone()), result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::shared_alphabet;
    use crate::parser::parse_regex;

    fn r(s: &str) -> Regex {
        parse_regex(s).unwrap()
    }

    #[test]
    fn memoized_dfa_agrees_with_direct_construction() {
        for src in [
            "a",
            "a, b",
            "(a | b)*, c",
            "title, author+, (journal | conference)",
            "(a?, b)*",
        ] {
            let re = r(src);
            let alpha: Vec<Sym> = re.syms().into_iter().collect();
            let cached = memoized_dfa(&re, &alpha);
            let direct = Dfa::from_nfa(&Nfa::from_regex(&re), &alpha).minimize();
            for w in direct.enumerate_words(4, 200) {
                assert!(cached.accepts(&w), "{src} lost {w:?}");
            }
            assert_eq!(cached.len(), direct.len(), "{src}");
        }
    }

    #[test]
    fn repeated_lookups_hit() {
        let a = r("x1, (x2 | x3)*");
        let alpha: Vec<Sym> = a.syms().into_iter().collect();
        let _ = memoized_dfa(&a, &alpha);
        let before = memo_stats();
        let _ = memoized_dfa(&a, &alpha);
        let after = memo_stats();
        assert!(after.dfa_hits > before.dfa_hits);
    }

    #[test]
    fn memoized_subset_matches_semantics() {
        assert!(memoized_subset(&r("a, a"), &r("a*")));
        assert!(!memoized_subset(&r("a*"), &r("a, a")));
        assert!(memoized_subset(&Regex::Empty, &r("b")));
        // cached round answers identically
        assert!(memoized_subset(&r("a, a"), &r("a*")));
        assert!(!memoized_subset(&r("a*"), &r("a, a")));
    }

    #[test]
    fn distinct_alphabets_get_distinct_dfas() {
        let re = r("q1");
        let own: Vec<Sym> = re.syms().into_iter().collect();
        let wider = shared_alphabet(&re, &r("q1 | q2"));
        let d1 = memoized_dfa(&re, &own);
        let d2 = memoized_dfa(&re, &wider);
        assert_eq!(d1.alphabet.len(), 1);
        assert_eq!(d2.alphabet.len(), 2);
    }

    #[test]
    fn clear_memo_empties_tables() {
        let a = r("z9, z8");
        let alpha: Vec<Sym> = a.syms().into_iter().collect();
        let _ = memoized_dfa(&a, &alpha);
        clear_memo();
        let before = memo_stats();
        let _ = memoized_dfa(&a, &alpha);
        let after = memo_stats();
        assert!(
            after.dfa_misses > before.dfa_misses,
            "cleared entry re-built"
        );
    }

    #[test]
    fn boxed_baseline_routes_to_legacy_tables_with_same_answers() {
        let a = r("p*, p, p*");
        let b = r("p+");
        let interned = memoized_subset(&a, &b);
        pool::set_boxed_baseline(true);
        let boxed = memoized_subset(&a, &b);
        let boxed_again = memoized_subset(&a, &b); // cached round
        pool::set_boxed_baseline(false);
        assert_eq!(interned, boxed);
        assert_eq!(boxed, boxed_again);
        assert!(interned);
    }

    #[test]
    fn inclusion_export_import_restores_cached_answers() {
        let a = pool::intern(&r("w1, w1"));
        let b = pool::intern(&r("w1*"));
        assert!(memoized_subset_id(a, b));
        let exported = export_inclusions();
        assert!(exported.contains(&(a, b, true)));
        // a fresh process is simulated by clearing, then importing
        clear_memo();
        let seeded = import_inclusions(exported.clone());
        assert!(seeded >= 1);
        let before = memo_stats();
        assert!(memoized_subset_id(a, b));
        let after = memo_stats();
        assert!(
            after.inclusion_hits > before.inclusion_hits,
            "imported entry must serve as a hit"
        );
        // re-importing is a no-op (resident entries are never overwritten)
        assert_eq!(
            import_inclusions(
                exported
                    .iter()
                    .copied()
                    .filter(|&(x, y, _)| (x, y) == (a, b))
            ),
            0
        );
    }

    #[test]
    fn footprint_counts_resident_automata() {
        clear_memo();
        let a = r("f1, (f2 | f3)*");
        let alpha: Vec<Sym> = a.syms().into_iter().collect();
        let _ = memoized_dfa(&a, &alpha);
        // other unit tests share the process-wide table, so lower-bound only
        let fp = memo_footprint();
        assert!(fp.dfa_entries >= 1);
        assert!(fp.dfa_states > 0);
        assert!(fp.dfa_bytes > 0);
    }
}
