//! # mix-infer — view DTD inference (the paper's primary contribution)
//!
//! Given the source DTD and a pick-element XMAS view definition, infers
//! the *tightest* specialized view DTD (Sections 3–4) and its merged plain
//! form:
//!
//! * [`refine()`] — type refinement, plain and tagged (Section 4.1),
//! * [`tighten()`] — the Tightening algorithm with its
//!   valid/satisfiable/unsatisfiable side effect (Figure 2),
//! * [`infer_list`] — result-list type inference (Section 4.4, Appendix B),
//! * [`merge()`] — s-DTD → DTD conversion with merge signalling (Section 4.3),
//! * [`naive_view_dtd`] — the naive baseline of Example 3.1,
//! * [`infer_view_dtd`] — the end-to-end pipeline,
//! * [`infer_union_view_dtd`] — multi-source union views (the intro's
//!   "union of 100 sites" scenario),
//! * [`cache`] — the serving layer's memoized inference with stable
//!   fingerprints and per-source invalidation,
//! * [`metrics`] — quantitative soundness/tightness instrumentation for
//!   the experiments in `EXPERIMENTS.md`.

#![warn(missing_docs)]

pub mod cache;
pub mod inferlist;
pub mod merge;
pub mod metrics;
pub mod naive;
pub mod pipeline;
pub mod refine;
pub mod sat;
pub mod tighten;
pub mod union;

pub use cache::{
    fingerprint_dtd, fingerprint_query, CacheStats, Fingerprint, InferenceCache, WarmStore,
    INFERENCE_CACHE_CAPACITY,
};
pub use inferlist::{infer_list, one_level_extension, project};
pub use merge::{merge, Merged};
pub use naive::{naive_view_dtd, NaiveMode};
pub use pipeline::{infer_view_dtd, InferredView};
pub use refine::{refine, refine1};
pub use sat::{
    check_sat, check_sat_memo, check_sat_normalized, SatCache, SatVerdict, SAT_CACHE_CAPACITY,
};
pub use tighten::{classify_query, tighten, Tightened, Verdict};
pub use union::{
    compose_union_views, infer_union_view_dtd, infer_union_view_dtd_cached, InferredUnionView,
};
