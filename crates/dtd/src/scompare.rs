//! Tightness comparison for *specialized* DTDs.
//!
//! Plain-DTD tightness reduces to per-type regular-language inclusion
//! (see [`crate::compare`]); s-DTDs are nondeterministic tree automata,
//! where exact inclusion is EXPTIME in general. This module provides the
//! bounded-but-exact-within-the-bound comparison the experiments need:
//! every document of `a` up to a size bound is checked against `b`, by
//! enumerating an over-approximating plain *image DTD* of `a` and
//! filtering with the exact acceptors.

use crate::count::count_sdocuments_upto;
use crate::enumerate::enumerate_documents;
use crate::model::{ContentModel, Dtd, SDtd};
use crate::sdtd::SAcceptor;
use mix_relang::ast::Regex;
use mix_relang::symbol::Name;
use mix_xml::Document;
use std::collections::HashMap;

/// The image DTD of an s-DTD: one type per *name*, the union of the
/// images of its specializations. Its language contains every document of
/// the s-DTD (it is the `Merge` over-approximation), which makes it a
/// sound enumeration basis. Returns `None` when some name mixes PCDATA
/// and element specializations — not expressible as one plain type (the
/// inference pipeline never produces that shape).
pub fn sdtd_image_dtd(sd: &SDtd) -> Option<Dtd> {
    let mut models: HashMap<Name, ContentModel> = HashMap::new();
    let mut order: Vec<Name> = Vec::new();
    for (sym, m) in sd.types.iter() {
        let n = sym.name;
        let image = match m {
            ContentModel::Pcdata => ContentModel::Pcdata,
            ContentModel::Elements(r) => ContentModel::Elements(r.image()),
        };
        match models.get(&n) {
            None => {
                order.push(n);
                models.insert(n, image);
            }
            Some(ContentModel::Pcdata) if image.is_pcdata() => {}
            Some(ContentModel::Elements(a)) => {
                let ContentModel::Elements(b) = image else {
                    return None; // mixed PCDATA/element specializations
                };
                let unioned = Regex::alt([a.clone(), b]);
                models.insert(n, ContentModel::Elements(unioned));
            }
            Some(ContentModel::Pcdata) => return None,
        }
    }
    let mut dtd = Dtd::new(sd.doc_type.name);
    for n in order {
        dtd.types
            .insert(n, models.remove(&n).expect("collected above"));
    }
    Some(dtd)
}

/// Result of a bounded s-DTD tightness check.
#[derive(Debug)]
pub enum SBoundedTightness {
    /// Every document of `a` with ≤ `bound` nodes satisfies `b`.
    TighterUpTo(usize),
    /// A concrete document of `a` that violates `b`.
    Witness(Box<Document>),
    /// The enumeration cap was hit (or the image DTD is inexpressible) —
    /// inconclusive.
    Inconclusive,
}

impl SBoundedTightness {
    /// Did the check succeed up to the bound?
    pub fn holds(&self) -> bool {
        matches!(self, SBoundedTightness::TighterUpTo(_))
    }
}

/// Is every document of `a` (up to `max_size` nodes) also a document of
/// `b`? Exact within the bound, up to `cap` enumerated candidates.
pub fn sdtd_tighter_than_bounded(
    a: &SDtd,
    b: &SDtd,
    max_size: usize,
    cap: usize,
) -> SBoundedTightness {
    let Some(image) = sdtd_image_dtd(a) else {
        return SBoundedTightness::Inconclusive;
    };
    let candidates = enumerate_documents(&image, max_size, cap);
    let capped = candidates.len() >= cap;
    let accept_a = SAcceptor::new(a);
    let accept_b = SAcceptor::new(b);
    for doc in candidates {
        if accept_a.document_satisfies(&doc) && !accept_b.document_satisfies(&doc) {
            return SBoundedTightness::Witness(Box::new(doc));
        }
    }
    if capped {
        SBoundedTightness::Inconclusive
    } else {
        SBoundedTightness::TighterUpTo(max_size)
    }
}

/// Quick numeric necessary condition: if `a` is tighter than `b` then
/// `a`'s document count never exceeds `b`'s at any size bound. Returns
/// the first bound where the condition fails, if any. (Counts alone can
/// never *certify* inclusion — two disjoint languages may have equal
/// counts — but a violated count is a cheap disproof.)
pub fn counting_necessary_condition(a: &SDtd, b: &SDtd, max_size: usize) -> Option<usize> {
    (1..=max_size).find(|&s| count_sdocuments_upto(a, s) > count_sdocuments_upto(b, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_compact_sdtd;

    fn sd(s: &str) -> SDtd {
        parse_compact_sdtd(s).unwrap()
    }

    #[test]
    fn tight_sdtd_is_tighter_than_merged_form() {
        let tight = sd("{<v : professor>\
              <professor : publication*, publication^1, publication*, publication^1, publication*>\
              <publication : (journal | conference)>\
              <publication^1 : journal>\
              <journal : EMPTY> <conference : EMPTY>}");
        let merged = sd("{<v : professor>\
              <professor : publication, publication, publication*>\
              <publication : (journal | conference)>\
              <journal : EMPTY> <conference : EMPTY>}");
        assert!(sdtd_tighter_than_bounded(&tight, &merged, 9, 100_000).holds());
        // and not the other way: merged admits conference-only professors
        match sdtd_tighter_than_bounded(&merged, &tight, 9, 100_000) {
            SBoundedTightness::Witness(w) => {
                let journals = w
                    .root
                    .walk()
                    .filter(|e| e.name.as_str() == "journal")
                    .count();
                assert!(journals < 2, "unexpected witness: {w:?}");
            }
            other => panic!("expected a witness, got {other:?}"),
        }
        assert_eq!(counting_necessary_condition(&tight, &merged, 9), None);
        assert!(counting_necessary_condition(&merged, &tight, 9).is_some());
    }

    #[test]
    fn reflexive() {
        let a = sd("{<v : x*> <x : PCDATA>}");
        assert!(sdtd_tighter_than_bounded(&a, &a, 6, 10_000).holds());
    }

    #[test]
    fn inconclusive_when_capped() {
        let a = sd("{<v : (x | y)*> <x : PCDATA> <y : EMPTY>}");
        let r = sdtd_tighter_than_bounded(&a, &a, 12, 5);
        assert!(matches!(r, SBoundedTightness::Inconclusive));
    }

    #[test]
    fn image_dtd_covers_the_sdtd() {
        let s = sd("{<v : p^1, p*> <p : t?> <p^1 : t> <t : EMPTY>}");
        let image = sdtd_image_dtd(&s).unwrap();
        // every s-DTD document satisfies the image DTD
        for doc in enumerate_documents(&image, 6, 10_000) {
            // (trivially true by construction; spot-check acceptance works)
            let _ = crate::sdtd::sdtd_satisfies(&s, &doc);
        }
        // p's image type is the union t? | t ≡ t?
        let p = image.get(mix_relang::name("p")).unwrap().regex().unwrap();
        assert!(mix_relang::equivalent(
            p,
            &mix_relang::parse_regex("t?").unwrap()
        ));
    }

    #[test]
    fn mixed_kind_specializations_are_inexpressible() {
        let s = sd("{<v : x> <x : PCDATA> <x^1 : y?> <y : EMPTY>}");
        assert!(sdtd_image_dtd(&s).is_none());
        assert!(matches!(
            sdtd_tighter_than_bounded(&s, &s, 5, 1000),
            SBoundedTightness::Inconclusive
        ));
    }
}
