//! The failure modes of the wire.
//!
//! [`NetError`] separates the three things that can go wrong on a
//! mediator↔wrapper link — the transport failed ([`NetError::Io`]), the
//! peer spoke the protocol wrong ([`NetError::Protocol`]), or the peer
//! spoke the protocol *right* and reported a fault of its own
//! ([`NetError::Remote`]). `mix-mediator` folds these onto its
//! `SourceError` fault model (DESIGN.md §9) so retries, circuit breakers,
//! and degradation reports work identically over sockets and in-process
//! wrappers.

use std::fmt;
use std::io;

/// Why a wire operation failed.
#[derive(Debug)]
pub enum NetError {
    /// The transport failed: refused connection, timeout, reset,
    /// mid-frame disconnect. The `io::ErrorKind` carries the diagnosis.
    Io(io::Error),
    /// The peer violated the protocol: wrong version byte, unknown
    /// message type, oversized frame, payload that is not UTF-8, or a
    /// response type the request cannot be answered with.
    Protocol(String),
    /// The peer answered with an `Err` message: a fault that happened on
    /// the *remote* side, forwarded verbatim. `kind` uses the stable
    /// labels of the mediator's `SourceError::kind()` ("transient",
    /// "timeout", "unavailable", …).
    Remote {
        /// Stable machine-readable fault label.
        kind: String,
        /// Human-readable detail.
        msg: String,
    },
}

impl NetError {
    /// Shorthand for a protocol violation.
    pub fn protocol(msg: impl Into<String>) -> NetError {
        NetError::Protocol(msg.into())
    }

    /// Whether this is a transport timeout (`TimedOut` / `WouldBlock` —
    /// platforms disagree on which one a socket read deadline raises).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            NetError::Io(e) if matches!(
                e.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            )
        )
    }

    /// Whether this is a refused / unreachable connection.
    pub fn is_refused(&self) -> bool {
        matches!(
            self,
            NetError::Io(e) if matches!(
                e.kind(),
                io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::AddrNotAvailable
                    | io::ErrorKind::NotFound
            )
        )
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Remote { kind, msg } => write!(f, "remote fault [{kind}]: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_and_refusal_classification() {
        let t = NetError::Io(io::Error::new(io::ErrorKind::TimedOut, "deadline"));
        assert!(t.is_timeout());
        assert!(!t.is_refused());
        let r = NetError::Io(io::Error::new(io::ErrorKind::ConnectionRefused, "refused"));
        assert!(r.is_refused());
        assert!(!r.is_timeout());
        assert!(!NetError::protocol("bad byte").is_timeout());
    }
}
