//! The MIX mediator: view registration with DTD inference, and query
//! answering with the DTD-based simplifier and view–query composition.

use crate::compose::compose;
use crate::source::Wrapper;
use mix_infer::{
    classify_query, infer_union_view_dtd, infer_view_dtd, InferredUnionView, InferredView,
    Verdict,
};
use mix_relang::symbol::Name;
use mix_xmas::{evaluate, normalize, NormalizeError, Query};
use mix_xml::{Content, Document, ElemId, Element};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A registered view: its definition, its source, and its inferred DTDs.
pub struct View {
    /// The source the view is defined over.
    pub source: String,
    /// Everything the inference pipeline produced (normalized query,
    /// s-DTD, merged DTD, verdict).
    pub inferred: InferredView,
}

/// A registered *union* view over several sources (the intro's "union the
/// structures exported by 100 sites" scenario): one pick-element query per
/// source, members concatenated in registration order.
pub struct UnionView {
    /// The sources, in union order.
    pub sources: Vec<String>,
    /// The union inference result (s-DTD, merged DTD, verdict).
    pub inferred: InferredUnionView,
}

enum AnyView {
    Single(View),
    Union(UnionView),
}

impl AnyView {
    fn dtd(&self) -> &mix_dtd::Dtd {
        match self {
            AnyView::Single(v) => &v.inferred.dtd,
            AnyView::Union(v) => &v.inferred.dtd,
        }
    }

    /// Is the plain `dtd()` a *sound* description of the view? False only
    /// for union views mixing PCDATA and element content for one name —
    /// reasoning on the plain DTD is then disabled.
    fn plain_dtd_is_sound(&self) -> bool {
        match self {
            AnyView::Single(_) => true,
            AnyView::Union(v) => v.inferred.kind_conflicts.is_empty(),
        }
    }
}

/// Errors surfaced by the mediator API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MediatorError {
    /// `add_source`/`register_view` referenced an unknown source.
    UnknownSource(String),
    /// A query's root does not name a registered view.
    UnknownView(Name),
    /// A view with that name already exists.
    DuplicateView(Name),
    /// The view/query failed normalization.
    Normalize(NormalizeError),
}

impl fmt::Display for MediatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediatorError::UnknownSource(s) => write!(f, "unknown source '{s}'"),
            MediatorError::UnknownView(n) => write!(f, "no view named '{n}'"),
            MediatorError::DuplicateView(n) => write!(f, "view '{n}' already registered"),
            MediatorError::Normalize(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MediatorError {}

impl From<NormalizeError> for MediatorError {
    fn from(e: NormalizeError) -> Self {
        MediatorError::Normalize(e)
    }
}

/// How a query was answered — surfaced so the ablation benches (X8/X9)
/// and the examples can show the effect of each optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerPath {
    /// The DTD-based simplifier proved the query unsatisfiable against the
    /// view DTD; no source was contacted.
    PrunedUnsatisfiable,
    /// The query was composed with the view definition and shipped to the
    /// source as one query (no view materialization).
    Composed,
    /// The view was materialized and the query evaluated over it.
    Materialized,
}

/// An answered query.
pub struct Answer {
    /// The result document.
    pub document: Document,
    /// Which execution path produced it.
    pub path: AnswerPath,
}

/// Knobs for the query processor (used by the ablation experiments).
#[derive(Debug, Clone, Copy)]
pub struct ProcessorConfig {
    /// Use the view DTD to prune unsatisfiable queries (Section 1: "the
    /// query simplifier may employ the source DTDs to create a more
    /// efficient plan").
    pub use_simplifier: bool,
    /// Compose queries with view definitions instead of materializing.
    pub use_composition: bool,
    /// Rewrite queries before evaluation: drop provably-valid conditions
    /// and narrow dead disjuncts (see [`crate::simplifier`]).
    pub use_condition_pruning: bool,
}

impl Default for ProcessorConfig {
    fn default() -> Self {
        ProcessorConfig {
            use_simplifier: true,
            use_composition: true,
            use_condition_pruning: true,
        }
    }
}

/// The MIX mediator.
pub struct Mediator {
    sources: HashMap<String, Arc<dyn Wrapper>>,
    views: HashMap<Name, AnyView>,
    /// Registration order, for deterministic listings.
    view_order: Vec<Name>,
    config: ProcessorConfig,
}

impl Default for Mediator {
    fn default() -> Self {
        Mediator::new()
    }
}

impl Mediator {
    /// An empty mediator with the default processor configuration.
    pub fn new() -> Mediator {
        Mediator::with_config(ProcessorConfig::default())
    }

    /// An empty mediator with an explicit processor configuration.
    pub fn with_config(config: ProcessorConfig) -> Mediator {
        Mediator {
            sources: HashMap::new(),
            views: HashMap::new(),
            view_order: Vec::new(),
            config,
        }
    }

    /// Registers a wrapper under a name.
    pub fn add_source(&mut self, name: &str, wrapper: Arc<dyn Wrapper>) {
        self.sources.insert(name.to_owned(), wrapper);
    }

    /// Defines a view over a source: runs the View DTD Inference module
    /// and stores the result. Returns the inferred view for inspection.
    pub fn register_view(&mut self, source: &str, q: &Query) -> Result<&View, MediatorError> {
        let wrapper = self
            .sources
            .get(source)
            .ok_or_else(|| MediatorError::UnknownSource(source.to_owned()))?;
        if self.views.contains_key(&q.view_name) {
            return Err(MediatorError::DuplicateView(q.view_name));
        }
        let inferred = infer_view_dtd(q, wrapper.dtd())?;
        self.view_order.push(q.view_name);
        self.views.insert(
            q.view_name,
            AnyView::Single(View {
                source: source.to_owned(),
                inferred,
            }),
        );
        match &self.views[&q.view_name] {
            AnyView::Single(v) => Ok(v),
            AnyView::Union(_) => unreachable!("just inserted a single view"),
        }
    }

    /// Defines a union view: one query per source, members concatenated in
    /// the given order. The View DTD Inference module runs per part and
    /// the results are combined (identical-schema sites fold together,
    /// heterogeneous definitions stay apart as specializations).
    pub fn register_union_view(
        &mut self,
        view_name: &str,
        parts: &[(&str, Query)],
    ) -> Result<&UnionView, MediatorError> {
        let view_name = Name::intern(view_name);
        if self.views.contains_key(&view_name) {
            return Err(MediatorError::DuplicateView(view_name));
        }
        let mut pairs = Vec::new();
        for (source, q) in parts {
            let wrapper = self
                .sources
                .get(*source)
                .ok_or_else(|| MediatorError::UnknownSource((*source).to_owned()))?;
            pairs.push((q, wrapper.dtd()));
        }
        let refs: Vec<(&Query, &mix_dtd::Dtd)> =
            pairs.iter().map(|(q, d)| (*q, *d)).collect();
        let inferred = infer_union_view_dtd(view_name, &refs)?;
        self.view_order.push(view_name);
        self.views.insert(
            view_name,
            AnyView::Union(UnionView {
                sources: parts.iter().map(|(s, _)| (*s).to_owned()).collect(),
                inferred,
            }),
        );
        match &self.views[&view_name] {
            AnyView::Union(v) => Ok(v),
            AnyView::Single(_) => unreachable!("just inserted a union view"),
        }
    }

    /// The registered single-source view, if any.
    pub fn view(&self, name: Name) -> Option<&View> {
        match self.views.get(&name) {
            Some(AnyView::Single(v)) => Some(v),
            _ => None,
        }
    }

    /// The registered union view, if any.
    pub fn union_view(&self, name: Name) -> Option<&UnionView> {
        match self.views.get(&name) {
            Some(AnyView::Union(v)) => Some(v),
            _ => None,
        }
    }

    /// The inferred plain DTD of any registered view.
    pub fn view_dtd(&self, name: Name) -> Option<&mix_dtd::Dtd> {
        self.views.get(&name).map(AnyView::dtd)
    }

    /// Registered view names in registration order.
    pub fn view_names(&self) -> &[Name] {
        &self.view_order
    }

    /// Replaces a source's wrapper — the paper's "dynamic and unknown
    /// information" scenario: a site changed its schema. Every view over
    /// the source is re-inferred; the names of views whose *view DTD*
    /// changed (as a document set) are returned, so higher layers (or
    /// stacked mediators) know to re-infer in turn.
    pub fn replace_source(
        &mut self,
        source: &str,
        wrapper: Arc<dyn Wrapper>,
    ) -> Result<Vec<Name>, MediatorError> {
        if !self.sources.contains_key(source) {
            return Err(MediatorError::UnknownSource(source.to_owned()));
        }
        self.sources.insert(source.to_owned(), wrapper);
        let mut changed = Vec::new();
        let names: Vec<Name> = self.view_order.clone();
        for vname in names {
            let uses_source = match &self.views[&vname] {
                AnyView::Single(v) => v.source == source,
                AnyView::Union(v) => v.sources.iter().any(|s| s == source),
            };
            if !uses_source {
                continue;
            }
            let new_view = match &self.views[&vname] {
                AnyView::Single(v) => {
                    let w = &self.sources[&v.source];
                    let inferred = infer_view_dtd(&v.inferred.query, w.dtd())?;
                    AnyView::Single(View {
                        source: v.source.clone(),
                        inferred,
                    })
                }
                AnyView::Union(v) => {
                    let pairs: Vec<(&Query, &mix_dtd::Dtd)> = v
                        .sources
                        .iter()
                        .zip(&v.inferred.queries)
                        .map(|(s, q)| (q, self.sources[s].dtd()))
                        .collect();
                    let inferred = infer_union_view_dtd(vname, &pairs)?;
                    AnyView::Union(UnionView {
                        sources: v.sources.clone(),
                        inferred,
                    })
                }
            };
            let old = &self.views[&vname];
            let dtd_changed = !(old.plain_dtd_is_sound()
                && new_view.plain_dtd_is_sound()
                && mix_dtd::same_documents(old.dtd(), new_view.dtd()));
            if dtd_changed {
                changed.push(vname);
            }
            self.views.insert(vname, new_view);
        }
        Ok(changed)
    }

    /// Materializes a view by running its definition at the source(s).
    pub fn materialize(&self, name: Name) -> Result<Document, MediatorError> {
        match self
            .views
            .get(&name)
            .ok_or(MediatorError::UnknownView(name))?
        {
            AnyView::Single(view) => {
                let wrapper = self
                    .sources
                    .get(&view.source)
                    .ok_or_else(|| MediatorError::UnknownSource(view.source.clone()))?;
                Ok(wrapper.answer(&view.inferred.query))
            }
            AnyView::Union(view) => {
                // resolve every wrapper up front so errors surface before
                // any work is spawned
                let mut parts: Vec<(Arc<dyn Wrapper>, &Query)> = Vec::new();
                for (source, q) in view.sources.iter().zip(&view.inferred.queries) {
                    let wrapper = self
                        .sources
                        .get(source)
                        .ok_or_else(|| MediatorError::UnknownSource(source.clone()))?;
                    parts.push((Arc::clone(wrapper), q));
                }
                // query the sources in parallel (wrappers are Send + Sync);
                // member order stays the registration order
                let answers: Vec<Document> = if parts.len() > 1 {
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = parts
                            .iter()
                            .map(|(w, q)| scope.spawn(move || w.answer(q)))
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("source query panicked"))
                            .collect()
                    })
                } else {
                    parts.iter().map(|(w, q)| w.answer(q)).collect()
                };
                let mut members = Vec::new();
                for part in answers {
                    if let Content::Elements(kids) = part.root.content {
                        members.extend(kids);
                    }
                }
                Ok(Document::new(Element {
                    name,
                    id: ElemId::fresh(),
                    content: Content::Elements(members),
                }))
            }
        }
    }

    /// Answers a user query whose condition is rooted at a view name,
    /// using (per configuration) the DTD-based simplifier and view–query
    /// composition.
    pub fn query(&self, q: &Query) -> Result<Answer, MediatorError> {
        // find the view the query addresses
        let view_name = q
            .root
            .test
            .names()
            .iter()
            .copied()
            .find(|n| self.views.contains_key(n))
            .ok_or_else(|| {
                MediatorError::UnknownView(
                    q.root.test.names().first().copied().unwrap_or(q.view_name),
                )
            })?;
        let any = &self.views[&view_name];
        let view_dtd = any.dtd();
        let dtd_sound = any.plain_dtd_is_sound();
        // 1. DTD-based simplification: prune certainly-empty queries.
        if self.config.use_simplifier && dtd_sound {
            let nq = normalize(q, view_dtd)?;
            if classify_query(&nq, view_dtd) == Verdict::Unsatisfiable {
                return Ok(Answer {
                    document: empty_answer(q.view_name),
                    path: AnswerPath::PrunedUnsatisfiable,
                });
            }
        }
        // 2. composition with the view definition (single-source views).
        if self.config.use_composition {
            if let AnyView::Single(view) = any {
                if let Some(composed) = compose(&view.inferred.query, q) {
                    let wrapper = self
                        .sources
                        .get(&view.source)
                        .ok_or_else(|| MediatorError::UnknownSource(view.source.clone()))?;
                    return Ok(Answer {
                        document: wrapper.answer(&composed),
                        path: AnswerPath::Composed,
                    });
                }
            }
        }
        // 3. fall back to materialize-then-evaluate (with DTD-guided
        //    condition pruning when configured).
        let materialized = self.materialize(view_name)?;
        let mut nq = normalize(q, view_dtd)?;
        if self.config.use_condition_pruning && dtd_sound {
            let (pruned, _) = crate::simplifier::simplify_query(&nq, view_dtd);
            nq = pruned;
        }
        Ok(Answer {
            document: evaluate(&nq, &materialized),
            path: AnswerPath::Materialized,
        })
    }
}

fn empty_answer(name: Name) -> Document {
    Document::new(Element {
        name,
        id: ElemId::fresh(),
        content: Content::Elements(vec![]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::XmlSource;
    use mix_dtd::paper::d1_department;
    use mix_relang::symbol::name;
    use mix_xmas::parse_query;
    use mix_xml::parse_document;

    fn dept_doc() -> Document {
        parse_document(
            "<department><name>CS</name>\
               <professor><firstName>Y</firstName><lastName>P</lastName>\
                 <publication><title>a</title><author>x</author><journal/></publication>\
                 <publication><title>b</title><author>x</author><journal/></publication>\
                 <teaches/></professor>\
               <professor><firstName>V</firstName><lastName>W</lastName>\
                 <publication><title>c</title><author>x</author><conference/></publication>\
                 <teaches/></professor>\
               <gradStudent><firstName>P</firstName><lastName>V</lastName>\
                 <publication><title>d</title><author>x</author><journal/></publication>\
               </gradStudent></department>",
        )
        .unwrap()
    }

    fn mediator() -> Mediator {
        let mut m = Mediator::new();
        let src = XmlSource::new(d1_department(), dept_doc()).unwrap();
        m.add_source("cs-dept", Arc::new(src));
        let v = parse_query(
            "withJournals = SELECT P WHERE <department> <name>CS</name> \
               P:<professor | gradStudent> \
                 <publication><journal/></publication> \
               </> </>",
        )
        .unwrap();
        m.register_view("cs-dept", &v).unwrap();
        m
    }

    #[test]
    fn register_infers_view_dtd() {
        let m = mediator();
        let v = m.view(name("withJournals")).unwrap();
        assert_eq!(v.inferred.verdict, Verdict::Satisfiable);
        assert!(v.inferred.dtd.types.contains(name("withJournals")));
    }

    #[test]
    fn duplicate_view_rejected() {
        let mut m = mediator();
        let v = parse_query("withJournals = SELECT X WHERE <department> X:<professor/> </>")
            .unwrap();
        assert!(matches!(
            m.register_view("cs-dept", &v),
            Err(MediatorError::DuplicateView(_))
        ));
    }

    #[test]
    fn materialize_runs_the_view() {
        let m = mediator();
        let doc = m.materialize(name("withJournals")).unwrap();
        // prof Y (journal), gradStudent P (journal); prof V has only a
        // conference publication
        assert_eq!(doc.root.children().len(), 2);
    }

    #[test]
    fn query_composed_path() {
        let m = mediator();
        // professors in the view (drops the gradStudent)
        let q = parse_query(
            "ans = SELECT X WHERE <withJournals> X:<professor/> </withJournals>",
        )
        .unwrap();
        let a = m.query(&q).unwrap();
        assert_eq!(a.path, AnswerPath::Composed);
        assert_eq!(a.document.root.children().len(), 1);
        assert_eq!(
            a.document.root.children()[0].children()[0].pcdata(),
            Some("Y")
        );
    }

    #[test]
    fn query_pruned_by_simplifier() {
        let m = mediator();
        // view DTD knows a withJournals member has no 'course' children
        let q = parse_query(
            "ans = SELECT C WHERE <withJournals> <professor> C:<course/> </> </withJournals>",
        )
        .unwrap();
        let a = m.query(&q).unwrap();
        assert_eq!(a.path, AnswerPath::PrunedUnsatisfiable);
        assert_eq!(a.document.root.children().len(), 0);
    }

    #[test]
    fn composed_equals_materialized() {
        let with = mediator();
        let without = {
            let mut m = Mediator::with_config(ProcessorConfig {
                use_simplifier: false,
                use_composition: false,
                use_condition_pruning: false,
            });
            let src = XmlSource::new(d1_department(), dept_doc()).unwrap();
            m.add_source("cs-dept", Arc::new(src));
            let v = parse_query(
                "withJournals = SELECT P WHERE <department> <name>CS</name> \
                   P:<professor | gradStudent> \
                     <publication><journal/></publication> \
                   </> </>",
            )
            .unwrap();
            m.register_view("cs-dept", &v).unwrap();
            m
        };
        for src in [
            "ans = SELECT P WHERE <withJournals> P:<professor/> </withJournals>",
            "ans = SELECT T WHERE <withJournals> <professor | gradStudent> \
               <publication> T:<title/> </publication> </> </withJournals>",
            "ans = SELECT P WHERE <withJournals> P:<gradStudent> <publication/> </> </>",
        ] {
            let q = parse_query(src).unwrap();
            let a = with.query(&q).unwrap();
            let b = without.query(&q).unwrap();
            assert_eq!(b.path, AnswerPath::Materialized);
            // compare structures (IDs are fresh on both paths)
            assert!(
                mix_xml::same_structural_class(&a.document.root, &b.document.root),
                "composed vs materialized mismatch for {src}:\n{:?}\nvs\n{:?}",
                a.document,
                b.document
            );
        }
    }

    #[test]
    fn unknown_view_error() {
        let m = mediator();
        let q = parse_query("ans = SELECT X WHERE <nope> X:<a/> </nope>").unwrap();
        assert!(matches!(m.query(&q), Err(MediatorError::UnknownView(_))));
    }

    #[test]
    fn unknown_source_error() {
        let mut m = Mediator::new();
        let v = parse_query("v = SELECT X WHERE X:<a/>").unwrap();
        assert!(matches!(
            m.register_view("ghost", &v),
            Err(MediatorError::UnknownSource(_))
        ));
    }
}
