//! X22 — restart-to-first-warm-answer: how long a restarted serving
//! process takes to answer its working set, cold versus warm-started
//! from a persisted `mix-store` generation.
//!
//! Custom harness (not Criterion): the acceptance criteria are a ≥10×
//! cold/warm ratio with byte-identical inference results, plus a
//! corrupted-store pass that must fall back cold (skips counted, still
//! byte-identical). Machine-readable results land in `BENCH_PR9.json`
//! at the workspace root.

use mix_dtd::Dtd;
use mix_infer::{InferenceCache, InferredView, WarmStore};
use mix_obs::Registry;
use mix_store::Store;
use mix_xmas::Query;
use std::sync::Arc;
use std::time::Instant;

/// The restart working set: the paper's D1 queries plus deep/wide chain
/// views whose cold inference is dominated by automata and memo work —
/// the cost a warm start is supposed to skip.
fn workload() -> Vec<(Query, Dtd)> {
    let mut w = vec![
        (mix_bench::q2(), mix_bench::d1()),
        (mix_bench::q3(), mix_bench::d1()),
    ];
    for (depth, width) in [
        (6, 12),
        (8, 16),
        (10, 24),
        (12, 32),
        (10, 48),
        (8, 64),
        (6, 96),
        (14, 48),
        (5, 128),
    ] {
        let (dtd, q) = mix_bench::wide_chain_workload(depth, width);
        w.push((q, dtd));
    }
    let (dtd, q) = mix_bench::chain_workload(24);
    w.push((q, dtd));
    w
}

fn render(iv: &InferredView) -> String {
    format!(
        "{}\n{}\n{:?}\n{}",
        iv.sdtd, iv.dtd, iv.verdict, iv.list_type
    )
}

/// Answers the whole working set through `cache`, returning the elapsed
/// time and the canonical renders.
fn first_answers(cache: &InferenceCache, work: &[(Query, Dtd)]) -> (f64, Vec<String>) {
    let t = Instant::now();
    let renders = work
        .iter()
        .map(|(q, dtd)| render(&cache.infer(q, dtd).expect("X22 inference succeeds")))
        .collect();
    (t.elapsed().as_secs_f64(), renders)
}

fn main() {
    let work = workload();
    let dir = std::env::temp_dir().join(format!("mix_x22_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // -- cold process: empty store, every answer is a full inference ------
    mix_relang::clear_memo();
    let cold_registry = Registry::new();
    let store = Arc::new(Store::open(&dir, &cold_registry).expect("open X22 store"));
    let cache = InferenceCache::with_store(cold_registry, Arc::clone(&store) as Arc<dyn WarmStore>);
    let (cold_s, reference) = first_answers(&cache, &work);
    assert_eq!(
        cache.stats().misses,
        work.len() as u64,
        "cold run must miss"
    );
    // clean shutdown: one compacted generation (pool + memo + views)
    assert!(cache.compact_store());
    let bytes = store.stats().bytes;
    println!(
        "X22: cold first answers over {} views in {:.1} ms; compacted {} store bytes",
        work.len(),
        cold_s * 1e3,
        bytes,
    );

    // -- warm restart: load the generation, then answer the same set ------
    mix_relang::clear_memo();
    let warm_registry = Registry::new();
    let t = Instant::now();
    let store = Arc::new(Store::open(&dir, &warm_registry).expect("reopen X22 store"));
    let cache = InferenceCache::with_store(warm_registry, Arc::clone(&store) as Arc<dyn WarmStore>);
    let (answer_s, warm_renders) = first_answers(&cache, &work);
    let warm_s = t.elapsed().as_secs_f64();
    let stats = store.stats();
    assert_eq!(warm_renders, reference, "a warm restart changed an answer");
    assert_eq!(
        cache.stats().misses,
        0,
        "every warm answer must come from the store, not re-inference"
    );
    assert_eq!(
        stats.load_skipped, 0,
        "a clean store must load without skips"
    );
    let speedup = cold_s / warm_s.max(1e-9);
    println!(
        "X22: warm restart answered in {:.2} ms (load+lookup; {:.2} ms lookups): {:.0}x",
        warm_s * 1e3,
        answer_s * 1e3,
        speedup,
    );
    assert!(
        speedup >= 10.0,
        "warm restart must be at least 10x the cold start (got {speedup:.1}x)"
    );

    // -- corrupted store: bit flips must degrade to cold, never to wrong --
    let gen = std::fs::read_dir(&dir)
        .expect("store dir")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "snap"))
        .expect("a compacted generation exists");
    let pristine = std::fs::read(&gen).expect("read generation");
    let mut corrupt_skipped = 0u64;
    // flip a byte at several depths of the file: header, pool record,
    // and the view records near the tail
    for denom in [2, 3, 5, 8] {
        let mut bad = pristine.clone();
        let at = bad.len() / denom;
        bad[at] ^= 0x20;
        std::fs::write(&gen, &bad).expect("write corrupted generation");
        mix_relang::clear_memo();
        let registry = Registry::new();
        let store = Arc::new(Store::open(&dir, &registry).expect("open corrupted store"));
        let cache = InferenceCache::with_store(registry, Arc::clone(&store) as Arc<dyn WarmStore>);
        let (_, renders) = first_answers(&cache, &work);
        assert_eq!(renders, reference, "a corrupted store changed an answer");
        corrupt_skipped += store.stats().load_skipped;
    }
    std::fs::write(&gen, &pristine).expect("restore generation");
    assert!(
        corrupt_skipped > 0,
        "corrupted generations must count skipped records"
    );
    println!("X22: 4 corrupted-store restarts: {corrupt_skipped} records skipped, answers byte-identical");

    let _ = std::fs::remove_dir_all(&dir);
    let json = format!(
        "{{\n  \"experiment\": \"X22\",\n  \
         \"generated_by\": \"cargo bench -p mix-bench --bench store\",\n  \
         \"views\": {},\n  \"store_bytes\": {},\n  \
         \"cold_first_answers_ms\": {:.3},\n  \
         \"warm_restart_ms\": {:.3},\n  \"warm_lookup_ms\": {:.3},\n  \
         \"warm_speedup\": {:.1},\n  \
         \"corrupted_runs\": {{ \"restarts\": 4, \"records_skipped\": {}, \
         \"byte_identical_answers\": true }},\n  \
         \"byte_identical_answers\": true\n}}",
        work.len(),
        bytes,
        cold_s * 1e3,
        warm_s * 1e3,
        answer_s * 1e3,
        speedup,
        corrupt_skipped,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR9.json");
    std::fs::write(out, json + "\n").expect("write BENCH_PR9.json");
    println!("wrote {out}");
}
