//! Length-prefixed framing.
//!
//! Every message on the wire is one frame. Version 2 (this build):
//!
//! ```text
//! +---------+---------+-------------------+-------------------+----------------+
//! | version | type    | frame id          | payload length    | payload        |
//! | 1 byte  | 1 byte  | 4 bytes, BE u32   | 4 bytes, BE u32   | `length` bytes |
//! +---------+---------+-------------------+-------------------+----------------+
//! ```
//!
//! The `frame id` is what makes request pipelining possible: a client may
//! put many `Query` frames in flight on one connection and match each
//! `Answer`/`Err`/`Throttled` reply back to its request by id, regardless
//! of the order the server completes them in. Id `0` is reserved for
//! *connection-scope* frames — faults that concern the whole session
//! (connection-cap refusals, protocol desync reports) rather than any one
//! request — so request ids always start at 1.
//!
//! Version 1 (PR 3 through PR 6) had no frame id — a 6-byte header of
//! `[version][type][len]` — and therefore required strict one-in one-out
//! request/reply alternation. The version byte is checked on *every*
//! frame (it costs nothing and a mid-stream desync then fails loudly
//! instead of misparsing), the length is capped at [`MAX_PAYLOAD`] so a
//! corrupt or hostile peer cannot make the reader allocate gigabytes, and
//! payloads are UTF-8 (enforced one layer up, in [`crate::msg`]).
//!
//! Version-bump policy: the byte is bumped only for changes that alter
//! the *shape* of a frame (v1→v2 inserted the frame id). Adding a message
//! type is additive — peers that predate it answer with a `protocol`
//! fault (unknown type) rather than desyncing. When versions disagree,
//! each side detects the foreign version byte on the first frame it
//! reads; a v2 server answers a v1 peer with a v1-encoded
//! `Err { kind: "incompatible" }` (see [`write_frame_v1`]) so old clients
//! get a clean, breaker-neutral `Incompatible` fault instead of garbage.

use crate::error::NetError;
use std::io::{Read, Write};

/// Protocol version spoken by this build. Version 2 added the 4-byte
/// frame id to the header (request pipelining); see the module docs for
/// the bump policy.
pub const FRAME_VERSION: u8 = 2;

/// The previous wire version (no frame id, 6-byte header). Kept so a v2
/// server can *reply* to a v1 peer in the peer's own framing when
/// refusing the connection as incompatible.
pub const LEGACY_FRAME_VERSION: u8 = 1;

/// Size of the v2 frame header in bytes.
pub const HEADER_LEN: usize = 10;

/// Size of the legacy v1 frame header in bytes.
pub const LEGACY_HEADER_LEN: usize = 6;

/// Frame id reserved for connection-scope frames (refusals, protocol
/// faults not tied to any single request). Request ids start at 1.
pub const CONNECTION_FRAME_ID: u32 = 0;

/// Hard cap on a single frame's payload (16 MiB) — far above any DTD or
/// document this system ships, low enough to bound a reader's allocation.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// The message type byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgType {
    /// Handshake, both directions. Empty payload.
    Hello = 0,
    /// Request (client → server, empty payload) and response
    /// (server → client, payload = the DTD in compact notation).
    ExportDtd = 1,
    /// Client → server. Payload = an XMAS query in the paper's syntax;
    /// an *empty* payload requests the full exported document (the
    /// wrapper `fetch` operation).
    Query = 2,
    /// Server → client. Payload = the answer document as XML text.
    Answer = 3,
    /// Server → client. Payload = `kind '\n' detail`: a remote fault
    /// using the mediator's stable `SourceError::kind()` labels.
    Err = 4,
    /// Request (client → server, empty payload) and response
    /// (server → client, payload = a `mix-obs/1` JSON snapshot of the
    /// peer's observability registry). Services that export no
    /// statistics answer with an `Err { kind: "unsupported" }`.
    Stats = 5,
    /// Server → client. Payload = the suggested minimum backoff in
    /// decimal milliseconds: the per-client admission token bucket shed
    /// this request. Backpressure, not a fault — the request was never
    /// dispatched. (Additive: no version bump was needed.)
    Throttled = 6,
}

impl MsgType {
    pub(crate) fn from_byte(b: u8) -> Option<MsgType> {
        match b {
            0 => Some(MsgType::Hello),
            1 => Some(MsgType::ExportDtd),
            2 => Some(MsgType::Query),
            3 => Some(MsgType::Answer),
            4 => Some(MsgType::Err),
            5 => Some(MsgType::Stats),
            6 => Some(MsgType::Throttled),
            _ => None,
        }
    }
}

/// What [`decode_header`] learned from 10 buffered header bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The message type byte, already validated.
    pub ty: MsgType,
    /// The frame id ([`CONNECTION_FRAME_ID`] for connection-scope).
    pub frame_id: u32,
    /// Announced payload length, already checked against [`MAX_PAYLOAD`].
    pub len: u32,
}

/// Encodes the v2 header for one frame into a fixed array. The reactor
/// uses this to build frames directly into a ring buffer without an
/// intermediate `Vec`.
pub fn encode_header(ty: MsgType, frame_id: u32, len: u32) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[0] = FRAME_VERSION;
    header[1] = ty as u8;
    header[2..6].copy_from_slice(&frame_id.to_be_bytes());
    header[6..10].copy_from_slice(&len.to_be_bytes());
    header
}

/// Decodes and validates a buffered v2 header. The caller (reactor or
/// blocking reader) has already read exactly [`HEADER_LEN`] bytes.
pub fn decode_header(header: &[u8; HEADER_LEN]) -> Result<FrameHeader, NetError> {
    if header[0] != FRAME_VERSION {
        // distinct from Protocol: a version mismatch is a *deployment*
        // incompatibility, and the resilience layer must not treat it as
        // a retryable source fault
        return Err(NetError::VersionMismatch {
            theirs: header[0],
            ours: FRAME_VERSION,
        });
    }
    let ty = MsgType::from_byte(header[1])
        .ok_or_else(|| NetError::protocol(format!("unknown message type {}", header[1])))?;
    let frame_id = u32::from_be_bytes([header[2], header[3], header[4], header[5]]);
    let len = u32::from_be_bytes([header[6], header[7], header[8], header[9]]);
    if len > MAX_PAYLOAD {
        return Err(NetError::protocol(format!(
            "frame announces a {len} byte payload (cap is {MAX_PAYLOAD})"
        )));
    }
    Ok(FrameHeader { ty, frame_id, len })
}

/// Writes one frame and flushes it.
pub fn write_frame(
    w: &mut impl Write,
    ty: MsgType,
    frame_id: u32,
    payload: &[u8],
) -> Result<(), NetError> {
    write_frame_buffered(w, ty, frame_id, payload)?;
    w.flush()?;
    Ok(())
}

/// Writes one frame into `w` **without flushing** — the pipelined batch
/// path stacks several frames into one buffered writer and flushes once,
/// so a window of requests costs one syscall instead of one each. The
/// caller owns the flush; an unflushed frame is invisible to the peer.
pub fn write_frame_buffered(
    w: &mut impl Write,
    ty: MsgType,
    frame_id: u32,
    payload: &[u8],
) -> Result<(), NetError> {
    if payload.len() as u64 > MAX_PAYLOAD as u64 {
        return Err(NetError::protocol(format!(
            "refusing to send a {} byte payload (cap is {MAX_PAYLOAD})",
            payload.len()
        )));
    }
    w.write_all(&encode_header(ty, frame_id, payload.len() as u32))?;
    w.write_all(payload)?;
    Ok(())
}

/// Writes one frame in the *legacy v1* encoding (6-byte header, no frame
/// id). Only used to tell a v1 peer, in its own framing, that this build
/// is incompatible — never for regular traffic.
pub fn write_frame_v1(w: &mut impl Write, ty: MsgType, payload: &[u8]) -> Result<(), NetError> {
    if payload.len() as u64 > MAX_PAYLOAD as u64 {
        return Err(NetError::protocol(format!(
            "refusing to send a {} byte payload (cap is {MAX_PAYLOAD})",
            payload.len()
        )));
    }
    let mut header = [0u8; LEGACY_HEADER_LEN];
    header[0] = LEGACY_FRAME_VERSION;
    header[1] = ty as u8;
    header[2..6].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. Transport errors (including clean EOF before a full
/// header, which surfaces as `UnexpectedEof`) come back as
/// [`NetError::Io`]; anything structurally wrong with the bytes as
/// [`NetError::Protocol`]; a foreign version byte as
/// [`NetError::VersionMismatch`].
pub fn read_frame(r: &mut impl Read) -> Result<(MsgType, u32, Vec<u8>), NetError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let h = decode_header(&header)?;
    let mut payload = vec![0u8; h.len as usize];
    r.read_exact(&mut payload)?;
    Ok((h.ty, h.frame_id, payload))
}

/// Reads the *first* frame of a connection, sniffing the version byte
/// before committing to a header size. A v1 peer's frames are only 6
/// bytes — blindly reading a v2 header would misreport the mismatch as a
/// truncated transport error (or worse, block on bytes that never come),
/// so the foreign version byte is diagnosed the moment it arrives.
pub fn read_first_frame(r: &mut impl Read) -> Result<(MsgType, u32, Vec<u8>), NetError> {
    let mut first = [0u8; 1];
    r.read_exact(&mut first)?;
    if first[0] != FRAME_VERSION {
        return Err(NetError::VersionMismatch {
            theirs: first[0],
            ours: FRAME_VERSION,
        });
    }
    let mut header = [0u8; HEADER_LEN];
    header[0] = first[0];
    r.read_exact(&mut header[1..])?;
    let h = decode_header(&header)?;
    let mut payload = vec![0u8; h.len as usize];
    r.read_exact(&mut payload)?;
    Ok((h.ty, h.frame_id, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MsgType::Query, 7, b"q = SELECT X WHERE X:<a/>").unwrap();
        write_frame(&mut buf, MsgType::Hello, 1, b"").unwrap();
        let mut r = Cursor::new(buf);
        let (ty, id, p) = read_frame(&mut r).unwrap();
        assert_eq!(ty, MsgType::Query);
        assert_eq!(id, 7);
        assert_eq!(p, b"q = SELECT X WHERE X:<a/>");
        let (ty, id, p) = read_frame(&mut r).unwrap();
        assert_eq!(ty, MsgType::Hello);
        assert_eq!(id, 1);
        assert!(p.is_empty());
    }

    #[test]
    fn frame_ids_survive_the_full_u32_range() {
        for id in [0, 1, 0x1234_5678, u32::MAX] {
            let mut buf = Vec::new();
            write_frame(&mut buf, MsgType::Answer, id, b"x").unwrap();
            let (_, got, _) = read_frame(&mut Cursor::new(buf)).unwrap();
            assert_eq!(got, id);
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MsgType::Hello, 1, b"").unwrap();
        buf[0] = 9;
        match read_frame(&mut Cursor::new(buf)) {
            Err(NetError::VersionMismatch { theirs: 9, ours }) => {
                assert_eq!(ours, FRAME_VERSION)
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn legacy_v1_frame_is_a_version_mismatch_not_garbage() {
        // a v1 peer's Hello is only 6 bytes: [1, 0, 0,0,0,0] — the
        // sniffing first-frame reader must flag the version byte instead
        // of blocking for (or misreading) a 10-byte v2 header that will
        // never arrive
        let mut buf = Vec::new();
        write_frame_v1(&mut buf, MsgType::Hello, b"").unwrap();
        match read_first_frame(&mut Cursor::new(buf)) {
            Err(NetError::VersionMismatch { theirs: 1, ours: 2 }) => {}
            other => panic!("expected v1-vs-v2 mismatch, got {other:?}"),
        }
    }

    #[test]
    fn first_frame_reader_accepts_a_v2_frame_whole() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MsgType::Answer, 42, b"<r/>").unwrap();
        let (ty, id, payload) = read_first_frame(&mut Cursor::new(buf)).unwrap();
        assert_eq!(
            (ty, id, payload.as_slice()),
            (MsgType::Answer, 42, &b"<r/>"[..])
        );
    }

    #[test]
    fn unknown_type_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MsgType::Hello, 1, b"").unwrap();
        buf[1] = 77;
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn oversized_announcement_rejected_without_allocating() {
        let mut buf = vec![FRAME_VERSION, MsgType::Answer as u8];
        buf.extend_from_slice(&1u32.to_be_bytes()); // frame id
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn truncated_frame_is_a_transport_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MsgType::Answer, 3, b"<r><a>1</a></r>").unwrap();
        buf.truncate(buf.len() - 4); // disconnect mid-payload
        match read_frame(&mut Cursor::new(buf)) {
            Err(NetError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
            }
            other => panic!("expected io error, got {other:?}"),
        }
    }

    #[test]
    fn decode_header_matches_encode_header() {
        let raw = encode_header(MsgType::Stats, 42, 17);
        let h = decode_header(&raw).unwrap();
        assert_eq!(
            h,
            FrameHeader {
                ty: MsgType::Stats,
                frame_id: 42,
                len: 17
            }
        );
    }
}
