//! The inference cache of the serving layer: memoized [`infer_view_dtd`]
//! keyed on a **stable fingerprint** of (normalized query, source DTD).
//!
//! A mediator serves many clients over few sources, so the same
//! (query, DTD) pairs recur constantly; the full pipeline (normalize →
//! tighten → infer-list → collapse → merge) is pure in its inputs, which
//! makes its results safely shareable. The fingerprint is built from
//! [`Name::stable_hash`]/[`Sym::stable_hash`] — process-independent
//! content hashes precomputed at intern time — so computing a key costs a
//! structural walk with one table lookup per name, no string re-hashing.
//!
//! **Key design.** `Fingerprint = (query_fp, dtd_fp)` where
//!
//! * `query_fp` hashes the *normalized* query (its canonical `Display`
//!   form, which round-trips through the parser): two surface queries
//!   that normalize identically against the same source share one entry;
//! * `dtd_fp` hashes the source DTD structurally — doc type plus every
//!   (name, content model) entry in definition order.
//!
//! **Invalidation rule.** When a source's DTD changes (the mediator's
//! `replace_source`), every entry whose `dtd_fp` matches the *old* DTD is
//! dropped via [`InferenceCache::invalidate_dtd`]. Entries keyed by other
//! DTDs are untouched: a fingerprint match is the only coupling between a
//! cache entry and a source.
//!
//! **Observability.** The cache's counters are [`mix_obs`] instruments
//! (`inference_cache_hits_total`, `…_misses_total`,
//! `…_invalidations_total`, plus the `inference_cache_entries` gauge) in
//! the registry handed to [`InferenceCache::with_registry`] — a cache
//! built with [`InferenceCache::new`] owns a private enabled registry.
//! Each lookup also records a `cache_lookup` span (and `infer` on a
//! miss) into that registry's span ring. [`InferenceCache::stats`] is a
//! typed view over the same instruments, reported through
//! [`crate::metrics::serving_metrics`] next to the automata-layer
//! [`mix_relang::memo_stats`].
//!
//! **Bounding.** The table is capped ([`INFERENCE_CACHE_CAPACITY`] by
//! default): at the bound, inserting runs a second-chance sweep — every
//! entry not hit since the previous sweep is dropped (counted in
//! `inference_cache_evictions_total`), survivors are demoted, and a
//! fully-referenced table flushes wholesale like the relang memo tables.
//!
//! **Persistence.** A cache built with [`InferenceCache::with_store`]
//! warm-starts from a [`WarmStore`] (mix-store's content-addressed
//! segment store) and writes each freshly inferred entry behind to it;
//! [`InferenceCache::compact_store`] snapshots the resident entries back
//! at clean shutdown. The fingerprints are process-independent content
//! hashes, which is exactly what makes the entries portable.

use crate::pipeline::{infer_view_dtd, InferredView};
use mix_dtd::{ContentModel, Dtd};
use mix_obs::{Counter, Gauge, Registry};
use mix_relang::ast::Regex;
use mix_xmas::{normalize, NormalizeError, Query};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Default resident-entry bound of an [`InferenceCache`] (the PR-8
/// `ParseMemo` bound philosophy: a mediator's working set is small, so
/// cap the table and evict instead of growing without limit).
pub const INFERENCE_CACHE_CAPACITY: usize = 4096;

/// A persistence backend an [`InferenceCache`] can warm-start from —
/// implemented by `mix-store`'s content-addressed segment store. The
/// trait lives here (not in the store crate) so `mix-infer` stays free
/// of any storage dependency; the cache only ever sees opaque loads and
/// write-behind notifications.
///
/// Contract: `load_views` must return only entries whose payloads were
/// re-validated against their fingerprints (a corrupt or stale entry is
/// the implementation's problem to drop — cold inference is always the
/// correct fallback), and `record_view`/`compact` must never block
/// serving on durability (best-effort, swallow I/O errors).
pub trait WarmStore: Send + Sync {
    /// Every persisted, re-validated `(fingerprint, inferred view)` pair.
    fn load_views(&self) -> Vec<(Fingerprint, InferredView)>;
    /// Write-behind notification: `iv` was just inferred under `fp`.
    fn record_view(&self, fp: &Fingerprint, iv: &InferredView);
    /// Compacts the backing store down to `entries` (plus whatever
    /// non-view state the store persists, e.g. the regex pool arena).
    fn compact(&self, entries: &[(Fingerprint, Arc<InferredView>)]);
    /// Every persisted `(fingerprint, satisfiability verdict)` pair a
    /// [`crate::sat::SatCache`] can warm-start from. Default: none —
    /// stores predating the sat layer keep compiling unchanged.
    fn load_sat_verdicts(&self) -> Vec<(Fingerprint, crate::sat::SatVerdict)> {
        Vec::new()
    }
    /// Write-behind notification: `verdict` was just decided under `fp`.
    /// Only `Sat`/`Unsat` arrive here — `Unknown` is never persisted.
    fn record_sat_verdict(&self, _fp: &Fingerprint, _verdict: &crate::sat::SatVerdict) {}
}

/// One resident entry: the shared result plus the second-chance
/// reference bit (set on every hit, cleared by the eviction sweep).
struct Slot {
    view: Arc<InferredView>,
    referenced: AtomicBool,
}

impl Slot {
    fn new(view: Arc<InferredView>) -> Slot {
        Slot {
            view,
            referenced: AtomicBool::new(false),
        }
    }
}

/// Process-independent cache key for one (normalized query, source DTD)
/// inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// Stable hash of the normalized query.
    pub query: u64,
    /// Stable hash of the source DTD.
    pub dtd: u64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn mix(h: u64, v: u64) -> u64 {
    // SplitMix64 finalizer over a running combine: order-sensitive, cheap,
    // and stable across processes (no RandomState involved).
    let mut z = h.wrapping_add(v).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn regex_fp(h: u64, r: &Regex) -> u64 {
    // The pool caches a compositional structural fingerprint per interned
    // node (same SplitMix64 mixer, [`Sym::stable_hash`] leaves), so a DTD
    // whose content models are already interned fingerprints without
    // re-walking the regexes. Fingerprints never persist, so the exact
    // values are free to differ from the pre-pool fold.
    mix(h, mix_relang::pool::fingerprint(mix_relang::intern(r)))
}

/// Stable structural fingerprint of a source DTD: doc type plus every
/// (name, content model) entry in definition order. Equal DTDs (same
/// definitions in the same order) fingerprint equal in every process.
pub fn fingerprint_dtd(dtd: &Dtd) -> u64 {
    let mut h = mix(0x6d69_785f_6474_6421, dtd.doc_type.stable_hash());
    for (n, m) in dtd.types.iter() {
        h = mix(h, n.stable_hash());
        h = match m {
            ContentModel::Pcdata => mix(h, 0xbeef),
            ContentModel::Elements(r) => regex_fp(mix(h, 0xcafe), r),
        };
    }
    h
}

/// Stable fingerprint of an (already normalized) query via its canonical
/// `Display` form, which round-trips through the parser.
pub fn fingerprint_query(q: &Query) -> u64 {
    fnv1a(q.to_string().as_bytes())
}

/// Counters of one [`InferenceCache`] (experiment X15's observability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Inferences served from the cache.
    pub hits: u64,
    /// Inferences that ran the full pipeline.
    pub misses: u64,
    /// Entries dropped by [`InferenceCache::invalidate_dtd`].
    pub invalidations: u64,
    /// Entries dropped by the capacity bound's second-chance sweep.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// A concurrency-safe memo table for [`infer_view_dtd`], shared by every
/// thread of the mediator's serving layer (`answer_many`).
pub struct InferenceCache {
    map: RwLock<HashMap<Fingerprint, Slot>>,
    capacity: usize,
    store: Option<Arc<dyn WarmStore>>,
    registry: Registry,
    hits: Counter,
    misses: Counter,
    invalidations: Counter,
    evictions: Counter,
    entries: Gauge,
}

impl Default for InferenceCache {
    fn default() -> InferenceCache {
        InferenceCache::new()
    }
}

impl InferenceCache {
    /// An empty cache observing into its own private registry.
    pub fn new() -> InferenceCache {
        InferenceCache::with_registry(Registry::new())
    }

    /// An empty cache recording its instruments (and lookup spans) into
    /// `registry` — pass the mediator's registry to serve one merged
    /// exposition, or [`Registry::noop`] to observe nothing.
    pub fn with_registry(registry: Registry) -> InferenceCache {
        InferenceCache::with_capacity(INFERENCE_CACHE_CAPACITY, registry)
    }

    /// An empty cache bounded at `capacity` resident entries. At the
    /// bound, inserting sweeps second-chance style: entries not hit since
    /// the previous sweep are evicted (counted in
    /// `inference_cache_evictions_total`); if every entry was hit, the
    /// table is flushed wholesale like the relang memo tables.
    pub fn with_capacity(capacity: usize, registry: Registry) -> InferenceCache {
        InferenceCache {
            map: RwLock::new(HashMap::new()),
            capacity: capacity.max(1),
            store: None,
            hits: registry.counter("inference_cache_hits_total"),
            misses: registry.counter("inference_cache_misses_total"),
            invalidations: registry.counter("inference_cache_invalidations_total"),
            evictions: registry.counter("inference_cache_evictions_total"),
            entries: registry.gauge("inference_cache_entries"),
            registry,
        }
    }

    /// A cache that warm-starts from `store` (every persisted,
    /// re-validated entry is resident before the first lookup) and writes
    /// behind to it on each miss. Loading past the capacity bound stops
    /// early — cold inference refills anything dropped.
    pub fn with_store(registry: Registry, store: Arc<dyn WarmStore>) -> InferenceCache {
        let mut cache = InferenceCache::with_registry(registry);
        let mut map = HashMap::new();
        for (fp, iv) in store.load_views() {
            if map.len() >= cache.capacity {
                break;
            }
            map.entry(fp).or_insert_with(|| Slot::new(Arc::new(iv)));
        }
        cache.entries.set(map.len() as i64);
        cache.map = RwLock::new(map);
        cache.store = Some(store);
        cache
    }

    /// The registry this cache observes into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The fingerprint under which `(q, source)` is cached. Normalization
    /// errors surface exactly as from [`infer_view_dtd`].
    pub fn fingerprint(q: &Query, source: &Dtd) -> Result<Fingerprint, NormalizeError> {
        let nq = normalize(q, source)?;
        Ok(Fingerprint {
            query: fingerprint_query(&nq),
            dtd: fingerprint_dtd(source),
        })
    }

    /// Memoized [`infer_view_dtd`]: returns the shared result on a hit,
    /// runs the pipeline and populates the table on a miss.
    pub fn infer(&self, q: &Query, source: &Dtd) -> Result<Arc<InferredView>, NormalizeError> {
        let lookup = self.registry.span("cache_lookup");
        let fp = InferenceCache::fingerprint(q, source)?;
        if let Some(slot) = self.map.read().get(&fp) {
            self.hits.inc();
            slot.referenced.store(true, Ordering::Relaxed);
            return Ok(Arc::clone(&slot.view));
        }
        drop(lookup);
        self.misses.inc();
        let infer_span = self.registry.span("infer");
        let iv = Arc::new(infer_view_dtd(q, source)?);
        drop(infer_span);
        // under contention the pipeline may have raced: keep the first
        // insert so concurrent callers converge on one shared value
        let (shared, inserted) = {
            let mut map = self.map.write();
            let inserted = !map.contains_key(&fp);
            if inserted && map.len() >= self.capacity {
                self.sweep(&mut map);
            }
            let shared = Arc::clone(&map.entry(fp).or_insert_with(|| Slot::new(iv)).view);
            self.entries.set(map.len() as i64);
            (shared, inserted)
        };
        if inserted {
            // write-behind outside the lock: durability never blocks peers
            if let Some(store) = &self.store {
                store.record_view(&fp, &shared);
            }
        }
        Ok(shared)
    }

    /// The second-chance sweep run at the capacity bound (caller holds
    /// the write lock): drop everything not referenced since the last
    /// sweep and demote the survivors; if every entry was referenced,
    /// flush wholesale — the next misses rebuild the hot set.
    fn sweep(&self, map: &mut HashMap<Fingerprint, Slot>) {
        let before = map.len();
        map.retain(|_, slot| slot.referenced.swap(false, Ordering::Relaxed));
        if map.len() == before {
            map.clear();
        }
        self.evictions.add((before - map.len()) as u64);
    }

    /// Drops every entry inferred against `source` (matched by DTD
    /// fingerprint) and returns how many were dropped. This is the
    /// invalidation hook for the mediator's `replace_source`: call it
    /// with the *old* DTD before (or after) swapping the source in.
    pub fn invalidate_dtd(&self, source: &Dtd) -> usize {
        let fp = fingerprint_dtd(source);
        let mut map = self.map.write();
        let before = map.len();
        map.retain(|k, _| k.dtd != fp);
        let dropped = before - map.len();
        self.invalidations.add(dropped as u64);
        self.entries.set(map.len() as i64);
        dropped
    }

    /// The resident entries, for compaction: every `(fingerprint, view)`
    /// pair currently held.
    pub fn entries_snapshot(&self) -> Vec<(Fingerprint, Arc<InferredView>)> {
        self.map
            .read()
            .iter()
            .map(|(&fp, slot)| (fp, Arc::clone(&slot.view)))
            .collect()
    }

    /// Compacts the warm store (if one is attached) down to the resident
    /// entries — the clean-shutdown / on-demand snapshot hook. Returns
    /// whether a store was attached.
    pub fn compact_store(&self) -> bool {
        match &self.store {
            Some(store) => {
                store.compact(&self.entries_snapshot());
                true
            }
            None => false,
        }
    }

    /// Drops everything (counters are kept).
    pub fn clear(&self) {
        self.map.write().clear();
        self.entries.set(0);
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the counters (a typed view over the
    /// `inference_cache_*` instruments of this cache's registry).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            invalidations: self.invalidations.get(),
            evictions: self.evictions.get(),
            entries: self.len(),
        }
    }
}

impl std::fmt::Debug for InferenceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceCache")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_dtd::paper::d1_department;
    use mix_dtd::parse_compact;
    use mix_xmas::parse_query;

    fn q3() -> Query {
        parse_query(
            "publist = SELECT P WHERE <department> <name>CS</name> \
               <professor | gradStudent> P:<publication><journal/></publication> </> </>",
        )
        .unwrap()
    }

    #[test]
    fn hit_returns_the_shared_result() {
        let cache = InferenceCache::new();
        let d = d1_department();
        let a = cache.infer(&q3(), &d).unwrap();
        let b = cache.infer(&q3(), &d).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second call must be a cache hit");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn cached_equals_uncached() {
        let cache = InferenceCache::new();
        let d = d1_department();
        let direct = infer_view_dtd(&q3(), &d).unwrap();
        let cached = cache.infer(&q3(), &d).unwrap();
        assert_eq!(direct.verdict, cached.verdict);
        assert_eq!(direct.dtd.to_string(), cached.dtd.to_string());
        assert_eq!(direct.sdtd.to_string(), cached.sdtd.to_string());
        assert_eq!(direct.merged_names, cached.merged_names);
    }

    #[test]
    fn different_dtds_do_not_collide() {
        let cache = InferenceCache::new();
        let d_a = parse_compact(
            "{<department : name, professor*> <name : PCDATA> \
              <professor : publication*> <publication : journal?> <journal : EMPTY>}",
        )
        .unwrap();
        let d_b = d1_department();
        let a = cache.infer(&q3(), &d_a).unwrap();
        let b = cache.infer(&q3(), &d_b).unwrap();
        assert_ne!(a.dtd.to_string(), b.dtd.to_string());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn invalidation_is_per_dtd() {
        let cache = InferenceCache::new();
        let d_a = parse_compact(
            "{<department : name, professor*> <name : PCDATA> \
              <professor : publication*> <publication : journal?> <journal : EMPTY>}",
        )
        .unwrap();
        let d_b = d1_department();
        cache.infer(&q3(), &d_a).unwrap();
        cache.infer(&q3(), &d_b).unwrap();
        assert_eq!(cache.invalidate_dtd(&d_a), 1);
        assert_eq!(cache.stats().entries, 1);
        // d_b's entry survived: next call is still a hit
        let h = cache.stats().hits;
        cache.infer(&q3(), &d_b).unwrap();
        assert_eq!(cache.stats().hits, h + 1);
        // and d_a's was dropped: next call is a miss
        let m = cache.stats().misses;
        cache.infer(&q3(), &d_a).unwrap();
        assert_eq!(cache.stats().misses, m + 1);
    }

    #[test]
    fn fingerprints_are_content_hashes() {
        // the same DTD parsed twice fingerprints identically even though
        // the two values are distinct allocations
        let src = "{<site : item*> <item : PCDATA>}";
        let a = parse_compact(src).unwrap();
        let b = parse_compact(src).unwrap();
        assert_eq!(fingerprint_dtd(&a), fingerprint_dtd(&b));
        // reordering definitions is a different document
        let c = parse_compact("{<site : item*> <item : part?> <part : EMPTY>}").unwrap();
        assert_ne!(fingerprint_dtd(&a), fingerprint_dtd(&c));
    }

    #[test]
    fn capacity_bound_evicts_second_chance() {
        // capacity 2: two queries fill the cache; a third insert sweeps.
        // q_a is re-hit before the sweep (reference bit set), q_b is not —
        // so the sweep evicts exactly q_b.
        let cache = InferenceCache::with_capacity(2, Registry::new());
        let d = d1_department();
        let q_a = q3();
        let q_b = parse_query("profs = SELECT P WHERE <department> P:<professor/> </>").unwrap();
        let q_c = parse_query("grads = SELECT G WHERE <department> G:<gradStudent/> </>").unwrap();
        cache.infer(&q_a, &d).unwrap();
        cache.infer(&q_b, &d).unwrap();
        cache.infer(&q_a, &d).unwrap(); // sets q_a's reference bit
        cache.infer(&q_c, &d).unwrap(); // at capacity: sweep runs
        let s = cache.stats();
        assert_eq!(s.evictions, 1, "only the unreferenced entry is evicted");
        assert_eq!(s.entries, 2);
        // q_a survived (hit), q_b was evicted (miss)
        let h = cache.stats().hits;
        cache.infer(&q_a, &d).unwrap();
        assert_eq!(cache.stats().hits, h + 1);
        let m = cache.stats().misses;
        cache.infer(&q_b, &d).unwrap();
        assert_eq!(cache.stats().misses, m + 1);
    }

    #[test]
    fn all_referenced_sweep_flushes_wholesale() {
        let cache = InferenceCache::with_capacity(2, Registry::new());
        let d = d1_department();
        let q_a = q3();
        let q_b = parse_query("profs = SELECT P WHERE <department> P:<professor/> </>").unwrap();
        let q_c = parse_query("grads = SELECT G WHERE <department> G:<gradStudent/> </>").unwrap();
        cache.infer(&q_a, &d).unwrap();
        cache.infer(&q_b, &d).unwrap();
        cache.infer(&q_a, &d).unwrap();
        cache.infer(&q_b, &d).unwrap(); // both reference bits set
        cache.infer(&q_c, &d).unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 2, "everything referenced: wholesale flush");
        assert_eq!(s.entries, 1, "only the new entry is resident");
    }

    #[derive(Default)]
    struct RecordingStore {
        seed: Vec<(Fingerprint, InferredView)>,
        recorded: parking_lot::Mutex<Vec<Fingerprint>>,
        compacted: parking_lot::Mutex<Vec<usize>>,
    }

    impl WarmStore for RecordingStore {
        fn load_views(&self) -> Vec<(Fingerprint, InferredView)> {
            self.seed.clone()
        }
        fn record_view(&self, fp: &Fingerprint, _iv: &InferredView) {
            self.recorded.lock().push(*fp);
        }
        fn compact(&self, entries: &[(Fingerprint, Arc<InferredView>)]) {
            self.compacted.lock().push(entries.len());
        }
    }

    #[test]
    fn warm_store_loads_writes_behind_and_compacts() {
        let d = d1_department();
        let fp = InferenceCache::fingerprint(&q3(), &d).unwrap();
        let seeded = infer_view_dtd(&q3(), &d).unwrap();
        let store = Arc::new(RecordingStore {
            seed: vec![(fp, seeded)],
            ..RecordingStore::default()
        });
        let cache =
            InferenceCache::with_store(Registry::new(), Arc::clone(&store) as Arc<dyn WarmStore>);
        assert_eq!(cache.len(), 1, "store entries are resident on construct");
        // the seeded entry serves as a hit: no pipeline run, no write-behind
        cache.infer(&q3(), &d).unwrap();
        assert_eq!(cache.stats(), {
            let mut s = cache.stats();
            s.hits = 1;
            s.misses = 0;
            s
        });
        assert!(store.recorded.lock().is_empty());
        // a genuinely new inference writes behind
        let q_b = parse_query("profs = SELECT P WHERE <department> P:<professor/> </>").unwrap();
        cache.infer(&q_b, &d).unwrap();
        assert_eq!(store.recorded.lock().len(), 1);
        // compaction hands the store every resident entry
        assert!(cache.compact_store());
        assert_eq!(store.compacted.lock().as_slice(), &[2]);
    }

    #[test]
    fn surface_variants_normalizing_equal_share_an_entry() {
        let cache = InferenceCache::new();
        let d = d1_department();
        // same query with different whitespace in the source text
        let a = parse_query(
            "publist = SELECT P WHERE <department> <name>CS</name> \
               <professor | gradStudent> P:<publication><journal/></publication> </> </>",
        )
        .unwrap();
        let b = parse_query(
            "publist = SELECT P WHERE <department><name>CS</name>\
               <professor | gradStudent>P:<publication><journal/></publication></></>",
        )
        .unwrap();
        cache.infer(&a, &d).unwrap();
        cache.infer(&b, &d).unwrap();
        assert_eq!(cache.stats().entries, 1, "normalized twins must share");
        assert_eq!(cache.stats().hits, 1);
    }
}
