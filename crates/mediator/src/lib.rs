//! # mix-mediator — the MIX mediator substrate
//!
//! The on-demand XML mediator architecture of Section 1: wrappers export
//! XML data typed by DTDs ([`Wrapper`], [`XmlSource`]); the mediator
//! registers XMAS views, runs the View DTD Inference module on
//! registration, and answers user queries with a DTD-based query
//! simplifier (pruning provably-empty queries) and view–query composition
//! (avoiding materialization). Mediators stack: a [`ViewWrapper`] exports
//! a view — with its *inferred* DTD — as a source for a higher mediator.
//! [`render_structure`] is the structure summary of the DTD-based query
//! interface.
//!
//! The source layer is fallible and fault-tolerant: wrapper calls return
//! [`SourceError`], the mediator wraps every call in a per-source
//! resilience layer ([`ResiliencePolicy`]: bounded retries, a circuit
//! breaker, last-known-good snapshots), union views degrade gracefully to
//! partial answers with a [`DegradationReport`], and the deterministic
//! seeded [`FaultInjector`] exercises all of it reproducibly.
//!
//! The serving layer is concurrent and cache-aware: view registration and
//! re-inference run through a shared `InferenceCache` (invalidated when a
//! source's DTD changes), union members materialize in parallel, and
//! [`Mediator::answer_many`] fans a query batch across scoped worker
//! threads while preserving input order and per-query degradation
//! reports. [`LatencyWrapper`] simulates remote-source round-trips for
//! honest throughput experiments (X15).
//!
//! The source layer is also *distributed*: [`WrapperService`] exports any
//! local wrapper over the mix-net wire protocol (what `mixctl
//! serve-source` runs), and [`RemoteWrapper`] consumes one as an ordinary
//! [`Wrapper`] — transport faults fold onto [`SourceError`]
//! ([`net_to_source_error`]), so resilience and degradation work
//! identically over sockets (DESIGN.md §9).
//!
//! The whole serving stack is *observable*: every [`Mediator`] records
//! into a [`mix_obs::Registry`] shared with its inference cache — query
//! counts and latency, per-source fetch/retry/breaker instruments
//! ([`SourceInstruments`]), occurrence-time degradation events, and
//! per-request span traces (query → normalize → cache → fetch → union
//! merge). Pass [`mix_obs::Registry::noop`] to
//! [`Mediator::with_registry`] and all of it compiles down to a branch
//! (DESIGN.md §10, bench X17).

#![warn(missing_docs)]

pub mod builder;
pub mod compose;
pub mod error;
pub mod fault;
pub mod interface;
#[allow(clippy::module_inception)]
pub mod mediator;
pub mod obs;
pub mod resilience;
pub mod simplifier;
pub mod source;
pub mod stack;
pub mod streaming;
pub mod topology;
pub mod wire;

pub use builder::{BuildError, Constraint, QueryBuilder};
pub use compose::compose;
pub use error::SourceError;
pub use fault::{Fault, FaultInjector, FaultPlan};
pub use interface::{occurs, render_structure, Occurs};
pub use mediator::{Answer, AnswerPath, Mediator, MediatorError, ProcessorConfig, UnionView, View};
pub use obs::{ReplicaInstruments, SourceInstruments};
pub use resilience::{
    resilient_answer, BreakerGate, BreakerState, DegradationReport, FetchStatus, Health,
    ResiliencePolicy, SourceOutcome,
};
pub use simplifier::{simplify_query, SimplifyStats};
pub use source::{LatencyWrapper, RemoteWrapper, Wrapper, XmlSource};
pub use stack::ViewWrapper;
pub use streaming::{ServedBy, StreamFactory, StreamingWrapper};
pub use topology::{
    DeadReplica, Federation, FederationPart, HashRing, ReplicaPolicy, ReplicaSet, SourceSpec,
    Topology, TopologyError,
};
pub use wire::{net_to_source_error, WrapperService};
