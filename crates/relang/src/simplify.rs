//! Language-preserving regex simplification.
//!
//! The Merge algorithm (Section 4.3) produces verbose unions such as
//!
//! ```text
//! (publication*, publication, publication*, publication, publication*)
//!   | (publication*, publication, publication*, publication, publication*)
//! ```
//!
//! which the paper notes "can be simplified to the DTD (D2)". This module
//! implements that simplification step as a terminating rewrite system:
//!
//! 1. smart-constructor normalization (flattening, unit/zero laws,
//!    `r|ε → r?`, `(r+)? → r*`, …),
//! 2. *counted-factor collapse*: maximal runs of concatenation factors that
//!    share a base `b` (`b`, `b*`, `b+`, `b?`) are replaced by the minimal
//!    `{min,max}` rendering (`b, b, b*` for "at least two", …),
//! 3. common prefix/suffix factoring of unions (`(a,b) | (a,c) → a, (b|c)`),
//! 4. union-branch subsumption via exact language inclusion (bounded by
//!    regex size so pathological inputs stay cheap).
//!
//! Every rule preserves the language; `simplify` additionally
//! `debug_assert!`s equivalence with the input.

use crate::ast::Regex;
use crate::ops::{equivalent, is_subset, is_subset_id};
use crate::pool::{self, ReId, ReNode};

/// Size bound above which the (automata-based) subsumption rule is skipped.
const SUBSUMPTION_SIZE_LIMIT: usize = 512;
/// Fixpoint iteration cap; rewriting is strictly size-reducing in practice
/// but we bound it defensively.
const MAX_PASSES: usize = 16;

/// The `(min, max)` occurrence count of a factor run; `None` = unbounded.
#[derive(Clone, Copy)]
struct Count {
    min: u32,
    max: Option<u32>,
}

/// The base and count of a single concat factor.
fn factor_base(r: &Regex) -> (&Regex, Count) {
    match r {
        Regex::Star(b) => (b, Count { min: 0, max: None }),
        Regex::Plus(b) => (b, Count { min: 1, max: None }),
        Regex::Opt(b) => (
            b,
            Count {
                min: 0,
                max: Some(1),
            },
        ),
        other => (
            other,
            Count {
                min: 1,
                max: Some(1),
            },
        ),
    }
}

fn render_counted(base: &Regex, c: Count) -> Regex {
    let mut parts: Vec<Regex> = Vec::new();
    for _ in 0..c.min {
        parts.push(base.clone());
    }
    match c.max {
        None => {
            if c.min == 0 {
                parts.push(Regex::star(base.clone()));
            } else {
                // render the last mandatory copy as b+ for compactness
                parts.pop();
                parts.push(Regex::plus(base.clone()));
            }
        }
        Some(max) => {
            for _ in c.min..max {
                parts.push(Regex::opt(base.clone()));
            }
        }
    }
    Regex::concat(parts)
}

/// Collapses runs of same-base factors inside a (already simplified) concat.
fn collapse_concat(parts: Vec<Regex>) -> Regex {
    let mut out: Vec<Regex> = Vec::new();
    let mut run: Option<(Regex, Count)> = None;
    let flush = |run: &mut Option<(Regex, Count)>, out: &mut Vec<Regex>| {
        if let Some((base, c)) = run.take() {
            out.push(render_counted(&base, c));
        }
    };
    for p in parts {
        let (base, c) = factor_base(&p);
        match &mut run {
            Some((rb, rc)) if rb == base => {
                rc.min += c.min;
                rc.max = match (rc.max, c.max) {
                    (Some(a), Some(b)) => Some(a + b),
                    _ => None,
                };
            }
            _ => {
                flush(&mut run, &mut out);
                run = Some((base.clone(), c));
            }
        }
    }
    flush(&mut run, &mut out);
    Regex::concat(out)
}

fn as_factors(r: &Regex) -> Vec<Regex> {
    match r {
        Regex::Concat(v) => v.clone(),
        Regex::Epsilon => vec![],
        other => vec![other.clone()],
    }
}

/// Factors the longest common prefix and suffix out of a union's branches
/// when *all* branches share them. `(a,b)|(a,c) → a,(b|c)`.
fn factor_union(branches: &[Regex]) -> Option<Regex> {
    if branches.len() < 2 {
        return None;
    }
    let factored: Vec<Vec<Regex>> = branches.iter().map(as_factors).collect();
    let min_len = factored.iter().map(Vec::len).min().unwrap_or(0);
    let mut prefix = 0;
    while prefix < min_len && factored.iter().all(|f| f[prefix] == factored[0][prefix]) {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < min_len - prefix
        && factored
            .iter()
            .all(|f| f[f.len() - 1 - suffix] == factored[0][factored[0].len() - 1 - suffix])
    {
        suffix += 1;
    }
    if prefix == 0 && suffix == 0 {
        return None;
    }
    let head = Regex::concat(factored[0][..prefix].iter().cloned());
    let tail = Regex::concat(factored[0][factored[0].len() - suffix..].iter().cloned());
    let middle = Regex::alt(
        factored
            .iter()
            .map(|f| Regex::concat(f[prefix..f.len() - suffix].iter().cloned())),
    );
    Some(Regex::concat([head, middle, tail]))
}

/// Drops union branches whose language is included in another branch.
fn subsume_union(branches: Vec<Regex>) -> Vec<Regex> {
    let total: usize = branches.iter().map(Regex::size).sum();
    if total > SUBSUMPTION_SIZE_LIMIT {
        return branches;
    }
    let mut keep: Vec<Regex> = Vec::new();
    'outer: for (i, b) in branches.iter().enumerate() {
        for (j, other) in branches.iter().enumerate() {
            if i == j {
                continue;
            }
            // Drop b if it is included in a *different* branch; ties (equal
            // languages) are broken by index so exactly one survives.
            if is_subset(b, other) && (!is_subset(other, b) || j < i) {
                continue 'outer;
            }
        }
        keep.push(b.clone());
    }
    if keep.is_empty() {
        branches
    } else {
        keep
    }
}

fn pass(r: &Regex) -> Regex {
    match r {
        Regex::Empty | Regex::Epsilon | Regex::Sym(_) => r.clone(),
        Regex::Concat(v) => {
            let parts: Vec<Regex> = v.iter().map(pass).collect();
            match Regex::concat(parts) {
                Regex::Concat(parts) => collapse_concat(parts),
                other => other,
            }
        }
        Regex::Alt(v) => {
            let parts: Vec<Regex> = v.iter().map(pass).collect();
            match Regex::alt(parts) {
                Regex::Alt(parts) => {
                    let parts = subsume_union(parts);
                    if let Some(f) = factor_union(&parts) {
                        return f;
                    }
                    Regex::alt(parts)
                }
                other => other,
            }
        }
        Regex::Star(x) => Regex::star(pass(x)),
        Regex::Plus(x) => Regex::plus(pass(x)),
        Regex::Opt(x) => {
            let inner = pass(x);
            // (r)? where r is nullable is just r.
            if inner.nullable() {
                inner
            } else {
                Regex::opt(inner)
            }
        }
    }
}

// ---------------------------------------------------------------------
// Pool-id mirror of the rewrite system. Each *_id function is the exact
// twin of the boxed function above with structural equality replaced by
// id equality and cached attributes (size, nullability) replacing
// recomputation, so `to_regex(simplify_id(intern(r)))` is byte-identical
// to the boxed `simplify(r)`.
// ---------------------------------------------------------------------

fn factor_base_id(r: ReId) -> (ReId, Count) {
    match pool::node(r) {
        ReNode::Star(b) => (b, Count { min: 0, max: None }),
        ReNode::Plus(b) => (b, Count { min: 1, max: None }),
        ReNode::Opt(b) => (
            b,
            Count {
                min: 0,
                max: Some(1),
            },
        ),
        _ => (
            r,
            Count {
                min: 1,
                max: Some(1),
            },
        ),
    }
}

fn render_counted_id(base: ReId, c: Count) -> ReId {
    let mut parts: Vec<ReId> = Vec::new();
    for _ in 0..c.min {
        parts.push(base);
    }
    match c.max {
        None => {
            if c.min == 0 {
                parts.push(pool::star_id(base));
            } else {
                parts.pop();
                parts.push(pool::plus_id(base));
            }
        }
        Some(max) => {
            for _ in c.min..max {
                parts.push(pool::opt_id(base));
            }
        }
    }
    pool::concat_ids(parts)
}

fn collapse_concat_id(parts: &[ReId]) -> ReId {
    let mut out: Vec<ReId> = Vec::new();
    let mut run: Option<(ReId, Count)> = None;
    let flush = |run: &mut Option<(ReId, Count)>, out: &mut Vec<ReId>| {
        if let Some((base, c)) = run.take() {
            out.push(render_counted_id(base, c));
        }
    };
    for &p in parts {
        let (base, c) = factor_base_id(p);
        match &mut run {
            Some((rb, rc)) if *rb == base => {
                rc.min += c.min;
                rc.max = match (rc.max, c.max) {
                    (Some(a), Some(b)) => Some(a + b),
                    _ => None,
                };
            }
            _ => {
                flush(&mut run, &mut out);
                run = Some((base, c));
            }
        }
    }
    flush(&mut run, &mut out);
    pool::concat_ids(out)
}

fn as_factors_id(r: ReId) -> Vec<ReId> {
    match pool::node(r) {
        ReNode::Concat(v) => v.to_vec(),
        ReNode::Epsilon => vec![],
        _ => vec![r],
    }
}

fn factor_union_id(branches: &[ReId]) -> Option<ReId> {
    if branches.len() < 2 {
        return None;
    }
    let factored: Vec<Vec<ReId>> = branches.iter().map(|&b| as_factors_id(b)).collect();
    let min_len = factored.iter().map(Vec::len).min().unwrap_or(0);
    let mut prefix = 0;
    while prefix < min_len && factored.iter().all(|f| f[prefix] == factored[0][prefix]) {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < min_len - prefix
        && factored
            .iter()
            .all(|f| f[f.len() - 1 - suffix] == factored[0][factored[0].len() - 1 - suffix])
    {
        suffix += 1;
    }
    if prefix == 0 && suffix == 0 {
        return None;
    }
    let head = pool::concat_ids(factored[0][..prefix].to_vec());
    let tail = pool::concat_ids(factored[0][factored[0].len() - suffix..].to_vec());
    let middle = pool::alt_ids(
        factored
            .iter()
            .map(|f| pool::concat_ids(f[prefix..f.len() - suffix].to_vec()))
            .collect::<Vec<_>>(),
    );
    Some(pool::concat_ids([head, middle, tail]))
}

fn subsume_union_id(branches: Vec<ReId>) -> Vec<ReId> {
    let total: usize = branches.iter().map(|&b| pool::size(b)).sum();
    if total > SUBSUMPTION_SIZE_LIMIT {
        return branches;
    }
    let mut keep: Vec<ReId> = Vec::new();
    'outer: for (i, &b) in branches.iter().enumerate() {
        for (j, &other) in branches.iter().enumerate() {
            if i == j {
                continue;
            }
            if is_subset_id(b, other) && (!is_subset_id(other, b) || j < i) {
                continue 'outer;
            }
        }
        keep.push(b);
    }
    if keep.is_empty() {
        branches
    } else {
        keep
    }
}

fn pass_id(r: ReId) -> ReId {
    match pool::node(r) {
        ReNode::Empty | ReNode::Epsilon | ReNode::Sym(_) => r,
        ReNode::Concat(v) => {
            let parts: Vec<ReId> = v.iter().map(|&x| pass_id(x)).collect();
            let c = pool::concat_ids(parts);
            match pool::node(c) {
                ReNode::Concat(parts) => collapse_concat_id(&parts),
                _ => c,
            }
        }
        ReNode::Alt(v) => {
            let parts: Vec<ReId> = v.iter().map(|&x| pass_id(x)).collect();
            let a = pool::alt_ids(parts);
            match pool::node(a) {
                ReNode::Alt(parts) => {
                    let parts = subsume_union_id(parts.to_vec());
                    if let Some(f) = factor_union_id(&parts) {
                        return f;
                    }
                    pool::alt_ids(parts)
                }
                _ => a,
            }
        }
        ReNode::Star(x) => pool::star_id(pass_id(x)),
        ReNode::Plus(x) => pool::plus_id(pass_id(x)),
        ReNode::Opt(x) => {
            let inner = pass_id(x);
            if pool::nullable(inner) {
                inner
            } else {
                pool::opt_id(inner)
            }
        }
    }
}

/// Simplifies a pool id; the fixpoint test is a single integer compare.
pub fn simplify_id(r: ReId) -> ReId {
    let mut cur = r;
    for _ in 0..MAX_PASSES {
        let next = pass_id(cur);
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

/// Simplifies `r` to a language-equivalent, usually smaller regex.
pub fn simplify(r: &Regex) -> Regex {
    let cur = if pool::boxed_baseline() {
        let mut cur = r.clone();
        for _ in 0..MAX_PASSES {
            let next = pass(&cur);
            if next == cur {
                break;
            }
            cur = next;
        }
        cur
    } else {
        pool::to_regex(simplify_id(pool::intern(r)))
    };
    debug_assert!(
        equivalent(r, &cur),
        "simplify changed the language of {r} into {cur}"
    );
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;

    fn s(src: &str) -> String {
        simplify(&parse_regex(src).unwrap()).to_string()
    }

    #[test]
    fn counted_collapse() {
        assert_eq!(s("p*, p, p*"), "p+");
        assert_eq!(s("p*, p, p*, p, p*"), "p, p+");
        assert_eq!(s("p?, p?"), "p?, p?"); // {0,2} has no shorter rendering
        assert_eq!(s("p, p*"), "p+");
        assert_eq!(s("p*, p*"), "p*");
        assert_eq!(s("p+, p+"), "p, p+");
        assert_eq!(s("p+, p*"), "p+");
    }

    #[test]
    fn paper_merge_output_simplifies_to_d2_type() {
        // Example 4.3: the merged professor type collapses to "≥2 publications".
        let merged = "(publication*, publication, publication*, publication, publication*) \
                      | (publication*, publication, publication*, publication, publication*)";
        assert_eq!(s(merged), "publication, publication+");
    }

    #[test]
    fn union_subsumption() {
        assert_eq!(s("a | a*"), "a*");
        assert_eq!(s("a, b | a, b"), "a, b");
        assert_eq!(s("(a | b) | a"), "a | b");
        assert_eq!(s("a+ | a*"), "a*");
    }

    #[test]
    fn union_factoring() {
        assert_eq!(s("(a, b) | (a, c)"), "a, (b | c)");
        assert_eq!(s("(x, a, y) | (x, b, y)"), "x, (a | b), y");
        assert_eq!(s("(a, b) | a"), "a, b?");
    }

    #[test]
    fn opt_of_nullable() {
        assert_eq!(s("(a*)?"), "a*");
        assert_eq!(s("(a?, b?)?"), "a?, b?");
    }

    #[test]
    fn preserves_language_on_paper_types() {
        for src in [
            "name, (journal | conference)*",
            "title, author+, (journal | conference)",
            "firstName, lastName, publication*, publication^1, publication*, teaches",
            "(name, professor+, gradStudent+, course*)?",
            "(a | b)*, (a, b)+ | c?",
        ] {
            let r = parse_regex(src).unwrap();
            let simp = simplify(&r);
            assert!(equivalent(&r, &simp), "language changed: {src} vs {simp}");
            assert!(simp.size() <= r.size(), "simplify grew {src} to {simp}");
        }
    }

    #[test]
    fn interned_pass_is_byte_identical_to_boxed() {
        for src in [
            "p*, p, p*",
            "p*, p, p*, p, p*",
            "(a, b) | (a, c)",
            "(x, a, y) | (x, b, y)",
            "(a, b) | a",
            "a | a*",
            "a+ | a*",
            "(a*)?",
            "(a?, b?)?",
            "name, (journal | conference)*",
            "firstName, lastName, publication*, publication^1, publication*, teaches",
            "(publication*, publication, publication*, publication, publication*) \
             | (publication*, publication, publication*, publication, publication*)",
        ] {
            let r = parse_regex(src).unwrap();
            let boxed = pass(&r);
            let interned = crate::pool::to_regex(pass_id(crate::pool::intern(&r)));
            assert_eq!(interned, boxed, "pass mismatch on {src}");
            assert_eq!(
                crate::pool::to_regex(simplify_id(crate::pool::intern(&r))),
                simplify(&r),
                "simplify mismatch on {src}"
            );
        }
    }

    #[test]
    fn idempotent() {
        for src in ["p*, p, p*", "(a, b) | (a, c)", "a | a*", "(a?)+"] {
            let once = simplify(&parse_regex(src).unwrap());
            let twice = simplify(&once);
            assert_eq!(once, twice);
        }
    }
}
