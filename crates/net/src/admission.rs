//! Per-client admission control: a token bucket with exact integer
//! accrual.
//!
//! The server gives every connection its own [`TokenBucket`]; a `Query`
//! that finds the bucket empty is answered with [`crate::Msg::Throttled`]
//! *before* any work is dispatched — reject-with-backpressure, so one
//! greedy client under a storm cannot push the tail latency of every
//! other client past its deadline. Accrual is integer arithmetic over
//! caller-supplied nanoseconds, so tests drive the clock and the refusal
//! points are exactly reproducible.

use std::sync::Mutex;
use std::time::Instant;

/// Admission-control knobs, per client connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Bucket capacity: how many requests a client may burst after an
    /// idle spell.
    pub burst: u64,
    /// Sustained refill rate, in requests per second. Zero means the
    /// burst is all a connection ever gets.
    pub refill_per_sec: u64,
}

/// One token, in accrual units: tokens are counted in `token/s · ns`
/// so that `elapsed_ns * refill_per_sec` accrues exactly, with no
/// fractional drift between calls.
const TOKEN: u64 = 1_000_000_000;

struct BucketState {
    /// Current fill, in [`TOKEN`] units.
    tokens: u64,
    /// Accrual frontier, nanoseconds since the bucket's epoch.
    last_ns: u64,
}

/// A token bucket. Starts full; [`TokenBucket::try_acquire`] spends one
/// token or reports how long until the next one accrues.
pub struct TokenBucket {
    config: AdmissionConfig,
    epoch: Instant,
    state: Mutex<BucketState>,
}

impl TokenBucket {
    /// A full bucket.
    pub fn new(config: AdmissionConfig) -> TokenBucket {
        TokenBucket {
            config,
            epoch: Instant::now(),
            state: Mutex::new(BucketState {
                tokens: config.burst.saturating_mul(TOKEN),
                last_ns: 0,
            }),
        }
    }

    /// Spends one token, or returns the suggested backoff in
    /// milliseconds. Wall-clock form of [`TokenBucket::try_acquire_at`].
    pub fn try_acquire(&self) -> Result<(), u64> {
        self.try_acquire_at(self.epoch.elapsed().as_nanos() as u64)
    }

    /// The deterministic core: `now_ns` is a monotone nanosecond clock of
    /// the caller's choosing (tests pass synthetic time).
    pub fn try_acquire_at(&self, now_ns: u64) -> Result<(), u64> {
        let mut s = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let elapsed = now_ns.saturating_sub(s.last_ns);
        s.last_ns = s.last_ns.max(now_ns);
        let cap = self.config.burst.saturating_mul(TOKEN);
        s.tokens = s
            .tokens
            .saturating_add(elapsed.saturating_mul(self.config.refill_per_sec))
            .min(cap);
        if s.tokens >= TOKEN {
            s.tokens -= TOKEN;
            return Ok(());
        }
        let deficit = TOKEN - s.tokens;
        let retry_after_ms = if self.config.refill_per_sec == 0 {
            // never refills: tell the client to go away for a minute
            60_000
        } else {
            let wait_ns = deficit.div_ceil(self.config.refill_per_sec);
            wait_ns.div_ceil(1_000_000).max(1)
        };
        Err(retry_after_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: AdmissionConfig = AdmissionConfig {
        burst: 3,
        refill_per_sec: 10, // one token per 100ms
    };

    #[test]
    fn burst_spends_then_rejects_with_the_exact_backoff() {
        let b = TokenBucket::new(CFG);
        for _ in 0..3 {
            assert_eq!(b.try_acquire_at(0), Ok(()));
        }
        // empty; a full token is 100ms of refill away
        assert_eq!(b.try_acquire_at(0), Err(100));
        // 40ms later, 60ms of refill still missing
        assert_eq!(b.try_acquire_at(40_000_000), Err(60));
        // 100ms after the drain one token has accrued — then it's gone
        assert_eq!(b.try_acquire_at(100_000_000), Ok(()));
        assert_eq!(b.try_acquire_at(100_000_000), Err(100));
    }

    #[test]
    fn refill_caps_at_the_burst() {
        let b = TokenBucket::new(CFG);
        for _ in 0..3 {
            assert_eq!(b.try_acquire_at(0), Ok(()));
        }
        // an hour idle refills to the 3-token cap, not 36 000 tokens
        let hour = 3_600_000_000_000;
        for _ in 0..3 {
            assert_eq!(b.try_acquire_at(hour), Ok(()));
        }
        assert_eq!(b.try_acquire_at(hour), Err(100));
    }

    #[test]
    fn zero_refill_is_a_hard_quota() {
        let b = TokenBucket::new(AdmissionConfig {
            burst: 1,
            refill_per_sec: 0,
        });
        assert_eq!(b.try_acquire_at(0), Ok(()));
        assert_eq!(b.try_acquire_at(u64::MAX / 2), Err(60_000));
    }

    #[test]
    fn time_going_backwards_accrues_nothing() {
        let b = TokenBucket::new(AdmissionConfig {
            burst: 1,
            refill_per_sec: 1_000,
        });
        assert_eq!(b.try_acquire_at(5_000_000), Ok(()));
        // a non-monotone caller cannot mint tokens
        assert!(b.try_acquire_at(0).is_err());
        assert!(b.try_acquire_at(4_000_000).is_err());
    }
}
