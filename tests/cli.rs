//! End-to-end tests of the `mixctl` binary (deliverable b's tool face).

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mixctl-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write fixture");
    path
}

fn mixctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mixctl"))
        .args(args)
        .output()
        .expect("binary runs")
}

const D1: &str = "{<department : name, professor+, gradStudent+, course*>\
  <professor : firstName, lastName, publication+, teaches>\
  <gradStudent : firstName, lastName, publication+>\
  <publication : title, author+, (journal | conference)>\
  <teaches : EMPTY> <journal : EMPTY> <conference : EMPTY> <course : EMPTY>}";

const Q2: &str = "withJournals = SELECT P WHERE <department> <name>CS</name> \
  P:<professor | gradStudent> \
    <publication id=Pub1><journal/></publication> \
    <publication id=Pub2><journal/></publication> \
  </> </> AND Pub1 != Pub2";

const DOC: &str = "<department><name>CS</name>\
  <professor><firstName>Y</firstName><lastName>P</lastName>\
    <publication><title>a</title><author>x</author><journal/></publication>\
    <publication><title>b</title><author>x</author><journal/></publication>\
    <teaches/></professor>\
  <gradStudent><firstName>G</firstName><lastName>S</lastName>\
    <publication><title>c</title><author>x</author><conference/></publication>\
  </gradStudent></department>";

#[test]
fn infer_prints_view_dtds() {
    let dtd = fixture("d1.dtd", D1);
    let q = fixture("q2.xmas", Q2);
    let out = mixctl(&[
        "infer",
        "--dtd",
        dtd.to_str().unwrap(),
        "--query",
        q.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verdict: Satisfiable"), "{text}");
    assert!(
        text.contains("publication^1 : title, author+, journal"),
        "{text}"
    );
    assert!(text.contains("non-tightness introduced by merging on: publication"));
}

#[test]
fn classify_and_eval() {
    let dtd = fixture("d1b.dtd", D1);
    let q = fixture("q2b.xmas", Q2);
    let doc = fixture("dept.xml", DOC);
    let out = mixctl(&[
        "classify",
        "--dtd",
        dtd.to_str().unwrap(),
        "--query",
        q.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "Satisfiable");

    let out = mixctl(&[
        "eval",
        "--dtd",
        dtd.to_str().unwrap(),
        "--doc",
        doc.to_str().unwrap(),
        "--query",
        q.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("<withJournals>"));
    assert!(text.contains("<professor>"));
    assert!(!text.contains("<gradStudent>")); // only one journal pub
}

#[test]
fn validate_both_ways() {
    let dtd = fixture("d1c.dtd", D1);
    let good = fixture("good.xml", DOC);
    let bad = fixture("bad.xml", "<department><name>CS</name></department>");
    let out = mixctl(&[
        "validate",
        "--dtd",
        dtd.to_str().unwrap(),
        "--doc",
        good.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = mixctl(&[
        "validate",
        "--dtd",
        dtd.to_str().unwrap(),
        "--doc",
        bad.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("invalid"));
}

#[test]
fn structure_and_tightness() {
    let dtd = fixture("d1d.dtd", D1);
    let q = fixture("q2d.xmas", Q2);
    let out = mixctl(&["structure", "--dtd", dtd.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("professor"));

    let out = mixctl(&[
        "tightness",
        "--dtd",
        dtd.to_str().unwrap(),
        "--query",
        q.to_str().unwrap(),
        "--max-size",
        "12",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("naive"), "{text}");
}

#[test]
fn xml_dtd_syntax_is_autodetected() {
    let dtd = fixture(
        "d1.xmldtd",
        "<!DOCTYPE department [\
           <!ELEMENT department (name, professor+, gradStudent+, course*)>\
           <!ELEMENT professor (firstName, lastName, publication+, teaches)>\
           <!ELEMENT gradStudent (firstName, lastName, publication+)>\
           <!ELEMENT publication (title, author+, (journal | conference))>\
           <!ELEMENT teaches EMPTY> <!ELEMENT journal EMPTY>\
           <!ELEMENT conference EMPTY> <!ELEMENT course EMPTY>\
         ]>",
    );
    let out = mixctl(&["structure", "--dtd", dtd.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("department"));
}

#[test]
fn bad_usage_exits_nonzero() {
    assert!(!mixctl(&[]).status.success());
    assert!(!mixctl(&["nonsense"]).status.success());
    assert!(!mixctl(&["infer"]).status.success());
    assert!(mixctl(&["help"]).status.success());
}

/// Unparseable inputs (DTD, query, document) all map to exit code 4.
#[test]
fn parse_errors_exit_4() {
    let good_dtd = fixture("pe.dtd", D1);
    let good_q = fixture("pe.xmas", Q2);
    let bad_dtd = fixture("pe-bad.dtd", "{<department : ");
    let bad_q = fixture("pe-bad.xmas", "SELECT WHERE <<");
    let bad_doc = fixture("pe-bad.xml", "<department><name>CS</department>");

    let out = mixctl(&[
        "infer",
        "--dtd",
        bad_dtd.to_str().unwrap(),
        "--query",
        good_q.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(4), "bad DTD");

    let out = mixctl(&[
        "classify",
        "--dtd",
        good_dtd.to_str().unwrap(),
        "--query",
        bad_q.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(4), "bad query");

    let out = mixctl(&[
        "validate",
        "--dtd",
        good_dtd.to_str().unwrap(),
        "--doc",
        bad_doc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(4), "bad document");
}

/// A well-formed query that fails normalization (its pick variable is
/// never bound) is *rejected*, exit code 5 — distinct from a parse error
/// and from source trouble.
#[test]
fn rejected_queries_exit_5() {
    let dtd = fixture("rq.dtd", D1);
    let doc = fixture("rq.xml", DOC);
    let q = fixture(
        "rq.xmas",
        "v = SELECT Z WHERE <department> X:<professor/> </department>",
    );
    let out = mixctl(&[
        "eval",
        "--dtd",
        dtd.to_str().unwrap(),
        "--doc",
        doc.to_str().unwrap(),
        "--query",
        q.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(5), "{:?}", out);
    assert!(String::from_utf8_lossy(&out.stderr).contains("query rejected"));
}

/// `explain --sat` prints one deterministic verdict line per source
/// (the Unsat ones carrying the proof path) plus a pruning summary; the
/// `--sat` flag is mandatory.
#[test]
fn explain_sat_prints_per_source_verdicts() {
    let dtd = fixture("ex.dtd", D1);
    let sat_q = fixture(
        "ex-sat.xmas",
        "pubs = SELECT P WHERE <department> <professor> P:<publication/> </> </>",
    );
    let unsat_q = fixture(
        "ex-unsat.xmas",
        "none = SELECT C WHERE <department> <professor> C:<course/> </> </>",
    );

    // single-source form: --dtd/--query
    let out = mixctl(&[
        "explain",
        "--sat",
        "--dtd",
        dtd.to_str().unwrap(),
        "--query",
        unsat_q.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("unsat: department/professor: child step <course> never occurs"),
        "{text}"
    );
    assert!(text.contains("[fetch skipped]"), "{text}");
    assert!(text.contains("1/1 source fetches pruned"), "{text}");

    // federated form: one --part DTD:QUERY line per source
    let sat_part = format!("{}:{}", dtd.to_str().unwrap(), sat_q.to_str().unwrap());
    let unsat_part = format!("{}:{}", dtd.to_str().unwrap(), unsat_q.to_str().unwrap());
    let out = mixctl(&[
        "explain",
        "--sat",
        "--part",
        &sat_part,
        "--part",
        &unsat_part,
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "{text}");
    assert!(lines[0].ends_with("sat [fetch proceeds]"), "{text}");
    assert!(lines[1].contains("unsat:"), "{text}");
    assert_eq!(lines[2], "1/2 source fetches pruned", "{text}");

    // explain without --sat is a usage error
    assert_eq!(mixctl(&["explain"]).status.code(), Some(2));
}

/// A query whose tags are absent from the source DTD is *not* a
/// client-facing error: the satisfiability analyzer proves it `Unsat`,
/// the mediator skips the fetch, and the run exits 0 with a clean empty
/// answer. (Contrast `rejected_queries_exit_5`: structurally malformed
/// queries still reject with exit 5.)
#[test]
fn absent_tag_queries_federate_to_a_clean_empty_answer() {
    let dtd = fixture("at.dtd", D1);
    let doc = fixture("at.xml", DOC);
    let q = fixture(
        "at.xmas",
        "none = SELECT C WHERE <department> <professor> C:<course/> </> </>",
    );
    let metrics =
        std::env::temp_dir().join(format!("mixctl-sat-metrics-{}.json", std::process::id()));
    let out = mixctl(&[
        "federate",
        "--name",
        "none",
        "--query",
        q.to_str().unwrap(),
        "--dtd",
        dtd.to_str().unwrap(),
        "--doc",
        doc.to_str().unwrap(),
        "--metrics-file",
        metrics.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("<none/>"), "{text}");
    assert!(text.contains("1/1 sources served"), "{text}");
    let snap_text = std::fs::read_to_string(&metrics).expect("metrics file written");
    let _ = std::fs::remove_file(&metrics);
    let snap = mix::obs::Snapshot::from_json(snap_text.trim()).expect("snapshot parses");
    assert_eq!(
        snap.counters["sat_pruned_total"], 1,
        "the fetch was skipped"
    );
    assert_eq!(
        snap.counters["source_served_fresh_total{source=\"site0\"}"], 0,
        "the source must never be contacted"
    );
}

/// `federate --remote` against a dead address is an unavailable-source
/// failure: exit code 6.
#[test]
fn federate_dead_remote_exits_6() {
    // bind-then-drop reserves a port nothing is listening on
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let q = fixture("fd.xmas", Q2);
    let out = mixctl(&[
        "federate",
        "--query",
        q.to_str().unwrap(),
        "--remote",
        &dead,
    ]);
    assert_eq!(out.status.code(), Some(6), "{:?}", out);
    assert!(String::from_utf8_lossy(&out.stderr).contains("connection refused"));
}

/// A serve-source daemon spawned from the binary answers a `federate
/// --remote` run from a second binary invocation — the full network mode
/// end to end, including the parseable "listening on" line.
#[test]
fn serve_source_then_federate_over_loopback() {
    use std::io::BufRead as _;

    let dtd = fixture("net.dtd", D1);
    let doc = fixture("net.xml", DOC);
    let q = fixture("net.xmas", Q2);

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_mixctl"))
        .args([
            "serve-source",
            "--addr",
            "127.0.0.1:0",
            "--dtd",
            dtd.to_str().unwrap(),
            "--doc",
            doc.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut line = String::new();
    std::io::BufReader::new(daemon.stdout.as_mut().expect("piped stdout"))
        .read_line(&mut line)
        .expect("daemon announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_owned();

    let out = mixctl(&[
        "federate",
        "--query",
        q.to_str().unwrap(),
        "--remote",
        &addr,
    ]);
    let _ = daemon.kill();
    let _ = daemon.wait();

    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("<view>"), "{text}");
    assert!(text.contains("<professor>"), "{text}");
    assert!(text.contains("1/1 sources served"), "{text}");
}

/// serve-source without a bind address is a usage error (exit 2), like
/// every other malformed invocation.
#[test]
fn serve_source_without_addr_is_usage_error() {
    let dtd = fixture("sa.dtd", D1);
    let doc = fixture("sa.xml", DOC);
    let out = mixctl(&[
        "serve-source",
        "--dtd",
        dtd.to_str().unwrap(),
        "--doc",
        doc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn union_subcommand() {
    let dtd = fixture("du.dtd", D1);
    let q = fixture(
        "qu.xmas",
        "publist = SELECT P WHERE <department> <name>CS</name> \
           <professor | gradStudent> P:<publication><journal/></publication> </> </>",
    );
    let part = format!("{}:{}", dtd.to_str().unwrap(), q.to_str().unwrap());
    let out = mixctl(&[
        "union", "--name", "allPubs", "--part", &part, "--part", &part,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("allPubs"), "{text}");
    assert!(text.contains("publication"), "{text}");
    // no parts → usage error
    assert!(!mixctl(&["union"]).status.success());
}

/// `mixctl stats` against a live serve-source daemon: the JSON snapshot
/// parses, carries the daemon's serving counters (the federate run just
/// before fetched the view once), and re-renders as the Prometheus text
/// exposition with `--format prom`. The wire round-trip is exact: the
/// client-side `Snapshot::from_json` re-serializes to the identical
/// bytes the daemon sent.
#[test]
fn stats_subcommand_against_loopback_daemon() {
    use std::io::BufRead as _;

    let dtd = fixture("st.dtd", D1);
    let doc = fixture("st.xml", DOC);
    let q = fixture("st.xmas", Q2);
    // the daemon exports the *view* (root <withJournals>), so the
    // federated query must be rooted there — a <department>-rooted query
    // is provably empty against the exported view DTD and the
    // satisfiability analyzer would skip the fetch this test counts
    let view_q = fixture(
        "st-view.xmas",
        "profs = SELECT P WHERE <withJournals> P:<professor/> </withJournals>",
    );

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_mixctl"))
        .args([
            "serve-source",
            "--addr",
            "127.0.0.1:0",
            "--dtd",
            dtd.to_str().unwrap(),
            "--doc",
            doc.to_str().unwrap(),
            "--query",
            q.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut line = String::new();
    std::io::BufReader::new(daemon.stdout.as_mut().expect("piped stdout"))
        .read_line(&mut line)
        .expect("daemon announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_owned();

    // drive one federated answer through the daemon so the serving
    // counters are non-zero when we scrape
    let fed = mixctl(&[
        "federate",
        "--query",
        view_q.to_str().unwrap(),
        "--remote",
        &addr,
    ]);
    assert_eq!(fed.status.code(), Some(0), "{fed:?}");
    assert!(
        String::from_utf8_lossy(&fed.stdout).contains("<professor>"),
        "the stacked view should serve its professor"
    );

    let json_out = mixctl(&["stats", "--remote", &addr]);
    let prom_out = mixctl(&["stats", "--remote", &addr, "--format", "prom"]);
    let _ = daemon.kill();
    let _ = daemon.wait();

    assert_eq!(json_out.status.code(), Some(0), "{json_out:?}");
    let payload = String::from_utf8(json_out.stdout).expect("utf-8 stats");
    let snap = mix::obs::Snapshot::from_json(payload.trim()).expect("snapshot parses");
    // exact round-trip: parse(json).to_json() == json
    assert_eq!(snap.to_json(), payload.trim());
    assert_eq!(
        snap.counters["source_served_fresh_total{source=\"local\"}"], 1,
        "the daemon's stacked mediator served the federate fetch"
    );
    assert!(snap.counters["net_frames_in_total"] >= 1);
    assert!(snap
        .histograms
        .contains_key("source_fetch_latency_ns{source=\"local\"}"));

    assert_eq!(prom_out.status.code(), Some(0), "{prom_out:?}");
    let text = String::from_utf8_lossy(&prom_out.stdout);
    assert!(text.starts_with("# mix-obs exposition"), "{text}");
    assert!(
        text.contains("# TYPE net_connections_opened_total counter"),
        "{text}"
    );
}

/// `mixctl stats` exit codes: no listener → 6 (unavailable), missing
/// --remote → 2 (usage).
#[test]
fn stats_subcommand_failure_modes() {
    // bind-then-drop reserves a port nothing is listening on
    let free = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe");
    let addr = free.local_addr().expect("probe addr").to_string();
    drop(free);
    let out = mixctl(&["stats", "--remote", &addr, "--timeout-ms", "2000"]);
    assert_eq!(out.status.code(), Some(6), "{out:?}");

    assert_eq!(mixctl(&["stats"]).status.code(), Some(2));
}

/// `federate --metrics-file` leaves one final mix-obs snapshot on disk,
/// carrying the per-source resilience counters of the run.
#[test]
fn federate_writes_a_final_metrics_snapshot() {
    let dtd = fixture("mf.dtd", D1);
    let doc = fixture("mf.xml", DOC);
    let q = fixture("mf.xmas", Q2);
    let metrics = std::env::temp_dir().join(format!("mixctl-metrics-{}.json", std::process::id()));
    let out = mixctl(&[
        "federate",
        "--query",
        q.to_str().unwrap(),
        "--dtd",
        dtd.to_str().unwrap(),
        "--doc",
        doc.to_str().unwrap(),
        "--metrics-file",
        metrics.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = std::fs::read_to_string(&metrics).expect("metrics file written");
    let _ = std::fs::remove_file(&metrics);
    let snap = mix::obs::Snapshot::from_json(text.trim()).expect("snapshot parses");
    assert_eq!(
        snap.counters["source_served_fresh_total{source=\"site0\"}"],
        1
    );
    assert_eq!(
        snap.counters["mediator_queries_total"], 0,
        "materialize, not query"
    );
    assert!(
        snap.counters["relang_dfa_memo_misses_total"] >= 1,
        "global memo merged in"
    );
}

/// Spawns a `serve-source` daemon from the binary and parses its
/// "listening on" announcement.
fn spawn_source_daemon(
    dtd: &std::path::Path,
    doc: &std::path::Path,
) -> (std::process::Child, String) {
    use std::io::BufRead as _;
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_mixctl"))
        .args([
            "serve-source",
            "--addr",
            "127.0.0.1:0",
            "--dtd",
            dtd.to_str().unwrap(),
            "--doc",
            doc.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut line = String::new();
    std::io::BufReader::new(daemon.stdout.as_mut().expect("piped stdout"))
        .read_line(&mut line)
        .expect("daemon announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_owned();
    (daemon, addr)
}

/// The document part of a federate run's stdout (everything before the
/// degradation report, which starts with `view '`).
fn document_part(stdout: &[u8]) -> String {
    let text = String::from_utf8_lossy(stdout).into_owned();
    match text.find("view '") {
        Some(i) => text[..i].to_owned(),
        None => text,
    }
}

/// The satellite e2e for `federate --topology`: 2 sources × 2 replica
/// daemons sharded across 2 nodes; the cluster answer matches a
/// single-node `federate --remote` over one replica of each source, exit
/// 0; after one replica is killed, the rerun still exits 0 with the
/// identical document.
#[test]
fn federate_topology_survives_a_replica_kill_byte_identically() {
    let dtd = fixture("topo.dtd", D1);
    let doc_a = fixture("topo-a.xml", DOC);
    let doc_b = fixture(
        "topo-b.xml",
        "<department><name>CS</name>\
          <professor><firstName>B</firstName><lastName>Q</lastName>\
            <publication><title>z</title><author>y</author><journal/></publication>\
            <publication><title>w</title><author>y</author><journal/></publication>\
            <teaches/></professor>\
          <gradStudent><firstName>H</firstName><lastName>T</lastName>\
            <publication><title>v</title><author>y</author><conference/></publication>\
          </gradStudent></department>",
    );
    let q = fixture("topo.xmas", Q2);

    // 2 sources × 2 replicas
    let (mut a0, a0_addr) = spawn_source_daemon(&dtd, &doc_a);
    let (mut a1, a1_addr) = spawn_source_daemon(&dtd, &doc_a);
    let (mut b0, b0_addr) = spawn_source_daemon(&dtd, &doc_b);
    let (mut b1, b1_addr) = spawn_source_daemon(&dtd, &doc_b);
    let topo = fixture(
        "cluster.topo",
        &format!(
            "# 2 shards x 2 replicas\n\
             nodes 2\n\
             source siteA = {a0_addr}, {a1_addr}\n\
             source siteB = {b0_addr}, {b1_addr}\n"
        ),
    );

    // the single-node reference: one replica of each source, same order
    let single = mixctl(&[
        "federate",
        "--query",
        q.to_str().unwrap(),
        "--remote",
        &a0_addr,
        "--remote",
        &b0_addr,
    ]);
    assert_eq!(single.status.code(), Some(0), "{single:?}");
    let expected = document_part(&single.stdout);
    assert!(expected.contains("<view>"), "{expected}");

    let healthy = mixctl(&[
        "federate",
        "--query",
        q.to_str().unwrap(),
        "--topology",
        topo.to_str().unwrap(),
    ]);
    assert_eq!(healthy.status.code(), Some(0), "{healthy:?}");
    assert_eq!(
        document_part(&healthy.stdout),
        expected,
        "cluster answer diverged from the single-node run"
    );
    let report = String::from_utf8_lossy(&healthy.stdout);
    assert!(report.contains("2/2 sources served"), "{report}");

    // the chaos event: replica 0 of siteA dies; the rerun must still
    // serve the identical document, exit 0, report clean
    let _ = a0.kill();
    let _ = a0.wait();
    let degraded_free = mixctl(&[
        "federate",
        "--query",
        q.to_str().unwrap(),
        "--topology",
        topo.to_str().unwrap(),
    ]);
    assert_eq!(degraded_free.status.code(), Some(0), "{degraded_free:?}");
    assert_eq!(
        document_part(&degraded_free.stdout),
        expected,
        "replica failover changed the answer bytes"
    );
    assert!(
        String::from_utf8_lossy(&degraded_free.stderr).contains(&a0_addr),
        "the dead replica should be warned about on stderr"
    );

    for d in [&mut a1, &mut b0, &mut b1] {
        let _ = d.kill();
        let _ = d.wait();
    }

    // topology parse errors exit 4, like every other parse failure
    let garbage = fixture("garbage.topo", "nodes 2\nwat\n");
    let out = mixctl(&[
        "federate",
        "--query",
        q.to_str().unwrap(),
        "--topology",
        garbage.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(4), "{out:?}");

    // --topology and --remote are mutually exclusive: usage error
    let out = mixctl(&[
        "federate",
        "--query",
        q.to_str().unwrap(),
        "--topology",
        topo.to_str().unwrap(),
        "--remote",
        "127.0.0.1:1",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

/// `serve --bench` reports the canonical "obs" snapshot — including the
/// regex-pool gauges — and no longer emits the deprecated top-level
/// "cache"/"automata" alias blocks (dropped as announced in PR 4).
#[test]
fn serve_bench_json_carries_the_obs_snapshot() {
    let dtd = fixture("sb.dtd", D1);
    let doc = fixture("sb.xml", DOC);
    let q = fixture(
        "sb.xmas",
        "publist = SELECT P WHERE <department> <name>CS</name> \
           <professor | gradStudent> P:<publication><journal/></publication> </> </>",
    );
    let out = mixctl(&[
        "serve",
        "--bench",
        "--dtd",
        dtd.to_str().unwrap(),
        "--query",
        q.to_str().unwrap(),
        "--doc",
        doc.to_str().unwrap(),
        "--batch",
        "4",
        "--threads",
        "1",
        "--latency-ms",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        !text.contains("\"cache\":") && !text.contains("\"automata\":"),
        "deprecated top-level alias blocks resurfaced:\n{text}"
    );
    let obs_start = text.find("\"obs\": ").expect("obs field present") + "\"obs\": ".len();
    // the snapshot is the last field: it runs to the final closing brace
    let obs_end = text.rfind('}').expect("closing brace");
    let snap = mix::obs::Snapshot::from_json(text[obs_start..obs_end].trim()).expect("obs parses");
    // the snapshot carries the inference-cache and automata-memo
    // counters the dropped alias blocks used to repeat…
    assert!(snap.counters.contains_key("inference_cache_hits_total"));
    assert!(snap
        .counters
        .contains_key("relang_inclusion_memo_misses_total"));
    // …and the regex-pool gauges land right next to them
    assert!(
        snap.gauges["relang_pool_nodes"] > 0,
        "pool node gauge missing or zero"
    );
    assert!(
        snap.gauges["relang_pool_bytes"] > 0,
        "pool byte gauge missing or zero"
    );
}

#[test]
fn eval_stream_matches_in_memory_output() {
    let dtd = fixture("st.dtd", D1);
    let doc = fixture("st.xml", DOC);
    // A streamable query (no !=) …
    let q = fixture(
        "st.xmas",
        "profs = SELECT P WHERE <department> <name>CS</name> P:<professor/> </department>",
    );
    let args = [
        "eval",
        "--dtd",
        dtd.to_str().unwrap(),
        "--doc",
        doc.to_str().unwrap(),
        "--query",
        q.to_str().unwrap(),
    ];
    let plain = mixctl(&args);
    assert!(plain.status.success());
    let mut streamed_args = args.to_vec();
    streamed_args.push("--stream");
    let streamed = mixctl(&streamed_args);
    assert!(streamed.status.success());
    assert_eq!(
        plain.stdout, streamed.stdout,
        "stream output must be byte-identical"
    );
    let report = String::from_utf8_lossy(&streamed.stderr);
    assert!(report.contains("peak state"), "{report}");

    // … and a query outside the fragment (Q2 uses !=) falls back with
    // identical output and a note.
    let q2 = fixture("st2.xmas", Q2);
    let args2 = [
        "eval",
        "--dtd",
        dtd.to_str().unwrap(),
        "--doc",
        doc.to_str().unwrap(),
        "--query",
        q2.to_str().unwrap(),
    ];
    let plain2 = mixctl(&args2);
    let mut streamed_args2 = args2.to_vec();
    streamed_args2.push("--stream");
    let streamed2 = mixctl(&streamed_args2);
    assert!(streamed2.status.success());
    assert_eq!(plain2.stdout, streamed2.stdout);
    assert!(String::from_utf8_lossy(&streamed2.stderr).contains("not streamable"));
}
