//! A minimal JSON value model, parser, and printer.
//!
//! The snapshot exposition needs JSON that (a) pulls in no dependency
//! and (b) *round-trips byte-for-byte*: `render(parse(render(x))) ==
//! render(x)` is the schema-stability guard CI enforces. Two deliberate
//! choices follow:
//!
//! * integers are parsed into `i128` (covering the full `u64` range —
//!   bucket bounds go up to `u64::MAX`, which an `f64` cannot hold), and
//!   only numbers written with a fraction or exponent become floats;
//! * the printer is canonical: no whitespace, object keys in the order
//!   given (the snapshot builder supplies them sorted), strings escaped
//!   with the shortest form (`\n`, `\"`, `\\`, else `\u00XX` for
//!   controls).
//!
//! This is not a general-purpose JSON library; it parses strict JSON
//! (no trailing commas, no comments) and that is all the schema needs.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without fraction or exponent.
    Int(i128),
    /// A number written with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Renders the canonical (compact) form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                // always include a decimal point so the value re-parses
                // as a float (round-trip stability)
                if f.fract() == 0.0 && f.is_finite() {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes `s` as a JSON string literal (with quotes) into `out`.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses strict JSON text into a [`Json`] value.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // surrogate pairs are not needed by the schema;
                            // lone surrogates become the replacement char
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // advance over one UTF-8 encoded char
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = text.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_canonically() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "18446744073709551615",
            "[]",
            "{}",
            "[1,2,3]",
            r#"{"a":1,"b":[{"c":"d"}]}"#,
            r#""line\nbreak""#,
            r#""quote\" and \\ backslash""#,
            "1.5",
            "2.0",
        ] {
            let v = parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(v.render(), text, "not canonical: {text}");
            // idempotent: render(parse(render)) == render
            assert_eq!(parse(&v.render()).unwrap().render(), v.render());
        }
    }

    #[test]
    fn u64_max_survives_exactly() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn whitespace_is_accepted_but_not_reproduced() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.render(), r#"{"a":[1,2]}"#);
    }

    #[test]
    fn garbage_is_rejected() {
        for text in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "{'a':1}", "nan"] {
            assert!(parse(text).is_err(), "accepted: {text}");
        }
    }

    #[test]
    fn control_chars_escape_and_return() {
        let mut out = String::new();
        escape_into("a\u{1}b", &mut out);
        assert_eq!(out, "\"a\\u0001b\"");
        assert_eq!(parse(&out).unwrap(), Json::Str("a\u{1}b".to_string()));
    }
}
