//! A 10-source union federation under injected failures — the paper's
//! "union the structures exported by 100 sites" scenario, scaled to ten
//! and run on a bad day.
//!
//! Each site exports the same bibliography DTD with its own documents. A
//! deterministic, seeded [`FaultInjector`] sits in front of every site:
//! some calls time out, some return garbage, some sites are simply down.
//! The mediator's resilience layer retries transient faults, trips
//! per-source circuit breakers, falls back to last-known-good snapshots,
//! and returns the *partial* union answer together with a
//! [`DegradationReport`] — the same seed reproduces the whole run, byte
//! for byte.
//!
//! ```sh
//! cargo run --example faulty_federation
//! ```

use mix::prelude::*;
use std::sync::Arc;

const SITES: usize = 10;
const FAULT_SEED: u64 = 2024;
const FAULT_RATE: f64 = 0.45;

fn site_dtd() -> Dtd {
    parse_compact(
        "{<bib : book*>
          <book : title, author+>
          <title : PCDATA> <author : PCDATA>}",
    )
    .unwrap()
}

fn site_doc(i: usize) -> Document {
    // two books per site, labelled by site so provenance is visible in
    // the union answer
    parse_document(&format!(
        "<bib>\
           <book><title>Site {i} Handbook</title><author>curator{i}</author></book>\
           <book><title>Site {i} Survey</title><author>editor{i}</author></book>\
         </bib>"
    ))
    .unwrap()
}

fn main() {
    let mut mediator = Mediator::new();
    mediator.set_resilience_policy(ResiliencePolicy {
        max_retries: 2,
        failure_threshold: 3,
        ..ResiliencePolicy::default()
    });

    let query = parse_query("books = SELECT B WHERE <bib> B:<book/> </bib>").unwrap();
    let mut parts = Vec::new();
    let names: Vec<String> = (0..SITES).map(|i| format!("site{i}")).collect();
    for (i, name) in names.iter().enumerate() {
        let source = Arc::new(XmlSource::new(site_dtd(), site_doc(i)).unwrap());
        // every site gets its own independent, reproducible fault schedule
        let faulty = FaultInjector::seeded(source, FAULT_SEED.wrapping_add(i as u64), FAULT_RATE);
        mediator.add_source(name, Arc::new(faulty));
        parts.push((name.as_str(), query.clone()));
    }
    mediator.register_union_view("books", &parts).unwrap();

    println!("=== round 1: first materialization (no snapshots yet) ===\n");
    run_round(&mediator);

    // A second round: sources that served round 1 now have last-known-good
    // snapshots, so a site that fails *this* round degrades to stale data
    // instead of dropping out; breakers tripped in round 1 short-circuit.
    println!("\n=== round 2: snapshots and breakers in play ===\n");
    run_round(&mediator);

    println!("\nbreaker states after both rounds:");
    for name in &names {
        println!("  {:<7} {}", name, mediator.breaker_state(name).unwrap());
    }
}

fn run_round(mediator: &Mediator) {
    match mediator.materialize_with_report(name("books")) {
        Ok((doc, report)) => {
            let members = doc.root.children().len();
            println!(
                "union answer: {members} books from {} of {} sites",
                report
                    .outcomes
                    .iter()
                    .filter(|o| o.status != FetchStatus::Failed)
                    .count(),
                report.outcomes.len(),
            );
            print!("{report}");
        }
        Err(e) => println!("federation failed outright: {e}"),
    }
}
