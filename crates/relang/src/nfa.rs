//! Glushkov (position) automaton construction.
//!
//! The Glushkov NFA of a regex has one state per symbol *position* plus a
//! start state, and no ε-transitions, which makes simulation and subset
//! construction straightforward. This automaton family is also the classic
//! execution model for DTD content models (XML's determinism rule is
//! 1-unambiguity of exactly this automaton — we do not *enforce* that rule,
//! since inferred view DTDs are frequently non-deterministic before
//! simplification).

use crate::ast::Regex;
use crate::symbol::Sym;

/// A non-deterministic finite automaton over [`Sym`]s without ε-transitions.
///
/// State `0` is the start state; states `1..=positions` each correspond to a
/// symbol occurrence of the source regex.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// `transitions[s]` lists `(symbol, target)` edges out of state `s`.
    pub transitions: Vec<Vec<(Sym, u32)>>,
    /// `accepting[s]` is true if `s` is final.
    pub accepting: Vec<bool>,
}

/// Glushkov bookkeeping for one subexpression.
struct Info {
    nullable: bool,
    first: Vec<u32>,
    last: Vec<u32>,
}

struct Builder {
    /// Symbol of each position (1-based; index 0 unused).
    sym_of: Vec<Sym>,
    /// `follow[p]` = positions that may follow position `p`.
    follow: Vec<Vec<u32>>,
    /// Membership bitmask mirroring `follow[p]`, so `link` dedups in
    /// O(1) per pair instead of scanning the list (the scan made wide
    /// alternations under closures quadratic per star).
    follow_bits: Vec<Vec<u64>>,
}

impl Builder {
    fn fresh(&mut self, s: Sym) -> u32 {
        self.sym_of.push(s);
        self.follow.push(Vec::new());
        self.follow_bits.push(Vec::new());
        (self.sym_of.len() - 1) as u32
    }

    fn link(&mut self, from: &[u32], to: &[u32]) {
        for &p in from {
            let bits = &mut self.follow_bits[p as usize];
            let list = &mut self.follow[p as usize];
            for &q in to {
                let (w, m) = (q as usize / 64, 1u64 << (q % 64));
                if bits.len() <= w {
                    bits.resize(w + 1, 0);
                }
                if bits[w] & m == 0 {
                    bits[w] |= m;
                    list.push(q);
                }
            }
        }
    }

    fn walk(&mut self, r: &Regex) -> Info {
        match r {
            Regex::Empty => Info {
                nullable: false,
                first: vec![],
                last: vec![],
            },
            Regex::Epsilon => Info {
                nullable: true,
                first: vec![],
                last: vec![],
            },
            Regex::Sym(s) => {
                let p = self.fresh(*s);
                Info {
                    nullable: false,
                    first: vec![p],
                    last: vec![p],
                }
            }
            Regex::Concat(parts) => {
                let mut acc = Info {
                    nullable: true,
                    first: vec![],
                    last: vec![],
                };
                for part in parts {
                    let i = self.walk(part);
                    self.link(&acc.last, &i.first);
                    if acc.nullable {
                        acc.first.extend_from_slice(&i.first);
                    }
                    if i.nullable {
                        acc.last.extend_from_slice(&i.last);
                    } else {
                        acc.last = i.last;
                    }
                    acc.nullable &= i.nullable;
                }
                acc
            }
            Regex::Alt(parts) => {
                let mut acc = Info {
                    nullable: false,
                    first: vec![],
                    last: vec![],
                };
                for part in parts {
                    let i = self.walk(part);
                    acc.nullable |= i.nullable;
                    acc.first.extend(i.first);
                    acc.last.extend(i.last);
                }
                acc
            }
            Regex::Star(inner) => {
                let mut i = self.walk(inner);
                self.link(&i.last.clone(), &i.first.clone());
                i.nullable = true;
                i
            }
            Regex::Plus(inner) => {
                // `+` adds the loop edges but keeps the body's nullability.
                let i = self.walk(inner);
                self.link(&i.last.clone(), &i.first.clone());
                i
            }
            Regex::Opt(inner) => {
                let mut i = self.walk(inner);
                i.nullable = true;
                i
            }
        }
    }
}

impl Nfa {
    /// Builds the Glushkov automaton of `r`.
    pub fn from_regex(r: &Regex) -> Nfa {
        let mut b = Builder {
            sym_of: vec![Sym {
                // placeholder for unused index 0 (the start state)
                name: crate::symbol::Name::intern("\u{0}start"),
                tag: 0,
            }],
            follow: vec![Vec::new()],
            follow_bits: vec![Vec::new()],
        };
        let info = b.walk(r);
        let n = b.sym_of.len();
        let mut transitions = vec![Vec::new(); n];
        for &p in &info.first {
            transitions[0].push((b.sym_of[p as usize], p));
        }
        for (p, follow) in b.follow.iter().enumerate().skip(1) {
            for &q in follow {
                transitions[p].push((b.sym_of[q as usize], q));
            }
        }
        let mut accepting = vec![false; n];
        accepting[0] = info.nullable;
        for &p in &info.last {
            accepting[p as usize] = true;
        }
        Nfa {
            transitions,
            accepting,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// True if the automaton has no states (never: there is always a start).
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Simulates the NFA on `word`.
    pub fn accepts(&self, word: &[Sym]) -> bool {
        let mut current = vec![false; self.len()];
        current[0] = true;
        let mut next = vec![false; self.len()];
        for &c in word {
            next.iter_mut().for_each(|b| *b = false);
            let mut any = false;
            for (s, live) in current.iter().enumerate() {
                if !live {
                    continue;
                }
                for &(sym, t) in &self.transitions[s] {
                    if sym == c {
                        next[t as usize] = true;
                        any = true;
                    }
                }
            }
            if !any {
                return false;
            }
            std::mem::swap(&mut current, &mut next);
        }
        current
            .iter()
            .zip(&self.accepting)
            .any(|(live, acc)| *live && *acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;
    use crate::symbol::sym;

    fn accepts(re: &str, word: &[&str]) -> bool {
        let r = parse_regex(re).unwrap();
        let w: Vec<_> = word.iter().map(|s| sym(s)).collect();
        Nfa::from_regex(&r).accepts(&w)
    }

    #[test]
    fn atoms() {
        assert!(accepts("a", &["a"]));
        assert!(!accepts("a", &[]));
        assert!(!accepts("a", &["b"]));
        assert!(!accepts("a", &["a", "a"]));
    }

    #[test]
    fn concat_alt() {
        assert!(accepts("a, b", &["a", "b"]));
        assert!(!accepts("a, b", &["b", "a"]));
        assert!(accepts("a | b", &["b"]));
        assert!(!accepts("a | b", &["a", "b"]));
    }

    #[test]
    fn closures() {
        assert!(accepts("a*", &[]));
        assert!(accepts("a*", &["a", "a", "a"]));
        assert!(!accepts("a+", &[]));
        assert!(accepts("a+", &["a"]));
        assert!(accepts("a?", &[]));
        assert!(accepts("a?", &["a"]));
        assert!(!accepts("a?", &["a", "a"]));
    }

    #[test]
    fn paper_publication_model() {
        let m = "title, author+, (journal | conference)";
        assert!(accepts(m, &["title", "author", "journal"]));
        assert!(accepts(m, &["title", "author", "author", "conference"]));
        assert!(!accepts(m, &["title", "journal"]));
        assert!(!accepts(m, &["title", "author", "journal", "conference"]));
    }

    #[test]
    fn nested_star_group() {
        let m = "(a, b)*";
        assert!(accepts(m, &[]));
        assert!(accepts(m, &["a", "b", "a", "b"]));
        assert!(!accepts(m, &["a", "b", "a"]));
    }

    #[test]
    fn plus_of_nullable_body() {
        // (a?)+ accepts everything a* does.
        let m = "(a?)+";
        assert!(accepts(m, &[]));
        assert!(accepts(m, &["a", "a"]));
    }

    #[test]
    fn empty_language() {
        let nfa = Nfa::from_regex(&Regex::Empty);
        assert!(!nfa.accepts(&[]));
        assert!(!nfa.accepts(&[sym("a")]));
    }

    #[test]
    fn tagged_syms_are_distinct_letters() {
        let r = parse_regex("a^1, a").unwrap();
        let nfa = Nfa::from_regex(&r);
        let a0 = sym("a");
        let a1 = crate::symbol::name("a").tagged(1);
        assert!(nfa.accepts(&[a1, a0]));
        assert!(!nfa.accepts(&[a0, a1]));
        assert!(!nfa.accepts(&[a0, a0]));
    }
}
