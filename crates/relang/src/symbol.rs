//! Interned element names and tagged names.
//!
//! The paper's model (Definition 2.2) works with a finite set `N` of element
//! names; specialized DTDs (Definition 3.8) extend it to tagged names
//! `n^i` where the *tag* `i` is a non-negative integer and `n^0` is written
//! simply `n`. Names are hot: every regex leaf, every automaton transition,
//! every DTD lookup touches them, so we intern them once into a global table
//! and pass around a `u32` index.

use parking_lot::RwLock;
use std::fmt;
use std::sync::OnceLock;

/// An interned element name (the `n` of the paper).
///
/// Two `Name`s are equal iff the underlying strings are equal; comparison and
/// hashing are integer operations on the intern index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(u32);

/// The tag of a specialized name: `0` means "untagged" (`n` is shorthand for
/// `n^0`, Section 3.3).
pub type Tag = u32;

/// A tagged name `n^T` — a member of the set `N^+` of Definition 3.8.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym {
    /// The underlying element name `n`.
    pub name: Name,
    /// The specialization tag `T` (`0` = untagged).
    pub tag: Tag,
}

struct Interner {
    names: Vec<&'static str>,
    index: std::collections::HashMap<&'static str, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            index: std::collections::HashMap::new(),
        })
    })
}

impl Name {
    /// Interns `s` and returns its `Name`. Idempotent.
    pub fn intern(s: &str) -> Name {
        {
            let g = interner().read();
            if let Some(&i) = g.index.get(s) {
                return Name(i);
            }
        }
        let mut g = interner().write();
        if let Some(&i) = g.index.get(s) {
            return Name(i);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let i = g.names.len() as u32;
        g.names.push(leaked);
        g.index.insert(leaked, i);
        Name(i)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().names[self.0 as usize]
    }

    /// The raw intern index (useful as a dense array key).
    pub fn index(self) -> u32 {
        self.0
    }

    /// This name as an untagged symbol (`n^0`).
    pub fn untagged(self) -> Sym {
        Sym { name: self, tag: 0 }
    }

    /// This name with tag `t`.
    pub fn tagged(self, t: Tag) -> Sym {
        Sym { name: self, tag: t }
    }
}

impl Sym {
    /// Whether this is an untagged symbol (`n^0`).
    pub fn is_untagged(self) -> bool {
        self.tag == 0
    }

    /// The *image* of this symbol: the name with the tag projected out
    /// (Definition 3.9).
    pub fn image(self) -> Name {
        self.name
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.tag == 0 {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{}^{}", self.name, self.tag)
        }
    }
}

impl From<Name> for Sym {
    fn from(n: Name) -> Sym {
        n.untagged()
    }
}

/// Convenience: intern a name.
pub fn name(s: &str) -> Name {
    Name::intern(s)
}

/// Convenience: intern a name as an untagged symbol.
pub fn sym(s: &str) -> Sym {
    Name::intern(s).untagged()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Name::intern("professor");
        let b = Name::intern("professor");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "professor");
    }

    #[test]
    fn distinct_strings_distinct_names() {
        assert_ne!(Name::intern("journal"), Name::intern("conference"));
    }

    #[test]
    fn tags_distinguish_syms() {
        let n = Name::intern("publication");
        assert_ne!(n.untagged(), n.tagged(1));
        assert_eq!(n.tagged(1).image(), n);
        assert!(n.untagged().is_untagged());
        assert!(!n.tagged(2).is_untagged());
    }

    #[test]
    fn display_forms() {
        let n = Name::intern("pub");
        assert_eq!(n.untagged().to_string(), "pub");
        assert_eq!(n.tagged(3).to_string(), "pub^3");
    }

    #[test]
    fn concurrent_interning() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut v = Vec::new();
                    for k in 0..100 {
                        v.push(Name::intern(&format!("name-{}", (i * 7 + k) % 50)));
                    }
                    v
                })
            })
            .collect();
        let all: Vec<Vec<Name>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Same string interned from different threads must agree.
        for row in &all {
            for n in row {
                assert_eq!(Name::intern(n.as_str()), *n);
            }
        }
    }
}
