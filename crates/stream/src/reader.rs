//! A pull-based XML event reader over any [`std::io::Read`].
//!
//! Produces the same document model as `mix_xml::parse_document` — the
//! paper's fragment of Section 2 — but as a stream of
//! open/text/close events with **O(depth + longest token)** memory instead
//! of a materialized tree. Every acceptance and rejection rule of the
//! in-memory parser is replicated event-for-event:
//!
//! * only the `id` attribute is allowed; other attributes are errors;
//! * no mixed content: an element has either a single text run (possibly
//!   split by comments) or child elements, never both;
//! * `</>` anonymous close tags (the paper's compact notation) close the
//!   innermost element;
//! * `<a></a>` is *element* content (an empty child list) while
//!   `<a>  </a>` is *text* content `"  "` — whitespace between elements
//!   is skipped only once children exist;
//! * XML prologs and comments are tolerated between elements (and
//!   comments inside element content), entity references
//!   `&lt; &gt; &quot; &apos; &amp;` are decoded with
//!   [`mix_xml::unescape`];
//! * trailing input after the root element is rejected.
//!
//! One relaxation: the in-memory parser checks ID uniqueness over the
//! whole materialized tree, auto-assigned IDs included. The reader checks
//! uniqueness over the *explicit* `id="…"` attributes it sees (it never
//! assigns IDs), which is the same guarantee for every document a
//! serializer in this workspace produces.

use mix_relang::symbol::Name;
use mix_xml::{unescape, ElemId, XmlError};
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::io::Read;

/// One parsing event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// An element opened (`<name>`, `<name id="…">`, or the open half of
    /// a self-closing `<name/>`, which is immediately followed by its
    /// [`XmlEvent::Close`]).
    Open {
        /// The element name.
        name: Name,
        /// The explicit ID attribute, if any.
        id: Option<ElemId>,
    },
    /// The element's character content. Emitted at most once per element,
    /// immediately before its [`XmlEvent::Close`], and only for elements
    /// with no child elements.
    Text(String),
    /// An element closed.
    Close {
        /// The element name (resolved even for anonymous `</>` tags).
        name: Name,
    },
    /// The document is over: root closed, trailing misc consumed, EOF
    /// reached. Repeated calls keep returning `Eof`.
    Eof,
}

/// A streaming parse failure: an I/O error from the underlying reader or
/// a positioned syntax error (same rules as `mix_xml::parse_document`).
#[derive(Debug)]
pub enum StreamError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The input violates the paper's XML fragment.
    Parse(XmlError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "stream I/O error: {e}"),
            StreamError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<XmlError> for StreamError {
    fn from(e: XmlError) -> Self {
        StreamError::Parse(e)
    }
}

struct Level {
    name: Name,
    saw_child: bool,
    text: Option<String>,
}

/// The pull-based event reader. See the module docs for the exact
/// accepted fragment.
pub struct EventReader<R: Read> {
    src: R,
    /// Decoded window of not-yet-consumed input.
    buf: String,
    /// Cursor into `buf`.
    pos: usize,
    /// Bytes dropped from the front of `buf` (absolute position of
    /// `buf[0]` in the input).
    consumed: u64,
    /// Undecoded UTF-8 tail of the last read.
    carry: Vec<u8>,
    eof: bool,
    queued: VecDeque<XmlEvent>,
    stack: Vec<Level>,
    seen_root: bool,
    finished: bool,
    ids: HashSet<ElemId>,
    buf_high_water: usize,
    bytes_read: u64,
}

const READ_CHUNK: usize = 64 * 1024;
const COMPACT_THRESHOLD: usize = 8 * 1024;

impl<R: Read> EventReader<R> {
    /// Wraps a byte source.
    pub fn new(src: R) -> EventReader<R> {
        EventReader {
            src,
            buf: String::new(),
            pos: 0,
            consumed: 0,
            carry: Vec::new(),
            eof: false,
            queued: VecDeque::new(),
            stack: Vec::new(),
            seen_root: false,
            finished: false,
            ids: HashSet::new(),
            buf_high_water: 0,
            bytes_read: 0,
        }
    }

    /// Largest number of buffered, not-yet-consumed bytes held at any
    /// point — the reader's memory high-water mark (grows with the
    /// longest single token, not with the document).
    pub fn buffer_high_water(&self) -> usize {
        self.buf_high_water
    }

    /// Total input bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    fn err(&self, msg: impl Into<String>) -> StreamError {
        StreamError::Parse(XmlError {
            pos: (self.consumed + self.pos as u64) as usize,
            msg: msg.into(),
        })
    }

    /// Reads one chunk from the source; `false` once EOF is reached.
    fn fill_more(&mut self) -> Result<bool, StreamError> {
        if self.eof {
            return Ok(false);
        }
        let mut chunk = [0u8; READ_CHUNK];
        let n = self.src.read(&mut chunk)?;
        if n == 0 {
            self.eof = true;
            if !self.carry.is_empty() {
                return Err(self.err("input ends inside a multi-byte UTF-8 sequence"));
            }
            return Ok(false);
        }
        self.bytes_read += n as u64;
        self.carry.extend_from_slice(&chunk[..n]);
        match std::str::from_utf8(&self.carry) {
            Ok(s) => {
                self.buf.push_str(s);
                self.carry.clear();
            }
            Err(e) if e.error_len().is_none() => {
                let valid = e.valid_up_to();
                self.buf
                    .push_str(std::str::from_utf8(&self.carry[..valid]).expect("valid prefix"));
                self.carry.drain(..valid);
            }
            Err(_) => return Err(self.err("input is not valid UTF-8")),
        }
        self.buf_high_water = self.buf_high_water.max(self.buf.len() - self.pos);
        Ok(true)
    }

    /// Ensures at least `n` unconsumed bytes are buffered; `false` when
    /// EOF arrives first.
    fn have(&mut self, n: usize) -> Result<bool, StreamError> {
        while self.buf.len() - self.pos < n {
            if !self.fill_more()? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn compact(&mut self) {
        if self.pos >= COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.consumed += self.pos as u64;
            self.pos = 0;
        }
    }

    fn peek_char(&mut self) -> Result<Option<char>, StreamError> {
        if !self.have(1)? {
            return Ok(None);
        }
        Ok(self.buf[self.pos..].chars().next())
    }

    fn bump(&mut self) -> Result<Option<char>, StreamError> {
        let c = self.peek_char()?;
        if let Some(c) = c {
            self.pos += c.len_utf8();
        }
        Ok(c)
    }

    fn starts_with(&mut self, s: &str) -> Result<bool, StreamError> {
        if !self.have(s.len())? && self.buf.len() - self.pos < s.len() {
            return Ok(false);
        }
        Ok(self.buf[self.pos..].starts_with(s))
    }

    fn eat_str(&mut self, s: &str) -> Result<bool, StreamError> {
        if self.starts_with(s)? {
            self.pos += s.len();
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn skip_ws(&mut self) -> Result<(), StreamError> {
        while matches!(self.peek_char()?, Some(c) if c.is_whitespace()) {
            self.bump()?;
            self.compact();
        }
        Ok(())
    }

    /// Skips whitespace, `<?…?>` processing instructions and `<!--…-->`
    /// comments — the in-memory parser's `skip_misc`.
    fn skip_misc(&mut self) -> Result<(), StreamError> {
        loop {
            self.skip_ws()?;
            if self.starts_with("<?")? {
                self.skip_until("?>", "unterminated processing instruction")?;
            } else if self.starts_with("<!--")? {
                self.skip_until("-->", "unterminated comment")?;
            } else {
                return Ok(());
            }
        }
    }

    /// Advances past the next occurrence of `end` (inclusive).
    fn skip_until(&mut self, end: &str, msg: &str) -> Result<(), StreamError> {
        loop {
            if let Some(k) = self.buf[self.pos..].find(end) {
                self.pos += k + end.len();
                self.compact();
                return Ok(());
            }
            // Keep a window large enough that `end` can't hide across the
            // refill boundary, discard the rest. The window is sized in
            // bytes, so widen it until the new pos is a char boundary —
            // `end` is ASCII, so keeping extra bytes never loses a match.
            let keep = (end.len() - 1).min(self.buf.len() - self.pos);
            let mut drop = self.buf.len() - self.pos - keep;
            while !self.buf.is_char_boundary(self.pos + drop) {
                drop -= 1;
            }
            self.pos += drop;
            self.compact();
            if !self.fill_more()? {
                return Err(self.err(msg));
            }
        }
    }

    fn name(&mut self) -> Result<String, StreamError> {
        let mut out = String::new();
        match self.peek_char()? {
            Some(c) if c.is_alphabetic() || c == '_' || c == ':' => {
                out.push(c);
                self.bump()?;
            }
            _ => return Err(self.err("expected an element name")),
        }
        while let Some(c) = self.peek_char()? {
            if c.is_alphanumeric() || matches!(c, '_' | ':' | '.' | '-') {
                out.push(c);
                self.bump()?;
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn quoted(&mut self) -> Result<String, StreamError> {
        let quote = match self.peek_char()? {
            Some(q @ ('"' | '\'')) => {
                self.bump()?;
                q
            }
            _ => return Err(self.err("expected a quoted attribute value")),
        };
        let mut out = String::new();
        loop {
            match self.bump()? {
                None => return Err(self.err("unterminated attribute value")),
                Some(c) if c == quote => return Ok(unescape(&out)),
                Some(c) => out.push(c),
            }
        }
    }

    /// Parses `<name …>` / `<name …/>`; returns the Open event (queueing
    /// the Close for the self-closing form).
    fn open_tag(&mut self) -> Result<XmlEvent, StreamError> {
        if !self.eat_str("<")? {
            return Err(self.err("expected '<'"));
        }
        let name = self.name()?;
        let elem_name = Name::intern(&name);
        let mut id: Option<ElemId> = None;
        loop {
            self.skip_ws()?;
            match self.peek_char()? {
                Some('/') => {
                    self.bump()?;
                    if !self.eat_str(">")? {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.register_id(id)?;
                    self.queued.push_back(XmlEvent::Close { name: elem_name });
                    self.compact();
                    return Ok(XmlEvent::Open {
                        name: elem_name,
                        id,
                    });
                }
                Some('>') => {
                    self.bump()?;
                    self.register_id(id)?;
                    self.stack.push(Level {
                        name: elem_name,
                        saw_child: false,
                        text: None,
                    });
                    self.compact();
                    return Ok(XmlEvent::Open {
                        name: elem_name,
                        id,
                    });
                }
                None => return Err(self.err(format!("unterminated element '{name}'"))),
                Some(_) => {
                    let attr = self
                        .name()
                        .map_err(|_| self.err("expected attribute, '/>' or '>'"))?;
                    self.skip_ws()?;
                    if !self.eat_str("=")? {
                        return Err(self.err("expected '=' after attribute name"));
                    }
                    self.skip_ws()?;
                    let value = self.quoted()?;
                    if attr.eq_ignore_ascii_case("id") {
                        if id.is_some() {
                            return Err(self.err("duplicate id attribute"));
                        }
                        id = Some(ElemId::named(&value));
                    } else {
                        return Err(self.err(format!(
                            "attribute '{attr}' is outside the paper's model (only 'id' is allowed)"
                        )));
                    }
                }
            }
        }
    }

    fn register_id(&mut self, id: Option<ElemId>) -> Result<(), StreamError> {
        if let Some(id) = id {
            if !self.ids.insert(id) {
                return Err(self.err(format!("duplicate element id '{id}'")));
            }
        }
        Ok(())
    }

    /// Parses `</name>` or `</>`; emits the pending text (if any) first.
    fn close_tag(&mut self) -> Result<XmlEvent, StreamError> {
        self.pos += 2; // "</"
        self.skip_ws()?;
        let open_name = self.stack.last().expect("close inside content").name;
        if self.peek_char()? != Some('>') {
            let n = self.name()?;
            if n != open_name.as_str() {
                return Err(self.err(format!("mismatched close tag: '{n}' vs '{open_name}'")));
            }
            self.skip_ws()?;
        }
        if !self.eat_str(">")? {
            return Err(self.err("expected '>' in close tag"));
        }
        self.compact();
        let level = self.stack.pop().expect("checked above");
        match level.text {
            Some(t) => {
                if level.saw_child {
                    return Err(self.err("mixed content is outside the paper's model"));
                }
                self.queued.push_back(XmlEvent::Close { name: level.name });
                Ok(XmlEvent::Text(t))
            }
            None => Ok(XmlEvent::Close { name: level.name }),
        }
    }

    /// Reads a maximal text run (up to the next `<` or EOF), undecoded.
    fn text_run(&mut self) -> Result<String, StreamError> {
        let mut out = String::new();
        loop {
            if let Some(k) = self.buf[self.pos..].find('<') {
                out.push_str(&self.buf[self.pos..self.pos + k]);
                self.pos += k;
                self.compact();
                return Ok(out);
            }
            out.push_str(&self.buf[self.pos..]);
            self.pos = self.buf.len();
            self.compact();
            if !self.fill_more()? {
                return Ok(out);
            }
        }
    }

    /// The next event. After the final [`XmlEvent::Eof`] every further
    /// call returns `Eof` again.
    pub fn next_event(&mut self) -> Result<XmlEvent, StreamError> {
        if let Some(ev) = self.queued.pop_front() {
            return Ok(ev);
        }
        if self.finished {
            return Ok(XmlEvent::Eof);
        }
        if !self.seen_root {
            self.skip_misc()?;
            self.seen_root = true;
            return self.open_tag();
        }
        if self.stack.is_empty() {
            self.skip_misc()?;
            if self.have(1)? {
                return Err(self.err("trailing input after root element"));
            }
            self.finished = true;
            return Ok(XmlEvent::Eof);
        }
        loop {
            if !self.have(1)? {
                let name = self.stack.last().expect("nonempty").name;
                return Err(self.err(format!("unterminated element '{name}'")));
            }
            if self.buf[self.pos..].starts_with('<') {
                if self.starts_with("<!--")? {
                    self.skip_misc()?;
                    continue;
                }
                if self.starts_with("</")? {
                    return self.close_tag();
                }
                let level = self.stack.last_mut().expect("nonempty");
                if level.text.as_deref().is_some_and(|t| !t.trim().is_empty()) {
                    return Err(self.err("mixed content is outside the paper's model"));
                }
                level.text = None;
                level.saw_child = true;
                return self.open_tag();
            }
            let run = self.text_run()?;
            let level = self.stack.last_mut().expect("nonempty");
            if run.trim().is_empty() && level.saw_child {
                continue; // inter-element whitespace
            }
            level
                .text
                .get_or_insert_with(String::new)
                .push_str(&unescape(&run));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_xml::{parse_document, Content, Document, Element};
    use std::io::Cursor;

    fn events(src: &str) -> Result<Vec<XmlEvent>, StreamError> {
        let mut r = EventReader::new(Cursor::new(src.as_bytes().to_vec()));
        let mut out = Vec::new();
        loop {
            match r.next_event()? {
                XmlEvent::Eof => return Ok(out),
                ev => out.push(ev),
            }
        }
    }

    /// An element under construction: name, explicit id, children, text.
    type OpenFrame = (Name, Option<ElemId>, Vec<Element>, Option<String>);

    /// Rebuilds a `Document` from events — the bridge used to check the
    /// reader against the in-memory parser on arbitrary inputs.
    fn rebuild(src: &str) -> Result<Document, StreamError> {
        let mut r = EventReader::new(Cursor::new(src.as_bytes().to_vec()));
        let mut stack: Vec<OpenFrame> = Vec::new();
        let mut root = None;
        loop {
            match r.next_event()? {
                XmlEvent::Open { name, id } => stack.push((name, id, Vec::new(), None)),
                XmlEvent::Text(t) => stack.last_mut().unwrap().3 = Some(t),
                XmlEvent::Close { .. } => {
                    let (name, id, children, text) = stack.pop().unwrap();
                    let e = Element {
                        name,
                        id: id.unwrap_or_else(ElemId::fresh),
                        content: match text {
                            Some(t) => Content::Text(t),
                            None => Content::Elements(children),
                        },
                    };
                    match stack.last_mut() {
                        Some(parent) => parent.2.push(e),
                        None => root = Some(e),
                    }
                }
                XmlEvent::Eof => return Ok(Document::new(root.expect("root closed"))),
            }
        }
    }

    /// Serialized forms agree (IDs are fresh per parse, so compare text).
    fn assert_agrees(src: &str) {
        let cfg = mix_xml::WriteConfig {
            indent: None,
            write_ids: true,
        };
        match (parse_document(src), rebuild(src)) {
            (Ok(a), Ok(b)) => assert_eq!(
                mix_xml::write_document(&a, cfg),
                mix_xml::write_document(&b, cfg),
                "disagreement on {src:?}"
            ),
            (Err(_), Err(_)) => {}
            (a, b) => panic!(
                "parser {:?} vs reader {:?} on {src:?}",
                a.map(|d| mix_xml::write_document(&d, cfg)),
                b.map(|d| mix_xml::write_document(&d, cfg)),
            ),
        }
    }

    #[test]
    fn event_shape() {
        let evs = events(r#"<a id="x"><b>hi</b><c/></a>"#).unwrap();
        use XmlEvent::*;
        assert_eq!(
            evs,
            vec![
                Open {
                    name: Name::intern("a"),
                    id: Some(ElemId::named("x"))
                },
                Open {
                    name: Name::intern("b"),
                    id: None
                },
                Text("hi".into()),
                Close {
                    name: Name::intern("b")
                },
                Open {
                    name: Name::intern("c"),
                    id: None
                },
                Close {
                    name: Name::intern("c")
                },
                Close {
                    name: Name::intern("a")
                },
            ]
        );
    }

    #[test]
    fn agrees_with_inmemory_parser_on_accepts_and_rejects() {
        for src in [
            r#"<professor id="p1"><firstName>Yannis</firstName><teaches/></professor>"#,
            "<a><b/><b/></a>",
            "<publication><journal></></>",
            "<a>\n  <b/>\n  <c/>\n</a>",
            "<name>  CS &amp; Engineering </name>",
            "<a></a>",
            "<a>  </a>",
            "<a>text<b/></a>",
            "<a><b/>text</a>",
            r#"<a href="x"/>"#,
            "<a></b>",
            "<a>",
            "<?xml version=\"1.0\"?>\n<!-- dept -->\n<a><b/></a>",
            "<a><!-- inside --><b/></a>",
            r#"<a><b id="x"/><c id="x"/></a>"#,
            r#"<a><b id="x"/><c id="y"/></a>"#,
            "<a/><b/>",
            "<a>x<!-- c -->y</a>",
            "<a>x <!-- c --> y</a>",
            "<a><b/> <!-- c --> x</a>",
            "<t>a &lt; b &amp; c</t>",
            "<a attr='x'/>",
            "<a id='p' id='q'/>",
            "<x>&quot;&apos;</x>",
            "<a><b>  </b></a>",
        ] {
            assert_agrees(src);
        }
    }

    #[test]
    fn small_read_chunks_do_not_change_events() {
        // A reader that trickles one byte at a time exercises every
        // refill boundary (entities, tags, names split across reads).
        struct OneByte<'a>(&'a [u8], usize);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let src = "<dept>\n <prof id=\"p1\"><nm>Y &amp; Z</nm><t/></prof>\n</dept>";
        let mut whole = EventReader::new(Cursor::new(src.as_bytes().to_vec()));
        let mut trickle = EventReader::new(OneByte(src.as_bytes(), 0));
        loop {
            let a = whole.next_event().unwrap();
            let b = trickle.next_event().unwrap();
            assert_eq!(a, b);
            if a == XmlEvent::Eof {
                break;
            }
        }
    }

    #[test]
    fn multibyte_names_and_text_survive_split_reads() {
        let src = "<café>søren — ∀x</café>";
        assert_agrees(src);
        struct TwoBytes<'a>(&'a [u8], usize);
        impl Read for TwoBytes<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = (self.0.len() - self.1).min(2);
                buf[..n].copy_from_slice(&self.0[self.1..self.1 + n]);
                self.1 += n;
                Ok(n)
            }
        }
        let mut r = EventReader::new(TwoBytes(src.as_bytes(), 0));
        assert!(matches!(r.next_event().unwrap(), XmlEvent::Open { .. }));
        assert_eq!(r.next_event().unwrap(), XmlEvent::Text("søren — ∀x".into()));
    }

    #[test]
    fn multibyte_comment_survives_trickle_reads() {
        // The comment skipper trims its window by raw byte count; with
        // 1-byte reads the trim lands inside the multi-byte characters
        // unless it is widened back to a char boundary (regression:
        // slice panic "byte index is not a char boundary").
        struct OneByte<'a>(&'a [u8], usize);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        for src in [
            "<a><!--€€€--><b/></a>",
            "<?π — ∀x?><a>t</a>",
            "<a>x<!-- søren — café -->y</a>",
        ] {
            let mut whole = EventReader::new(Cursor::new(src.as_bytes().to_vec()));
            let mut trickle = EventReader::new(OneByte(src.as_bytes(), 0));
            loop {
                let a = whole.next_event().unwrap();
                let b = trickle.next_event().unwrap();
                assert_eq!(a, b, "in {src:?}");
                if a == XmlEvent::Eof {
                    break;
                }
            }
        }
    }

    #[test]
    fn buffer_stays_bounded_on_wide_documents() {
        // 20k siblings: the window must not grow with the document.
        let mut src = String::from("<root>");
        for i in 0..20_000 {
            src.push_str(&format!("<leaf>v{i}</leaf>"));
        }
        src.push_str("</root>");
        let mut r = EventReader::new(Cursor::new(src.clone().into_bytes()));
        loop {
            if r.next_event().unwrap() == XmlEvent::Eof {
                break;
            }
        }
        assert_eq!(r.bytes_read(), src.len() as u64);
        assert!(
            r.buffer_high_water() <= 2 * READ_CHUNK,
            "window grew to {}",
            r.buffer_high_water()
        );
    }

    #[test]
    fn eof_is_sticky() {
        let mut r = EventReader::new(Cursor::new(b"<a/>".to_vec()));
        let mut n = 0;
        while r.next_event().unwrap() != XmlEvent::Eof {
            n += 1;
        }
        assert_eq!(n, 2);
        assert_eq!(r.next_event().unwrap(), XmlEvent::Eof);
    }
}
