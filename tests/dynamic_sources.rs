//! Dynamic sources: the paper's motivating "environments with dynamic and
//! unknown information". When a site's schema changes, the mediator
//! re-infers the affected view DTDs and reports which changed, so stacked
//! mediators can cascade the update.

use mix::dtd::paper::d1_department;
use mix::prelude::*;
use mix::relang::symbol::name;
use std::sync::Arc;

fn dept_doc() -> Document {
    parse_document(
        "<department><name>CS</name>\
           <professor><firstName>Y</firstName><lastName>P</lastName>\
             <publication><title>a</title><author>x</author><journal/></publication>\
             <teaches/></professor>\
           <gradStudent><firstName>G</firstName><lastName>S</lastName>\
             <publication><title>b</title><author>x</author><journal/></publication>\
           </gradStudent></department>",
    )
    .unwrap()
}

/// D1 after a schema evolution: gradStudents may now have no publications.
fn d1_evolved() -> Dtd {
    parse_compact(
        "{<department : name, professor+, gradStudent+, course*>\
          <professor : firstName, lastName, publication+, teaches>\
          <gradStudent : firstName, lastName, publication*>\
          <publication : title, author+, (journal | conference)>\
          <teaches : EMPTY> <journal : EMPTY> <conference : EMPTY> <course : EMPTY>}",
    )
    .unwrap()
}

#[test]
fn schema_evolution_reinfers_affected_views() {
    let mut m = Mediator::new();
    m.add_source(
        "cs",
        Arc::new(XmlSource::new(d1_department(), dept_doc()).unwrap()),
    );
    // view 1: gradStudent publications — its DTD depends on the evolved part
    let v1 =
        parse_query("gsPubs = SELECT X WHERE <department> <gradStudent> X:<publication/> </> </>")
            .unwrap();
    // view 2: professor first names — unaffected by the evolution
    let v2 =
        parse_query("profNames = SELECT F WHERE <department> <professor> F:<firstName/> </> </>")
            .unwrap();
    m.register_view("cs", &v1).unwrap();
    m.register_view("cs", &v2).unwrap();

    // before: every gradStudent has ≥1 publication, so gsPubs is publication+
    let before = m.view(name("gsPubs")).unwrap().inferred.dtd.clone();
    assert!(equivalent(
        before.get(name("gsPubs")).unwrap().regex().unwrap(),
        &parse_regex("publication+").unwrap()
    ));

    // the site evolves: gradStudent : publication*
    let changed = m
        .replace_source(
            "cs",
            Arc::new(XmlSource::new(d1_evolved(), dept_doc()).unwrap()),
        )
        .unwrap();
    assert_eq!(
        changed,
        vec![name("gsPubs")],
        "only the affected view changes"
    );

    let after = m.view(name("gsPubs")).unwrap().inferred.dtd.clone();
    assert!(equivalent(
        after.get(name("gsPubs")).unwrap().regex().unwrap(),
        &parse_regex("publication*").unwrap()
    ));
    // the unaffected view kept its DTD
    let prof = m.view(name("profNames")).unwrap().inferred.dtd.clone();
    assert!(equivalent(
        prof.get(name("profNames")).unwrap().regex().unwrap(),
        &parse_regex("firstName+").unwrap()
    ));
}

#[test]
fn union_views_reinfer_on_part_evolution() {
    let mut m = Mediator::new();
    m.add_source(
        "a",
        Arc::new(XmlSource::new(d1_department(), dept_doc()).unwrap()),
    );
    m.add_source(
        "b",
        Arc::new(XmlSource::new(d1_department(), dept_doc()).unwrap()),
    );
    let q =
        parse_query("pubs = SELECT X WHERE <department> <gradStudent> X:<publication/> </> </>")
            .unwrap();
    m.register_union_view("allGsPubs", &[("a", q.clone()), ("b", q)])
        .unwrap();
    let before = m
        .union_view(name("allGsPubs"))
        .unwrap()
        .inferred
        .dtd
        .clone();
    assert!(equivalent(
        before.get(name("allGsPubs")).unwrap().regex().unwrap(),
        &parse_regex("publication+, publication+").unwrap()
    ));
    let changed = m
        .replace_source(
            "b",
            Arc::new(XmlSource::new(d1_evolved(), dept_doc()).unwrap()),
        )
        .unwrap();
    assert_eq!(changed, vec![name("allGsPubs")]);
    let after = m
        .union_view(name("allGsPubs"))
        .unwrap()
        .inferred
        .dtd
        .clone();
    assert!(equivalent(
        after.get(name("allGsPubs")).unwrap().regex().unwrap(),
        &parse_regex("publication+, publication*").unwrap()
    ));
}

#[test]
fn replacing_unknown_source_errors() {
    let mut m = Mediator::new();
    let err = m.replace_source(
        "ghost",
        Arc::new(XmlSource::new(d1_department(), dept_doc()).unwrap()),
    );
    assert!(matches!(err, Err(MediatorError::UnknownSource(_))));
}

#[test]
fn unchanged_swap_reports_nothing() {
    let mut m = Mediator::new();
    m.add_source(
        "cs",
        Arc::new(XmlSource::new(d1_department(), dept_doc()).unwrap()),
    );
    let v =
        parse_query("profNames = SELECT F WHERE <department> <professor> F:<firstName/> </> </>")
            .unwrap();
    m.register_view("cs", &v).unwrap();
    // same schema, different document: the DTD is unchanged
    let changed = m
        .replace_source(
            "cs",
            Arc::new(XmlSource::new(d1_department(), dept_doc()).unwrap()),
        )
        .unwrap();
    assert!(changed.is_empty());
}
