//! Wrappers and sources.
//!
//! In the MIX architecture (Section 1) *wrappers* conceptually export the
//! source data as XML together with a DTD, and answer queries against it.
//! [`Wrapper`] is that interface; [`XmlSource`] is the standard
//! implementation backed by an in-memory document (our stand-in for the
//! paper's web sources and repositories); mediators themselves implement
//! `Wrapper` for stacking ("mediators can be stacked on top of
//! mediators").
//!
//! Both operations are fallible — real sources time out, emit malformed
//! XML, or ship documents that stopped validating against their
//! advertised DTD — and return [`SourceError`]. The mediator's resilience
//! layer ([`crate::resilience`]) decides what a failure means for the
//! overall answer.

use crate::error::SourceError;
use crate::wire::net_to_source_error;
use mix_dtd::{validate_document, Dtd, ValidationError};
use mix_net::{ClientConfig, Msg, Pool};
use mix_xmas::{evaluate, normalize, Query};
use mix_xml::{Content, Document, ElemId, Element};

/// Anything that exports XML data typed by a DTD and answers pick-element
/// queries about it.
pub trait Wrapper: Send + Sync {
    /// The DTD of the exported data.
    fn dtd(&self) -> &Dtd;

    /// The full exported document.
    fn fetch(&self) -> Result<Document, SourceError>;

    /// Answers a query whose condition is rooted at this source's document
    /// type. The default implementation evaluates over [`Wrapper::fetch`];
    /// real wrappers would push the query to the underlying system.
    ///
    /// A query that fails normalization is *rejected* (as
    /// [`SourceError::Query`]) rather than evaluated unnormalized: the
    /// unnormalized form has unexpanded wildcards and unassigned tags, so
    /// "guessing" with it could silently return wrong members.
    fn answer(&self, q: &Query) -> Result<Document, SourceError> {
        let nq = normalize(q, self.dtd())?;
        let doc = self.fetch()?;
        Ok(evaluate(&nq, &doc))
    }

    /// Answers a batch of queries, one result per query **in input
    /// order**, each failing independently. The default implementation
    /// just loops [`Wrapper::answer`]; wrappers with a pipelined
    /// transport (notably [`RemoteWrapper`]) override it to issue the
    /// whole batch concurrently without spawning a thread per query.
    fn answer_batch(&self, queries: &[Query]) -> Vec<Result<Document, SourceError>> {
        queries.iter().map(|q| self.answer(q)).collect()
    }
}

impl Wrapper for std::sync::Arc<dyn Wrapper> {
    fn dtd(&self) -> &Dtd {
        (**self).dtd()
    }

    fn fetch(&self) -> Result<Document, SourceError> {
        (**self).fetch()
    }

    fn answer(&self, q: &Query) -> Result<Document, SourceError> {
        (**self).answer(q)
    }

    fn answer_batch(&self, queries: &[Query]) -> Vec<Result<Document, SourceError>> {
        (**self).answer_batch(queries)
    }
}

/// A source holding one valid XML document — the repository behind a
/// wrapper.
pub struct XmlSource {
    dtd: Dtd,
    document: Document,
}

impl XmlSource {
    /// Creates a source, validating the document against the DTD.
    pub fn new(dtd: Dtd, document: Document) -> Result<XmlSource, ValidationError> {
        validate_document(&dtd, &document)?;
        Ok(XmlSource { dtd, document })
    }

    /// Replaces the document (sources are dynamic), re-validating. On
    /// failure the previous document — the last known good one — stays in
    /// place and keeps serving fetches.
    pub fn update(&mut self, document: Document) -> Result<(), ValidationError> {
        validate_document(&self.dtd, &document)?;
        self.document = document;
        Ok(())
    }

    /// The currently served document.
    pub fn document(&self) -> &Document {
        &self.document
    }
}

impl Wrapper for XmlSource {
    fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    fn fetch(&self) -> Result<Document, SourceError> {
        Ok(self.document.clone())
    }
}

/// A wrapper decorator that sleeps for a fixed duration on every fetch,
/// simulating the round-trip latency of a remote source.
///
/// The in-memory [`XmlSource`] answers in microseconds, which makes
/// single-machine throughput experiments meaningless for a *mediator*:
/// real MIX sources are web sites, so a serving layer earns its keep by
/// overlapping source waits, not by burning more CPU. Benchmarks (X15)
/// and the `mixctl serve --bench` driver wrap sources in this to measure
/// that overlap honestly.
pub struct LatencyWrapper<W> {
    inner: W,
    latency: std::time::Duration,
}

impl<W: Wrapper> LatencyWrapper<W> {
    /// Wraps `inner`, adding `latency` to every fetch.
    pub fn new(inner: W, latency: std::time::Duration) -> LatencyWrapper<W> {
        LatencyWrapper { inner, latency }
    }

    /// The simulated per-fetch round-trip latency.
    pub fn latency(&self) -> std::time::Duration {
        self.latency
    }

    /// The wrapped source.
    pub fn inner(&self) -> &W {
        &self.inner
    }
}

impl<W: Wrapper> Wrapper for LatencyWrapper<W> {
    fn dtd(&self) -> &Dtd {
        self.inner.dtd()
    }

    fn fetch(&self) -> Result<Document, SourceError> {
        std::thread::sleep(self.latency);
        self.inner.fetch()
    }
}

/// A wrapper served by a remote `mixctl serve-source` daemon, reached over
/// the mix-net wire protocol (DESIGN.md §9).
///
/// The DTD is fetched **once**, at connection time — exactly like the
/// paper's source registration, where a wrapper exports its DTD to the
/// mediator up front. Queries are normalized *locally* against that DTD
/// before being sent, so an ill-formed query is rejected with the same
/// structured [`SourceError::Query`] an in-process wrapper raises, and the
/// wire only ever carries normalizable queries.
///
/// Transport failures (refused connections, deadline expiries, mid-frame
/// disconnects) and forwarded remote faults all map onto [`SourceError`]
/// (see [`crate::wire`]), so the resilience layer — retries, circuit
/// breakers, union-view degradation — drives a remote source exactly like
/// a local one. Exchanges run over a small connection [`Pool`], making the
/// wrapper safe to share across the mediator's serving threads.
///
/// Repeated answers are hash-consed: the parse of each distinct reply
/// body is memoized, and a repeat serves a clone with
/// [`Document::refresh_auto_ids`] applied so ID-based deduplication in
/// downstream evaluation still sees distinct nodes. The memo is keyed by
/// the *full reply text*, so a source that starts answering differently
/// simply misses — cached entries can never go stale, only cold.
pub struct RemoteWrapper {
    pool: Pool,
    dtd: Dtd,
    parse_memo: std::sync::Mutex<ParseMemo>,
    memo_hits: mix_obs::Counter,
    memo_misses: mix_obs::Counter,
    memo_evictions: mix_obs::Counter,
    sat_pruned: mix_obs::Counter,
}

impl std::fmt::Debug for RemoteWrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteWrapper")
            .field("pool", &self.pool)
            .finish_non_exhaustive()
    }
}

/// Distinct reply bodies the parse memo holds before it is wiped and
/// rebuilt. Entries are whole answer documents, so the bound is about
/// memory, not hit rate: a mediator's working set of view answers is far
/// smaller than this.
const PARSE_MEMO_CAP: usize = 128;

/// A reply body larger than this bypasses the memo entirely: one
/// streaming-scale answer must not pin megabytes in the cache for a
/// speculative repeat.
const PARSE_MEMO_MAX_ENTRY_BYTES: usize = 1 << 20;

/// Total reply-text bytes the memo may hold (the parsed documents cost a
/// small multiple of this; the reply text is the accounted proxy since
/// it is the key we must keep anyway).
const PARSE_MEMO_MAX_BYTES: usize = 16 << 20;

/// The parse memo with its size accounting: bounded by entry count
/// ([`PARSE_MEMO_CAP`]) and by total reply-text bytes
/// ([`PARSE_MEMO_MAX_BYTES`]); oversized replies
/// ([`PARSE_MEMO_MAX_ENTRY_BYTES`]) are never admitted. Overflow wipes
/// the whole memo (wipe-and-rebuild keeps the hit path a single hash
/// lookup; entries can never go stale, only cold, so the wipe costs
/// re-parses, not correctness).
struct ParseMemo {
    map: std::collections::HashMap<String, Document>,
    bytes: usize,
}

impl ParseMemo {
    fn new() -> ParseMemo {
        ParseMemo {
            map: std::collections::HashMap::new(),
            bytes: 0,
        }
    }

    fn get(&self, xml: &str) -> Option<&Document> {
        self.map.get(xml)
    }

    /// Admits a parsed reply; returns the number of entries evicted to
    /// make room (0 when nothing was wiped or the reply was too large to
    /// admit at all).
    fn insert(&mut self, xml: String, doc: Document) -> u64 {
        if xml.len() > PARSE_MEMO_MAX_ENTRY_BYTES {
            return 0;
        }
        let mut evicted = 0;
        if self.map.len() >= PARSE_MEMO_CAP || self.bytes + xml.len() > PARSE_MEMO_MAX_BYTES {
            evicted = self.map.len() as u64;
            self.map.clear();
            self.bytes = 0;
        }
        let len = xml.len();
        self.bytes += len;
        // Two threads can miss on the same reply and both insert; the
        // replaced entry's key is the same text, so undo its accounting.
        if self.map.insert(xml, doc).is_some() {
            self.bytes -= len;
        }
        evicted
    }
}

impl RemoteWrapper {
    /// Connects to `addr` (`host:port`) with default client settings and
    /// registers the remote source by fetching its exported DTD.
    pub fn connect(addr: &str) -> Result<RemoteWrapper, SourceError> {
        RemoteWrapper::connect_with(addr, ClientConfig::default())
    }

    /// [`RemoteWrapper::connect`] with explicit timeouts and pool size.
    pub fn connect_with(addr: &str, config: ClientConfig) -> Result<RemoteWrapper, SourceError> {
        let pool = Pool::new(addr, config);
        let reply = pool
            .request(Msg::ExportDtd(String::new()))
            .map_err(|e| net_to_source_error(addr, config.io_timeout.as_millis() as u64, e))?;
        let text = match reply {
            Msg::ExportDtd(text) => text,
            other => {
                return Err(SourceError::MalformedXml(format!(
                    "{addr}: expected an ExportDtd reply, got {:?}",
                    other.msg_type()
                )))
            }
        };
        let dtd = mix_dtd::parse_compact(&text)
            .map_err(|e| SourceError::DtdInvalid(format!("{addr}: exported DTD: {e}")))?;
        Ok(RemoteWrapper {
            pool,
            dtd,
            parse_memo: std::sync::Mutex::new(ParseMemo::new()),
            memo_hits: mix_obs::global().counter("wire_parse_memo_hits_total"),
            memo_misses: mix_obs::global().counter("wire_parse_memo_misses_total"),
            memo_evictions: mix_obs::global().counter("wire_parse_memo_evictions_total"),
            sat_pruned: mix_obs::global().counter("sat_pruned_total"),
        })
    }

    /// The remote address this wrapper dials.
    pub fn addr(&self) -> &str {
        self.pool.addr()
    }

    /// Connections the underlying pool currently considers live. Mostly
    /// for tests and diagnostics: after a daemon dies, this drops to
    /// zero as soon as the client has *observed* the death, which is the
    /// moment failure behavior becomes deterministic.
    pub fn live_connections(&self) -> usize {
        self.pool.idle_connections()
    }

    /// Parses an answer body through the hash-consing memo: a repeat of a
    /// reply already parsed serves a clone (a few µs) instead of re-running
    /// the parser, with fresh auto IDs so the copy is indistinguishable
    /// from an independent parse.
    fn parse_answer(&self, xml: String) -> Result<Document, SourceError> {
        fn lock(m: &std::sync::Mutex<ParseMemo>) -> std::sync::MutexGuard<'_, ParseMemo> {
            m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }
        if let Some(cached) = lock(&self.parse_memo).get(&xml) {
            let mut doc = cached.clone();
            doc.refresh_auto_ids();
            self.memo_hits.inc();
            return Ok(doc);
        }
        // parse outside the lock — misses are the expensive path
        let doc = mix_xml::parse_document(&xml)
            .map_err(|e| SourceError::MalformedXml(format!("{}: answer: {e}", self.pool.addr())))?;
        self.memo_misses.inc();
        let evicted = lock(&self.parse_memo).insert(xml, doc.clone());
        if evicted > 0 {
            self.memo_evictions.add(evicted);
        }
        Ok(doc)
    }

    /// One query/answer (or fetch) exchange; an empty query text requests
    /// the full document.
    fn exchange(&self, query_text: String) -> Result<Document, SourceError> {
        let millis = self.pool.config().io_timeout.as_millis() as u64;
        let reply = self
            .pool
            .request(Msg::Query(query_text))
            .map_err(|e| net_to_source_error(self.pool.addr(), millis, e))?;
        match reply {
            Msg::Answer(xml) => self.parse_answer(xml),
            other => Err(SourceError::MalformedXml(format!(
                "{}: expected an Answer reply, got {:?}",
                self.pool.addr(),
                other.msg_type()
            ))),
        }
    }
}

impl Wrapper for RemoteWrapper {
    fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    fn fetch(&self) -> Result<Document, SourceError> {
        self.exchange(String::new())
    }

    fn answer(&self, q: &Query) -> Result<Document, SourceError> {
        // normalize locally: Query faults stay structured and local, and
        // the remote side only ever sees well-formed normalized queries
        let nq = normalize(q, &self.dtd)?;
        // a provably-Unsat query never reaches the wire: the empty
        // answer the daemon would compute is synthesized locally
        if mix_infer::check_sat_memo(q, &self.dtd).is_unsat() {
            self.sat_pruned.inc();
            return Ok(empty_remote_answer(nq.view_name));
        }
        self.exchange(nq.to_string())
    }

    /// The whole batch rides the multiplexed pool as pipelined `Query`
    /// frames — replies are matched back by frame id, so the server may
    /// finish them in any order while this returns them in input order,
    /// with no thread spawned per query. Queries that fail normalization
    /// are rejected locally and never reach the wire, and queries the
    /// satisfiability analyzer proves `Unsat` are answered locally with
    /// the empty document the daemon would have computed.
    fn answer_batch(&self, queries: &[Query]) -> Vec<Result<Document, SourceError>> {
        let millis = self.pool.config().io_timeout.as_millis() as u64;
        let mut results: Vec<Option<Result<Document, SourceError>>> =
            queries.iter().map(|_| None).collect();
        let mut wire: Vec<(usize, Msg)> = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            match normalize(q, &self.dtd) {
                Ok(nq) if mix_infer::check_sat_memo(q, &self.dtd).is_unsat() => {
                    self.sat_pruned.inc();
                    results[i] = Some(Ok(empty_remote_answer(nq.view_name)));
                }
                Ok(nq) => wire.push((i, Msg::Query(nq.to_string()))),
                Err(e) => results[i] = Some(Err(e.into())),
            }
        }
        let replies = self
            .pool
            .request_many(wire.iter().map(|(_, m)| m.clone()).collect());
        for ((i, _), reply) in wire.into_iter().zip(replies) {
            results[i] = Some(match reply {
                Ok(Msg::Answer(xml)) => self.parse_answer(xml),
                Ok(other) => Err(SourceError::MalformedXml(format!(
                    "{}: expected an Answer reply, got {:?}",
                    self.pool.addr(),
                    other.msg_type()
                ))),
                Err(e) => Err(net_to_source_error(self.pool.addr(), millis, e)),
            });
        }
        results
            .into_iter()
            .map(|r| r.expect("every query answered or rejected"))
            .collect()
    }
}

/// The empty answer a source computes for a query with no matches —
/// synthesized locally when the satisfiability analyzer proves a query
/// `Unsat` before any frame is issued.
fn empty_remote_answer(name: mix_relang::symbol::Name) -> Document {
    Document::new(Element {
        name,
        id: ElemId::fresh(),
        content: Content::Elements(vec![]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_dtd::paper::d1_department;
    use mix_xmas::parse_query;
    use mix_xml::parse_document;

    fn doc() -> Document {
        parse_document(
            "<department><name>CS</name>\
               <professor><firstName>Y</firstName><lastName>P</lastName>\
                 <publication><title>t</title><author>a</author><journal/></publication>\
                 <teaches/></professor>\
               <gradStudent><firstName>P</firstName><lastName>V</lastName>\
                 <publication><title>u</title><author>a</author><conference/></publication>\
               </gradStudent></department>",
        )
        .unwrap()
    }

    #[test]
    fn source_validates_on_construction() {
        assert!(XmlSource::new(d1_department(), doc()).is_ok());
        let bad = parse_document("<department><name>CS</name></department>").unwrap();
        assert!(XmlSource::new(d1_department(), bad).is_err());
    }

    #[test]
    fn source_answers_queries() {
        let s = XmlSource::new(d1_department(), doc()).unwrap();
        let q = parse_query("profs = SELECT P WHERE <department> P:<professor/> </department>")
            .unwrap();
        let out = s.answer(&q).unwrap();
        assert_eq!(out.root.children().len(), 1);
        assert_eq!(out.doc_type().as_str(), "profs");
    }

    #[test]
    fn update_revalidates_and_keeps_last_good() {
        let mut s = XmlSource::new(d1_department(), doc()).unwrap();
        let bad = parse_document("<department/>").unwrap();
        assert!(s.update(bad).is_err());
        // the rejected update did not poison the source: the last known
        // good document still serves
        let served = s.fetch().unwrap();
        assert_eq!(served.root.children().len(), 3);
        assert!(s.update(doc()).is_ok());
    }

    #[test]
    fn latency_wrapper_delays_but_preserves_answers() {
        let plain = XmlSource::new(d1_department(), doc()).unwrap();
        let slow = LatencyWrapper::new(
            XmlSource::new(d1_department(), doc()).unwrap(),
            std::time::Duration::from_millis(5),
        );
        let q = parse_query("profs = SELECT P WHERE <department> P:<professor/> </department>")
            .unwrap();
        let t0 = std::time::Instant::now();
        let a = slow.answer(&q).unwrap();
        assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
        let b = plain.answer(&q).unwrap();
        assert!(mix_xml::same_structural_class(&a.root, &b.root));
        assert!(mix_dtd::same_documents(slow.dtd(), plain.dtd()));
    }

    fn serve_local() -> (mix_net::ServerHandle, String) {
        let service =
            crate::wire::WrapperService::new(XmlSource::new(d1_department(), doc()).unwrap());
        let h = mix_net::Server::bind(
            "127.0.0.1:0",
            std::sync::Arc::new(service),
            mix_net::ServerConfig::default(),
        )
        .unwrap()
        .spawn()
        .unwrap();
        let addr = h.addr().to_string();
        (h, addr)
    }

    #[test]
    fn remote_wrapper_agrees_with_in_process_wrapper() {
        let (server, addr) = serve_local();
        let remote = RemoteWrapper::connect(&addr).unwrap();
        let local = XmlSource::new(d1_department(), doc()).unwrap();
        assert!(mix_dtd::same_documents(remote.dtd(), local.dtd()));
        let q = parse_query("profs = SELECT P WHERE <department> P:<professor/> </department>")
            .unwrap();
        // node ids are allocation-order artifacts; the serialized answers
        // must be byte-identical
        let xml = |d: &Document| mix_xml::write_document(d, mix_xml::WriteConfig::default());
        assert_eq!(
            xml(&remote.answer(&q).unwrap()),
            xml(&local.answer(&q).unwrap())
        );
        assert_eq!(xml(&remote.fetch().unwrap()), xml(&local.fetch().unwrap()));
        server.shutdown();
    }

    #[test]
    fn memoized_answer_parses_are_byte_identical_with_disjoint_ids() {
        let (server, addr) = serve_local();
        let remote = RemoteWrapper::connect(&addr).unwrap();
        let q = parse_query("profs = SELECT P WHERE <department> P:<professor/> </department>")
            .unwrap();
        // first answer parses, the repeats come from the memo
        let answers: Vec<Document> = (0..3).map(|_| remote.answer(&q).unwrap()).collect();
        let xml = |d: &Document| mix_xml::write_document(d, mix_xml::WriteConfig::default());
        assert_eq!(xml(&answers[0]), xml(&answers[1]));
        assert_eq!(xml(&answers[0]), xml(&answers[2]));
        // the memo hands out clones, but evaluation dedups picked elements
        // by id — so each copy must carry its own fresh ids, or gluing two
        // of them into one constructed document would silently drop nodes
        let mut seen = std::collections::HashSet::new();
        for a in &answers {
            for e in a.root.walk() {
                assert!(seen.insert(e.id), "id {:?} appears in two answers", e.id);
            }
        }
        server.shutdown();
    }

    #[test]
    fn unsat_remote_queries_never_reach_the_wire() {
        let (server, addr) = serve_local();
        let remote = RemoteWrapper::connect(&addr).unwrap();
        let local = XmlSource::new(d1_department(), doc()).unwrap();
        // D1's professor model has no course child: provably Unsat
        let unsat = parse_query(
            "none = SELECT C WHERE <department> <professor> C:<course/> </> </department>",
        )
        .unwrap();
        let sat = parse_query("profs = SELECT P WHERE <department> P:<professor/> </department>")
            .unwrap();
        let xml = |d: &Document| mix_xml::write_document(d, mix_xml::WriteConfig::default());
        assert_eq!(
            xml(&remote.answer(&unsat).unwrap()),
            xml(&local.answer(&unsat).unwrap())
        );
        // batch: the pruned item is answered in place, the rest still wire
        let batch = remote.answer_batch(std::slice::from_ref(&sat));
        assert_eq!(
            xml(batch[0].as_ref().unwrap()),
            xml(&local.answer(&sat).unwrap())
        );
        let batch = remote.answer_batch(&[sat.clone(), unsat.clone()]);
        assert_eq!(
            xml(batch[1].as_ref().unwrap()),
            xml(&local.answer(&unsat).unwrap())
        );
        // the proof holds with the daemon gone: Unsat queries still answer
        server.shutdown();
        assert_eq!(
            xml(&remote.answer(&unsat).unwrap()),
            xml(&local.answer(&unsat).unwrap())
        );
    }

    #[test]
    fn remote_wrapper_rejects_bad_queries_locally() {
        let (server, addr) = serve_local();
        let remote = RemoteWrapper::connect(&addr).unwrap();
        let q = parse_query("profs = SELECT Z WHERE <department> P:<professor/> </department>")
            .unwrap();
        match remote.answer(&q) {
            Err(SourceError::Query(_)) => {}
            other => panic!("expected a structured Query error, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn dead_remote_is_unavailable_with_a_deterministic_message() {
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        match RemoteWrapper::connect(&addr) {
            Err(SourceError::Unavailable(msg)) => {
                assert_eq!(msg, format!("{addr}: connection refused"));
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }
    }

    #[test]
    fn killed_daemon_mid_session_is_a_transient_then_unavailable_fault() {
        let (server, addr) = serve_local();
        let remote = RemoteWrapper::connect(&addr).unwrap();
        remote.fetch().unwrap();
        server.shutdown();
        // the pooled connection dies first (transient-class transport
        // fault), then fresh dials are refused outright
        let first = remote.fetch().unwrap_err();
        assert!(first.is_source_fault(), "got {first:?}");
        match remote.fetch() {
            Err(SourceError::Unavailable(_)) => {}
            other => panic!("expected Unavailable after daemon kill, got {other:?}"),
        }
    }

    #[test]
    fn parse_memo_is_bounded_by_entries_and_bytes() {
        let small = parse_document("<a/>").unwrap();
        let mut memo = ParseMemo::new();

        // entry-count bound: the cap'th distinct insert wipes the memo
        for i in 0..PARSE_MEMO_CAP {
            assert_eq!(memo.insert(format!("<a id='k{i}'/>"), small.clone()), 0);
        }
        let evicted = memo.insert("<a id='straw'/>".into(), small.clone());
        assert_eq!(evicted, PARSE_MEMO_CAP as u64);
        assert!(memo.get("<a id='straw'/>").is_some());
        assert!(memo.get("<a id='k0'/>").is_none());

        // byte bound: a few large (but admissible) entries trip it long
        // before the entry cap
        let mut memo = ParseMemo::new();
        let big = "x".repeat(PARSE_MEMO_MAX_ENTRY_BYTES - 8);
        let fits = PARSE_MEMO_MAX_BYTES / PARSE_MEMO_MAX_ENTRY_BYTES;
        for i in 0..fits {
            assert_eq!(memo.insert(format!("{big}{i}"), small.clone()), 0, "i={i}");
        }
        assert!(memo.insert(format!("{big}{fits}"), small.clone()) > 0);
    }

    #[test]
    fn reinserting_the_same_reply_does_not_double_count_bytes() {
        // Two threads can both miss on the same reply and insert it;
        // the replacement must not inflate the byte accounting
        // (regression: the counter only drifted upward, forcing
        // premature full wipes).
        let small = parse_document("<a/>").unwrap();
        let mut memo = ParseMemo::new();
        let xml = "<a id='dup'/>".to_string();
        memo.insert(xml.clone(), small.clone());
        let once = memo.bytes;
        memo.insert(xml.clone(), small.clone());
        memo.insert(xml, small);
        assert_eq!(memo.bytes, once);
        assert_eq!(memo.map.len(), 1);
    }

    #[test]
    fn oversized_replies_bypass_the_memo() {
        let small = parse_document("<a/>").unwrap();
        let mut memo = ParseMemo::new();
        let huge = "y".repeat(PARSE_MEMO_MAX_ENTRY_BYTES + 1);
        assert_eq!(memo.insert(huge.clone(), small), 0);
        assert!(
            memo.get(&huge).is_none(),
            "oversized reply must not be cached"
        );
        assert_eq!(memo.bytes, 0);
    }

    #[test]
    fn unnormalizable_query_is_rejected_not_guessed() {
        let s = XmlSource::new(d1_department(), doc()).unwrap();
        // SELECT over a variable no condition binds: normalization fails,
        // and `answer` must surface that instead of evaluating the raw
        // query
        let q = parse_query("profs = SELECT Z WHERE <department> P:<professor/> </department>")
            .unwrap();
        match s.answer(&q) {
            Err(SourceError::Query(_)) => {}
            other => panic!("expected Query error, got {other:?}"),
        }
    }
}
