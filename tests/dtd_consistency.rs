//! Consistency properties of the DTD substrate on random DTDs: parsing
//! roundtrips, validation vs sampling vs enumeration vs counting vs
//! tightness comparison must all tell the same story.

use mix::dtd::analysis::usable;
use mix::dtd::enumerate::enumerate_documents;
use mix::dtd::generate::{seeded_dtd, DtdGenConfig};
use mix::dtd::sample::{sample_documents, DocConfig};
use mix::prelude::*;

fn small_cfg() -> DtdGenConfig {
    DtdGenConfig {
        names: 6,
        regex_depth: 2,
        ..DtdGenConfig::default()
    }
}

/// Display → parse roundtrip for random DTDs.
#[test]
fn display_parse_roundtrip() {
    for seed in 0..60u64 {
        let d = seeded_dtd(seed, &DtdGenConfig::default());
        let shown = d
            .to_string()
            .replace(&format!("(document type: {})", d.doc_type), "");
        let again = parse_compact(&shown).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{d}"));
        assert_eq!(d, again, "roundtrip mismatch for seed {seed}");
    }
}

/// Sampled documents validate; enumerated documents validate; counting
/// matches enumeration (within the enumeration cap).
#[test]
fn sampling_enumeration_counting_agree() {
    for seed in 0..30u64 {
        let d = seeded_dtd(seed, &small_cfg());
        for doc in sample_documents(&d, 20, seed, DocConfig::default()) {
            assert!(
                validate_document(&d, &doc).is_ok(),
                "seed {seed}: sampled document invalid"
            );
        }
        let max = 7;
        let enumerated = enumerate_documents(&d, max, 200_000);
        for doc in &enumerated {
            assert!(validate_document(&d, doc).is_ok());
        }
        let counted: u128 = count_documents_by_size(&d, max).iter().sum();
        assert_eq!(
            counted,
            enumerated.len() as u128,
            "seed {seed}: count vs enumerate"
        );
    }
}

/// `tighter_than` is a preorder consistent with document membership:
/// every sampled document of A satisfies B whenever A ≤ B.
#[test]
fn tighter_than_respects_membership() {
    for seed in 0..25u64 {
        let a = seeded_dtd(seed, &small_cfg());
        let b = seeded_dtd(seed + 1, &small_cfg());
        // reflexivity
        assert!(tighter_than(&a, &a).holds(), "seed {seed}: not reflexive");
        if tighter_than(&a, &b).holds() {
            for doc in sample_documents(&a, 25, seed * 3, DocConfig::default()) {
                assert!(
                    validate_document(&b, &doc).is_ok(),
                    "seed {seed}: A ≤ B but an A-document violates B"
                );
            }
        } else {
            // a witness must exist among small documents of A... only when
            // the failure is a real language gap (search bounded).
            let found = enumerate_documents(&a, 8, 50_000)
                .iter()
                .any(|doc| validate_document(&b, doc).is_err());
            // Not finding one is fine (witness may be bigger); finding one
            // is consistent. Just make sure validation never panics.
            let _ = found;
        }
    }
}

/// An s-DTD built from a plain DTD accepts exactly the same documents.
#[test]
fn sdtd_embedding_is_faithful() {
    for seed in 0..25u64 {
        let d = seeded_dtd(seed, &small_cfg());
        let sd = mix::dtd::SDtd::from_dtd(&d);
        for doc in sample_documents(&d, 15, seed, DocConfig::default()) {
            assert!(sdtd_satisfies(&sd, &doc), "seed {seed}");
        }
        // counting agrees too
        let a = count_documents_by_size(&d, 7);
        let b = count_sdocuments_by_size(&sd, 7);
        assert_eq!(a, b, "seed {seed}: plain vs s-DTD counting");
    }
}

/// XML writer → parser roundtrip on sampled documents.
#[test]
fn document_write_parse_roundtrip() {
    for seed in 0..30u64 {
        let d = seeded_dtd(seed, &DtdGenConfig::default());
        for doc in sample_documents(&d, 10, seed + 7, DocConfig::default()) {
            for cfg in [
                WriteConfig::default(),
                WriteConfig {
                    indent: None,
                    write_ids: true,
                },
            ] {
                let text = write_document(&doc, cfg);
                let again = parse_document(&text)
                    .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{text}"));
                assert!(
                    mix::xml::same_structural_class(&doc.root, &again.root),
                    "seed {seed}: structural mismatch after roundtrip"
                );
                assert!(validate_document(&d, &again).is_ok());
            }
        }
    }
}

/// Usability analysis agrees with reality: every name that occurs in a
/// sampled document is `usable`.
#[test]
fn usable_names_cover_sampled_documents() {
    for seed in 0..30u64 {
        let d = seeded_dtd(seed, &DtdGenConfig::default());
        let u = usable(&d);
        for doc in sample_documents(&d, 15, seed * 11, DocConfig::default()) {
            for e in doc.root.walk() {
                assert!(
                    u.contains(&e.name),
                    "seed {seed}: sampled name {} not deemed usable",
                    e.name
                );
            }
        }
    }
}
