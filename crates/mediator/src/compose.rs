//! View–query composition.
//!
//! "It first combines the incoming query and the view into a query which
//! refers directly to the source data" (Section 1, describing TSIMMIS —
//! MIX inherits the architecture). For pick-element queries over
//! pick-element views, composition grafts the user query's condition on
//! the view's members onto the view definition's pick node, producing one
//! query the wrapper can answer without materializing the view.
//!
//! Composition applies when the user query constrains a *single* view
//! member (its root has exactly one child condition); multi-member
//! correlations fall back to materialization — they can relate picked
//! elements from unrelated positions of the source and are not expressible
//! as one tree condition over the source.
//!
//! A second guard protects the distinct-sibling semantics (Section 4.2's
//! "no two sibling conditions can bind to the same element"): merging the
//! two queries' conditions under the pick node would force *distinct*
//! witnesses even where evaluating over the materialized view lets the
//! same child satisfy a view condition and a user condition. Composition
//! therefore bails whenever a user condition's name test overlaps a view
//! condition's name test at the pick level.

use mix_relang::symbol::Name;
use mix_xmas::{Body, Condition, NameTest, Query, Var};
use std::collections::HashSet;

/// Composes `user` (a query over the view's exported document) with
/// `view` (the view definition over the source), returning a source-level
/// query equivalent to evaluating `user` over the materialized view.
/// `None` when composition does not apply.
pub fn compose(view: &Query, user: &Query) -> Option<Query> {
    // the user query must address the view by name at its root
    if !user.root.test.matches(view.view_name) {
        return None;
    }
    // root-level constraints other than a single member condition defeat
    // composition
    if user.root.var == Some(user.pick) || user.root.id_var.is_some() {
        return None;
    }
    let member_cond = match &user.root.body {
        Body::Children(v) if v.len() == 1 => &v[0],
        Body::Children(v) if v.is_empty() => return None, // picks the root
        _ => return None,
    };
    // the pick must live inside the member condition
    member_cond.path_to_var(user.pick)?;
    let view_pick = view.pick_node()?;
    // intersect the name tests
    let test = intersect(&view_pick.test, &member_cond.test)?;
    // variables of the two queries must not collide (normalization would
    // reject the merged tree); rename is possible but conservatively bail
    let view_vars: HashSet<Var> = view.declared_vars().into_iter().collect();
    if user
        .declared_vars()
        .into_iter()
        .any(|v| view_vars.contains(&v))
    {
        return None;
    }
    // both sides must use children bodies on the pick/member node
    let (Body::Children(view_kids), Body::Children(member_kids)) =
        (&view_pick.body, &member_cond.body)
    else {
        // a Text body on either side: composable only if the other side
        // has no children constraints
        return compose_text(view, user, member_cond);
    };
    // distinct-sibling guard: overlapping name tests at the merge level
    // would make the composed query stricter than the materialized plan
    for vk in view_kids {
        for mk in member_kids {
            if overlaps(&vk.test, &mk.test) {
                return None;
            }
        }
    }
    let mut merged_kids = view_kids.clone();
    merged_kids.extend(member_kids.iter().cloned());
    let merged_pick = Condition {
        test,
        var: member_cond.var.or(view_pick.var),
        id_var: view_pick.id_var.or(member_cond.id_var),
        tag: 0,
        body: Body::Children(merged_kids),
    };
    let root = replace_pick(&view.root, view.pick, &merged_pick)?;
    let mut diseqs = view.diseqs.clone();
    diseqs.extend(user.diseqs.iter().copied());
    Some(Query {
        view_name: user.view_name,
        pick: user.pick,
        root,
        diseqs,
    })
}

/// Text-body corner: the member condition requires string content.
fn compose_text(view: &Query, user: &Query, member_cond: &Condition) -> Option<Query> {
    let view_pick = view.pick_node()?;
    let Body::Children(view_kids) = &view_pick.body else {
        return None;
    };
    if !view_kids.is_empty() {
        // the view requires element children; a text member can't match
        // — composition would need an unsatisfiable condition; bail to
        // materialization which will return empty
        return None;
    }
    let test = intersect(&view_pick.test, &member_cond.test)?;
    let merged_pick = Condition {
        test,
        var: member_cond.var.or(view_pick.var),
        id_var: view_pick.id_var.or(member_cond.id_var),
        tag: 0,
        body: member_cond.body.clone(),
    };
    let root = replace_pick(&view.root, view.pick, &merged_pick)?;
    let mut diseqs = view.diseqs.clone();
    diseqs.extend(user.diseqs.iter().copied());
    Some(Query {
        view_name: user.view_name,
        pick: user.pick,
        root,
        diseqs,
    })
}

fn overlaps(a: &NameTest, b: &NameTest) -> bool {
    match (a, b) {
        (NameTest::Wildcard, _) | (_, NameTest::Wildcard) => true,
        (NameTest::Names(x), NameTest::Names(y)) => x.iter().any(|n| y.contains(n)),
    }
}

fn intersect(a: &NameTest, b: &NameTest) -> Option<NameTest> {
    match (a, b) {
        (NameTest::Wildcard, other) | (other, NameTest::Wildcard) => Some(other.clone()),
        (NameTest::Names(x), NameTest::Names(y)) => {
            let out: Vec<Name> = x.iter().copied().filter(|n| y.contains(n)).collect();
            if out.is_empty() {
                None
            } else {
                Some(NameTest::Names(out))
            }
        }
    }
}

/// Rebuilds the view condition tree with the node binding `pick` replaced.
fn replace_pick(c: &Condition, pick: Var, replacement: &Condition) -> Option<Condition> {
    if c.var == Some(pick) {
        return Some(replacement.clone());
    }
    match &c.body {
        Body::Text(_) => None,
        Body::Children(kids) => {
            let mut out = c.clone();
            let Body::Children(out_kids) = &mut out.body else {
                unreachable!("cloned children body");
            };
            for (i, k) in kids.iter().enumerate() {
                if let Some(r) = replace_pick(k, pick, replacement) {
                    out_kids[i] = r;
                    return Some(out);
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_xmas::parse_query;

    fn view() -> Query {
        parse_query(
            "withJournals = SELECT P WHERE <department> <name>CS</name> \
               P:<professor | gradStudent> <publication><journal/></publication> </> </>",
        )
        .unwrap()
    }

    #[test]
    fn grafts_member_condition_onto_pick() {
        let user = parse_query(
            "ans = SELECT X WHERE <withJournals> X:<professor> <teaches/> </professor> </>",
        )
        .unwrap();
        let composed = compose(&view(), &user).unwrap();
        assert_eq!(composed.view_name.as_str(), "ans");
        assert_eq!(composed.pick, Var::new("X"));
        // composed root is over the source (department), pick narrowed to
        // professor, with both the view's publication condition and the
        // user's teaches condition
        let pick = composed.pick_node().unwrap();
        assert_eq!(pick.test.names(), &[mix_relang::name("professor")]);
        assert_eq!(pick.children().len(), 2);
        assert_eq!(
            composed.root.test.names(),
            &[mix_relang::name("department")]
        );
    }

    #[test]
    fn pick_deeper_than_member() {
        let user = parse_query(
            "ans = SELECT T WHERE <withJournals> <professor | gradStudent> \
               T:<teaches/> </> </withJournals>",
        )
        .unwrap();
        let composed = compose(&view(), &user).unwrap();
        let path = composed.pick_path().unwrap();
        assert_eq!(path.len(), 3); // department / pick / teaches
    }

    #[test]
    fn overlapping_sibling_tests_do_not_compose() {
        // the view already constrains a publication child; a user
        // condition on publications would be forced onto a *different*
        // publication if merged — bail to materialization instead
        let user = parse_query(
            "ans = SELECT T WHERE <withJournals> <professor | gradStudent> \
               <publication> T:<title/> </publication> </> </withJournals>",
        )
        .unwrap();
        assert!(compose(&view(), &user).is_none());
    }

    #[test]
    fn disjoint_name_tests_do_not_compose() {
        let user =
            parse_query("ans = SELECT X WHERE <withJournals> X:<course/> </withJournals>").unwrap();
        assert!(compose(&view(), &user).is_none());
    }

    #[test]
    fn multi_member_queries_do_not_compose() {
        let user = parse_query(
            "ans = SELECT X WHERE <withJournals> X:<professor/> <gradStudent/> </withJournals>",
        )
        .unwrap();
        assert!(compose(&view(), &user).is_none());
    }

    #[test]
    fn picking_the_view_root_does_not_compose() {
        let user = parse_query("ans = SELECT W WHERE W:<withJournals/>").unwrap();
        assert!(compose(&view(), &user).is_none());
    }

    #[test]
    fn wrong_view_name_does_not_compose() {
        let user = parse_query("ans = SELECT X WHERE <other> X:<professor/> </other>").unwrap();
        assert!(compose(&view(), &user).is_none());
    }

    #[test]
    fn variable_collisions_do_not_compose() {
        // the view also uses P
        let user =
            parse_query("ans = SELECT P WHERE <withJournals> P:<professor/> </withJournals>")
                .unwrap();
        assert!(compose(&view(), &user).is_none());
    }

    #[test]
    fn diseqs_are_carried_over() {
        // a view without publication conditions, so the user's publication
        // pair merges cleanly
        let v = parse_query(
            "people = SELECT P WHERE <department> <name>CS</name> \
               P:<professor | gradStudent> <firstName/> </> </>",
        )
        .unwrap();
        let user = parse_query(
            "ans = SELECT X WHERE <people> X:<professor> \
               <publication id=A/> <publication id=B/> </professor> </> AND A != B",
        )
        .unwrap();
        let composed = compose(&v, &user).unwrap();
        assert_eq!(composed.diseqs.len(), 1);
    }
}
