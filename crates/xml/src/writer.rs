//! Serialization of elements back to XML text.
//!
//! The core serializer renders into any [`std::io::Write`] sink, so answer
//! documents can be streamed to files and sockets without first building
//! the whole text in memory (the `mix-stream` answer path). The `String`
//! conveniences delegate to it and keep their historical byte-exact output
//! (indented mode trims the trailing newline for symmetric roundtrips; the
//! `io` variants keep it, since a streaming producer cannot un-write).

use crate::element::{Content, Document, Element};
use crate::parser::escape;
use std::io::{self, Write};

/// Serialization options.
#[derive(Debug, Clone, Copy)]
pub struct WriteConfig {
    /// Pretty-print with this indent width; `None` writes compact XML.
    pub indent: Option<usize>,
    /// Emit `id="…"` attributes (auto-generated IDs are always skipped).
    pub write_ids: bool,
}

impl Default for WriteConfig {
    fn default() -> Self {
        WriteConfig {
            indent: Some(2),
            write_ids: true,
        }
    }
}

fn write_elem<W: Write>(
    e: &Element,
    cfg: WriteConfig,
    level: usize,
    out: &mut W,
) -> io::Result<()> {
    const SPACES: &str = "                                                                ";
    let pad = |out: &mut W, level: usize| -> io::Result<()> {
        if let Some(w) = cfg.indent {
            let mut n = level * w;
            while n > 0 {
                let take = n.min(SPACES.len());
                out.write_all(&SPACES.as_bytes()[..take])?;
                n -= take;
            }
        }
        Ok(())
    };
    let nl = |out: &mut W| -> io::Result<()> {
        if cfg.indent.is_some() {
            out.write_all(b"\n")?;
        }
        Ok(())
    };
    pad(out, level)?;
    write!(out, "<{}", e.name)?;
    if cfg.write_ids && !e.id.is_auto() {
        write!(out, " id=\"{}\"", escape(&e.id.to_string()))?;
    }
    match &e.content {
        Content::Elements(v) if v.is_empty() => {
            out.write_all(b"/>")?;
            nl(out)?;
        }
        Content::Elements(v) => {
            out.write_all(b">")?;
            nl(out)?;
            for c in v {
                write_elem(c, cfg, level + 1, out)?;
            }
            pad(out, level)?;
            write!(out, "</{}>", e.name)?;
            nl(out)?;
        }
        Content::Text(t) => {
            write!(out, ">{}</{}>", escape(t), e.name)?;
            nl(out)?;
        }
    }
    Ok(())
}

/// Serializes an element into an [`io::Write`] sink, indented as if it
/// sat at nesting `level` of a larger document. In indented mode the
/// output ends with a newline (streaming producers append siblings, so
/// there is no trailing trim — see [`write_element`] for the `String`
/// symmetry rule).
pub fn write_element_at<W: Write>(
    e: &Element,
    cfg: WriteConfig,
    level: usize,
    out: &mut W,
) -> io::Result<()> {
    write_elem(e, cfg, level, out)
}

/// Serializes an element to a sink at level 0 (newline-terminated in
/// indented mode; see [`write_element_at`]).
pub fn write_element_to<W: Write>(e: &Element, cfg: WriteConfig, out: &mut W) -> io::Result<()> {
    write_elem(e, cfg, 0, out)
}

/// Serializes a document to a sink (newline-terminated in indented mode).
pub fn write_document_to<W: Write>(d: &Document, cfg: WriteConfig, out: &mut W) -> io::Result<()> {
    write_element_to(&d.root, cfg, out)
}

/// Serializes an element.
pub fn write_element(e: &Element, cfg: WriteConfig) -> String {
    let mut buf = Vec::new();
    write_elem(e, cfg, 0, &mut buf).expect("writing to a Vec cannot fail");
    let mut out = String::from_utf8(buf).expect("serializer emits UTF-8");
    if cfg.indent.is_some() {
        // drop the trailing newline for symmetric roundtrips
        out.truncate(out.trim_end().len());
    }
    out
}

/// Serializes a document.
pub fn write_document(d: &Document, cfg: WriteConfig) -> String {
    write_element(&d.root, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_element;

    #[test]
    fn roundtrip_compact() {
        let src = r#"<professor id="p1"><firstName>Yannis</firstName><teaches/></professor>"#;
        let e = parse_element(src).unwrap();
        let cfg = WriteConfig {
            indent: None,
            write_ids: true,
        };
        let out = write_element(&e, cfg);
        assert_eq!(out, src);
        // write(parse(write(x))) == write(x)  (IDs of id-less elements are
        // freshly generated on each parse, so compare serialized forms)
        assert_eq!(write_element(&parse_element(&out).unwrap(), cfg), out);
    }

    #[test]
    fn roundtrip_pretty() {
        let src = "<a><b><c/></b><d>txt</d></a>";
        let e = parse_element(src).unwrap();
        let pretty = write_element(&e, WriteConfig::default());
        assert!(pretty.contains('\n'));
        let reparsed = parse_element(&pretty).unwrap();
        assert_eq!(write_element(&reparsed, WriteConfig::default()), pretty);
    }

    #[test]
    fn auto_ids_not_written() {
        let e = Element::new("x", vec![]);
        let out = write_element(
            &e,
            WriteConfig {
                indent: None,
                write_ids: true,
            },
        );
        assert_eq!(out, "<x/>");
    }

    #[test]
    fn text_is_escaped() {
        let e = Element::text("t", "a < b & c");
        let out = write_element(
            &e,
            WriteConfig {
                indent: None,
                write_ids: false,
            },
        );
        assert_eq!(out, "<t>a &lt; b &amp; c</t>");
        assert_eq!(parse_element(&out).unwrap().pcdata(), Some("a < b & c"));
    }

    #[test]
    fn io_variant_matches_string_variant_modulo_trailing_newline() {
        let src = "<a><b><c/></b><d>t &amp; u</d></a>";
        let e = parse_element(src).unwrap();
        for cfg in [
            WriteConfig::default(),
            WriteConfig {
                indent: None,
                write_ids: true,
            },
            WriteConfig {
                indent: Some(4),
                write_ids: false,
            },
        ] {
            let mut buf = Vec::new();
            write_element_to(&e, cfg, &mut buf).unwrap();
            let via_io = String::from_utf8(buf).unwrap();
            let via_string = write_element(&e, cfg);
            if cfg.indent.is_some() {
                assert_eq!(via_io, format!("{via_string}\n"));
            } else {
                assert_eq!(via_io, via_string);
            }
        }
    }

    #[test]
    fn write_element_at_indents_like_a_nested_child() {
        let e = parse_element("<d>txt</d>").unwrap();
        let mut buf = Vec::new();
        write_element_at(&e, WriteConfig::default(), 2, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "    <d>txt</d>\n");
    }

    #[test]
    fn deep_indentation_pads_fully() {
        // deeper than the serializer's internal padding chunk
        let e = Element::new("x", vec![]);
        let mut buf = Vec::new();
        write_element_at(&e, WriteConfig::default(), 40, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s, format!("{}<x/>\n", " ".repeat(80)));
    }
}
