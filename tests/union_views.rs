//! End-to-end union views: the introduction's "union the structures
//! exported by N sites" scenario, now *with* the structure information
//! the paper argues DTDs provide.

use mix::dtd::paper::d1_department;
use mix::dtd::sdtd::SAcceptor;
use mix::dtd::validate::Validator;
use mix::prelude::*;
use mix::relang::symbol::name;
use mix::xmas::paper::q3_publist;
use std::sync::Arc;

fn dept(prefix: &str, kinds: &[&str]) -> Document {
    let pubs: String = kinds
        .iter()
        .enumerate()
        .map(|(i, k)| {
            format!("<publication><title>{prefix}{i}</title><author>a</author><{k}/></publication>")
        })
        .collect();
    parse_document(&format!(
        "<department><name>CS</name>\
           <professor><firstName>{prefix}</firstName><lastName>x</lastName>{pubs}<teaches/></professor>\
           <gradStudent><firstName>g</firstName><lastName>y</lastName>\
             <publication><title>{prefix}-thesis</title><author>g</author><journal/></publication>\
           </gradStudent>\
         </department>"
    ))
    .unwrap()
}

#[test]
fn union_view_end_to_end() {
    let mut m = Mediator::new();
    m.add_source(
        "ucsd",
        Arc::new(XmlSource::new(d1_department(), dept("u", &["journal", "conference"])).unwrap()),
    );
    m.add_source(
        "stanford",
        Arc::new(XmlSource::new(d1_department(), dept("s", &["journal"])).unwrap()),
    );
    let reg = m
        .register_union_view(
            "allPubs",
            &[("ucsd", q3_publist()), ("stanford", q3_publist())],
        )
        .unwrap();
    // inferred DTD: journal-only publications, any number
    let root = reg
        .inferred
        .dtd
        .get(name("allPubs"))
        .unwrap()
        .regex()
        .unwrap();
    assert!(equivalent(root, &parse_regex("publication*").unwrap()));
    let publ = reg
        .inferred
        .dtd
        .get(name("publication"))
        .unwrap()
        .regex()
        .unwrap();
    assert!(equivalent(
        publ,
        &parse_regex("title, author+, journal").unwrap()
    ));

    // materialization concatenates in source order and satisfies the DTDs
    let sdtd = reg.inferred.sdtd.clone();
    let dtd = reg.inferred.dtd.clone();
    let doc = m.materialize(name("allPubs")).unwrap();
    let titles: Vec<&str> = doc
        .root
        .children()
        .iter()
        .map(|p| p.children()[0].pcdata().unwrap())
        .collect();
    assert_eq!(titles, ["u0", "u-thesis", "s0", "s-thesis"]);
    assert!(Validator::new(&dtd).validate_document(&doc).is_ok());
    assert!(SAcceptor::new(&sdtd).document_satisfies(&doc));

    // querying through the union view works, including simplifier pruning
    let q = parse_query("ans = SELECT T WHERE <allPubs> <publication> T:<title/> </> </>").unwrap();
    let a = m.query(&q).unwrap();
    assert_eq!(a.document.root.children().len(), 4);
    let impossible =
        parse_query("ans = SELECT C WHERE <allPubs> <publication> C:<conference/> </> </>")
            .unwrap();
    let a = m.query(&impossible).unwrap();
    assert_eq!(a.path, AnswerPath::PrunedUnsatisfiable);
}

#[test]
fn heterogeneous_union_keeps_shapes_apart() {
    let site_a = parse_compact(
        "{<site : publication*> <publication : title, year> \
          <title : PCDATA> <year : PCDATA>}",
    )
    .unwrap();
    let site_b = parse_compact(
        "{<site : publication*> <publication : title, venue> \
          <title : PCDATA> <venue : PCDATA>}",
    )
    .unwrap();
    let doc_a =
        parse_document("<site><publication><title>a</title><year>1999</year></publication></site>")
            .unwrap();
    let doc_b = parse_document(
        "<site><publication><title>b</title><venue>ICDE</venue></publication></site>",
    )
    .unwrap();
    let mut m = Mediator::new();
    m.add_source("a", Arc::new(XmlSource::new(site_a, doc_a).unwrap()));
    m.add_source("b", Arc::new(XmlSource::new(site_b, doc_b).unwrap()));
    let q = parse_query("pubs = SELECT P WHERE <site> P:<publication/> </site>").unwrap();
    let reg = m
        .register_union_view("catalog", &[("a", q.clone()), ("b", q)])
        .unwrap();
    assert!(reg.inferred.merged_names.contains(&name("publication")));
    let sdtd = reg.inferred.sdtd.clone();
    let dtd = reg.inferred.dtd.clone();

    let doc = m.materialize(name("catalog")).unwrap();
    assert!(Validator::new(&dtd).validate_document(&doc).is_ok());
    assert!(SAcceptor::new(&sdtd).document_satisfies(&doc));

    // the s-DTD still knows site-A publications come first: a document
    // with the venue-shaped publication in the year slot is rejected
    let swapped = parse_document(
        "<catalog>\
           <publication><title>b</title><venue>ICDE</venue></publication>\
           <publication><title>a</title><year>1999</year></publication>\
         </catalog>",
    )
    .unwrap();
    assert!(Validator::new(&dtd).validate_document(&swapped).is_ok()); // merged DTD fooled
    assert!(!SAcceptor::new(&sdtd).document_satisfies(&swapped)); // s-DTD not fooled
}

#[test]
fn union_views_stack() {
    let mut lower = Mediator::new();
    lower.add_source(
        "x",
        Arc::new(XmlSource::new(d1_department(), dept("x", &["journal"])).unwrap()),
    );
    lower.add_source(
        "y",
        Arc::new(XmlSource::new(d1_department(), dept("y", &["journal"])).unwrap()),
    );
    lower
        .register_union_view("allPubs", &[("x", q3_publist()), ("y", q3_publist())])
        .unwrap();
    let lower = Arc::new(lower);
    let mut upper = Mediator::new();
    upper.add_source(
        "pubs",
        Arc::new(ViewWrapper::new(lower, name("allPubs")).unwrap()),
    );
    let v =
        parse_query("titles = SELECT T WHERE <allPubs> <publication> T:<title/> </> </>").unwrap();
    let reg = upper.register_view("pubs", &v).unwrap();
    assert_eq!(
        reg.inferred.dtd.get(name("titles")).unwrap().to_string(),
        "title*"
    );
    let q = parse_query("ans = SELECT T WHERE <titles> T:<title/> </titles>").unwrap();
    let a = upper.query(&q).unwrap();
    assert_eq!(a.document.root.children().len(), 4);
}

#[test]
fn union_errors() {
    let mut m = Mediator::new();
    let q = parse_query("v = SELECT X WHERE X:<a/>").unwrap();
    assert!(matches!(
        m.register_union_view("u", &[("ghost", q.clone())]),
        Err(MediatorError::UnknownSource(_))
    ));
    m.add_source(
        "s",
        Arc::new(
            XmlSource::new(
                parse_compact("{<a : b?> <b : PCDATA>}").unwrap(),
                parse_document("<a/>").unwrap(),
            )
            .unwrap(),
        ),
    );
    m.register_union_view("u", &[("s", q.clone())]).unwrap();
    assert!(matches!(
        m.register_union_view("u", &[("s", q)]),
        Err(MediatorError::DuplicateView(_))
    ));
}

/// Union views are sound on random workloads: every materialization
/// satisfies both inferred union DTDs, across random per-site schemas,
/// queries, and documents.
#[test]
fn union_views_are_sound_on_random_workloads() {
    use mix::dtd::generate::{seeded_dtd, DtdGenConfig};
    use mix::dtd::sample::{sample_documents, DocConfig};
    use mix::xmas::gen::{random_query, QueryGenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    for seed in 0..20u64 {
        let mut m = Mediator::new();
        let mut parts = Vec::new();
        let n_sites = 2 + (seed % 3) as usize;
        for site in 0..n_sites {
            let dtd = seeded_dtd(seed * 10 + site as u64, &DtdGenConfig::default());
            let doc = sample_documents(&dtd, 1, seed + site as u64, DocConfig::default())
                .pop()
                .expect("one document");
            let mut rng = StdRng::seed_from_u64(seed * 31 + site as u64);
            let q = random_query(&dtd, &mut rng, &QueryGenConfig::default());
            let label = format!("site{site}");
            m.add_source(&label, Arc::new(XmlSource::new(dtd, doc).unwrap()));
            parts.push((label, q));
        }
        let part_refs: Vec<(&str, Query)> =
            parts.iter().map(|(s, q)| (s.as_str(), q.clone())).collect();
        let reg = match m.register_union_view("u", &part_refs) {
            Ok(r) => r,
            Err(e) => panic!("seed {seed}: registration failed: {e}"),
        };
        let dtd = reg.inferred.dtd.clone();
        let sdtd = reg.inferred.sdtd.clone();
        let kind_conflicts = reg.inferred.kind_conflicts.clone();
        let doc = m.materialize(name("u")).unwrap();
        // the s-DTD is sound unconditionally
        assert!(
            SAcceptor::new(&sdtd).document_satisfies(&doc),
            "seed {seed}: union materialization violates the s-DTD\n{sdtd}"
        );
        // the plain merged DTD is sound exactly when no name mixes PCDATA
        // and element content across the sites (see
        // InferredUnionView::kind_conflicts)
        if kind_conflicts.is_empty() {
            assert!(
                Validator::new(&dtd).validate_document(&doc).is_ok(),
                "seed {seed}: union materialization violates the merged DTD\n{dtd}"
            );
        } else if let Err(e) = Validator::new(&dtd).validate_document(&doc) {
            // a violation, if any, must be at a conflicted name
            let offender = e.path.last().copied().expect("nonempty path");
            assert!(
                kind_conflicts.contains(&offender),
                "seed {seed}: merged-DTD violation at unconflicted name {offender}: {e}"
            );
        }
    }
}
