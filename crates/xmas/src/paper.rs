//! The paper's query fixtures (Q2, Q3, Q12 — the queries whose inference
//! the paper works through), shared by tests, examples, and benches.

use crate::ast::Query;
use crate::parser::parse_query;

/// (Q2) — people of the CS department with two *different* journal
/// publications (Examples 3.1, 3.4, 4.3).
pub fn q2_with_journals() -> Query {
    parse_query(
        "withJournals = SELECT P \
         WHERE <department> <name>CS</name> \
           P:<professor | gradStudent> \
             <publication id=Pub1><journal/></publication> \
             <publication id=Pub2><journal/></publication> \
           </> \
         </> \
         AND Pub1 != Pub2",
    )
    .expect("Q2 parses")
}

/// (Q3) — every journal publication of the CS department (Example 3.2).
pub fn q3_publist() -> Query {
    parse_query(
        "publist = SELECT P \
         WHERE <department> <name>CS</name> \
           <professor | gradStudent> P:<publication><journal/></publication> </> \
         </>",
    )
    .expect("Q3 parses")
}

/// (Q12) — titles and authors of gradStudent publications (Example 4.4).
pub fn q12_papers() -> Query {
    parse_query(
        "papers = SELECT P WHERE D:<department> G:<gradStudent> \
           X:<publication> P:<title | author/> </> </> </>",
    )
    .expect("Q12 parses")
}

/// (Q6) — professors with a journal publication, over (D9)
/// (Example 4.1).
pub fn q6_answer() -> Query {
    parse_query("answer = SELECT X WHERE X:<professor><journal/></professor>").expect("Q6 parses")
}

/// (Q7) — professors with two *different* journal publications, over (D9)
/// (Example 4.2).
pub fn q7_answer() -> Query {
    parse_query(
        "answer = SELECT X WHERE X:<professor> <journal id=J1/> <journal id=J2/> </> \
         AND J1 != J2",
    )
    .expect("Q7 parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_dtd::paper::{d11_department, d1_department, d9_professor};

    #[test]
    fn fixtures_normalize_against_their_dtds() {
        use crate::normalize::normalize;
        for (q, d) in [
            (q2_with_journals(), d1_department()),
            (q3_publist(), d1_department()),
            (q12_papers(), d11_department()),
            (q6_answer(), d9_professor()),
            (q7_answer(), d9_professor()),
        ] {
            normalize(&q, &d).unwrap_or_else(|e| panic!("{}: {e}", q.view_name));
        }
    }

    #[test]
    fn q7_on_d9_is_unsatisfiable() {
        // D9's professor has (journal | conference)* — two *distinct*
        // journals are possible, so Q7 is satisfiable there…
        use crate::normalize::normalize;
        let d = d9_professor();
        let q = normalize(&q7_answer(), &d).unwrap();
        // sanity: both journal conditions survived normalization
        assert_eq!(q.pick_node().unwrap().children().len(), 2);
        assert_eq!(q.diseqs.len(), 1);
    }
}
