//! The mediator's two ends of the mix-net wire (DESIGN.md §9).
//!
//! Serving side: [`WrapperService`] adapts any local [`Wrapper`]
//! (including a stacked [`crate::ViewWrapper`]) to `mix_net`'s text-based
//! `WireService`, so `mixctl serve-source` can export it. Faults cross the
//! wire as `(kind, detail)` pairs using the stable
//! [`SourceError::kind`] labels.
//!
//! Consuming side: [`net_to_source_error`] folds every transport,
//! protocol, and forwarded-remote failure onto the [`SourceError`] fault
//! model, so the resilience layer (retries, breakers,
//! `DegradationReport`) treats a socket exactly like an in-process
//! wrapper:
//!
//! | wire failure                        | `SourceError`            |
//! |-------------------------------------|--------------------------|
//! | connection refused / unresolvable   | `Unavailable`            |
//! | read/write deadline expired         | `Timeout`                |
//! | reset, mid-frame EOF, other I/O     | `Transient`              |
//! | protocol violation (bad frame/UTF-8)| `MalformedXml`           |
//! | frame-version mismatch              | `Incompatible`           |
//! | `Throttled` (admission shed)        | `Throttled`              |
//! | remote `Err { kind, … }`            | same variant, by label   |
//!
//! The split between the retryable transport rows and the two
//! non-retryable rows matters: `Incompatible` and `Throttled` are **not**
//! source faults, so circuit breakers don't trip on a misdeployed peer or
//! on backpressure — the replica router fails over instead.
//!
//! Messages are deterministic (no OS error text), so a loopback run and
//! an equivalently-scripted in-process run produce byte-identical
//! degradation reports — the e2e tests rely on this.

use crate::error::SourceError;
use crate::source::Wrapper;
use mix_net::{NetError, WireFault, WireService};
use mix_xml::{write_document, WriteConfig};

/// Adapts a local [`Wrapper`] to the wire's text-based service interface.
pub struct WrapperService<W> {
    inner: W,
    registry: Option<mix_obs::Registry>,
    memo: Option<AnswerMemo>,
}

/// The serving-side answer memo: rendered answer text keyed by the query
/// text that produced it (the empty key is the full-document fetch).
struct AnswerMemo {
    cache: std::sync::Mutex<std::collections::HashMap<String, String>>,
    capacity: usize,
    hits: mix_obs::Counter,
    misses: mix_obs::Counter,
}

impl<W: Wrapper> WrapperService<W> {
    /// Wraps `inner` for serving. The service answers `Stats` requests
    /// with the process-wide [`mix_obs::global`] registry only (automata
    /// memo counters); attach a daemon registry with
    /// [`WrapperService::with_registry`] to serve the full picture.
    pub fn new(inner: W) -> WrapperService<W> {
        WrapperService {
            inner,
            registry: None,
            memo: None,
        }
    }

    /// Attaches the daemon's registry: `Stats` requests then return its
    /// snapshot *merged* with [`mix_obs::global`], so one reply carries
    /// the serving mediator's counters next to the process-wide memo
    /// counters.
    pub fn with_registry(mut self, registry: mix_obs::Registry) -> WrapperService<W> {
        self.registry = Some(registry);
        self
    }

    /// Memoizes up to `capacity` rendered answers, keyed by query text.
    ///
    /// **Only opt in when the served wrapper is a snapshot** — e.g. an
    /// [`crate::XmlSource`] loaded at daemon start — because a cached
    /// answer is replayed verbatim for the lifetime of the service. For a
    /// live wrapper (a stacked view over remote sources) the memo would
    /// pin the first answer forever. Faults are never cached: a source
    /// that recovers answers normally on the next request. When the memo
    /// fills, it is wiped and rebuilt rather than evicted piecemeal.
    pub fn with_answer_memo(mut self, capacity: usize) -> WrapperService<W> {
        self.memo = Some(AnswerMemo {
            cache: std::sync::Mutex::new(std::collections::HashMap::new()),
            capacity: capacity.max(1),
            hits: mix_obs::global().counter("wire_answer_memo_hits_total"),
            misses: mix_obs::global().counter("wire_answer_memo_misses_total"),
        });
        self
    }

    /// The served wrapper.
    pub fn inner(&self) -> &W {
        &self.inner
    }
}

impl<W: Wrapper + 'static> WireService for WrapperService<W> {
    fn export_dtd(&self) -> String {
        self.inner.dtd().to_string()
    }

    fn answer(&self, query: Option<&str>) -> Result<String, WireFault> {
        // "f:" vs "q:…" keeps a fetch distinct from every query text
        // (including the empty one)
        let key = match query {
            None => "f:".to_owned(),
            Some(text) => format!("q:{text}"),
        };
        if let Some(memo) = &self.memo {
            if let Some(cached) = lock(&memo.cache).get(&key) {
                memo.hits.inc();
                return Ok(cached.clone());
            }
        }
        let doc = match query {
            None => self.inner.fetch().map_err(|e| fault_of(&e))?,
            Some(text) => {
                let q = mix_xmas::parse_query(text)
                    .map_err(|e| WireFault::new("query", e.to_string()))?;
                self.inner.answer(&q).map_err(|e| fault_of(&e))?
            }
        };
        let xml = write_document(&doc, WriteConfig::default());
        if let Some(memo) = &self.memo {
            memo.misses.inc();
            let mut cache = lock(&memo.cache);
            if cache.len() >= memo.capacity {
                cache.clear();
            }
            cache.insert(key, xml.clone());
        }
        Ok(xml)
    }

    fn stats(&self) -> Option<String> {
        let mut snap = mix_obs::global().snapshot();
        if let Some(r) = &self.registry {
            snap = snap.merge(&r.snapshot());
        }
        Some(snap.to_json())
    }
}

fn lock<'a>(
    m: &'a std::sync::Mutex<std::collections::HashMap<String, String>>,
) -> std::sync::MutexGuard<'a, std::collections::HashMap<String, String>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Serializes a [`SourceError`] for the wire: the stable kind label plus a
/// detail string chosen so [`remote_to_source_error`] reconstructs the
/// identical value (`Timeout` ships its millis as the detail).
pub fn fault_of(e: &SourceError) -> WireFault {
    let msg = match e {
        SourceError::Transient(m)
        | SourceError::MalformedXml(m)
        | SourceError::DtdInvalid(m)
        | SourceError::Unavailable(m)
        | SourceError::Incompatible(m) => m.clone(),
        SourceError::Timeout { millis } => millis.to_string(),
        SourceError::Throttled { retry_after_ms } => retry_after_ms.to_string(),
        SourceError::Query(e) => e.to_string(),
    };
    WireFault::new(e.kind(), msg)
}

/// Rebuilds a [`SourceError`] from a forwarded remote fault. Inverse of
/// [`fault_of`] for every source-fault variant; `query` faults (which a
/// [`crate::RemoteWrapper`] avoids by normalizing locally) and unknown
/// future labels degrade to [`SourceError::Unavailable`] rather than
/// being misclassified as retryable.
pub fn remote_to_source_error(kind: &str, msg: String) -> SourceError {
    match kind {
        "transient" => SourceError::Transient(msg),
        "timeout" => SourceError::Timeout {
            millis: msg.parse().unwrap_or(0),
        },
        "malformed-xml" => SourceError::MalformedXml(msg),
        "dtd-invalid" => SourceError::DtdInvalid(msg),
        "unavailable" => SourceError::Unavailable(msg),
        "incompatible" => SourceError::Incompatible(msg),
        "throttled" => SourceError::Throttled {
            retry_after_ms: msg.parse().unwrap_or(0),
        },
        other => SourceError::Unavailable(format!("remote fault [{other}]: {msg}")),
    }
}

/// Folds a wire failure onto the [`SourceError`] fault model. `addr`
/// prefixes transport messages; `io_timeout_millis` is the client's
/// configured deadline (the duration a timeout actually waited).
pub fn net_to_source_error(addr: &str, io_timeout_millis: u64, e: NetError) -> SourceError {
    if e.is_refused() {
        return SourceError::Unavailable(format!("{addr}: connection refused"));
    }
    if e.is_timeout() {
        return SourceError::Timeout {
            millis: io_timeout_millis,
        };
    }
    match e {
        NetError::Remote { kind, msg } => remote_to_source_error(&kind, msg),
        NetError::Protocol(msg) => SourceError::MalformedXml(format!("{addr}: {msg}")),
        // a version mismatch is fatal, not retryable: keep it out of the
        // breaker-counted variants so health routing sees a deployment
        // fault, not a sick source
        NetError::VersionMismatch { theirs, ours } => SourceError::Incompatible(format!(
            "{addr}: peer speaks protocol version {theirs}, this build speaks {ours}"
        )),
        NetError::Throttled { retry_after_ms } => SourceError::Throttled { retry_after_ms },
        // deterministic: the io::ErrorKind's stable name, not OS text
        NetError::Io(io) => {
            SourceError::Transient(format!("{addr}: transport fault ({})", io.kind()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::XmlSource;
    use mix_dtd::paper::d1_department;
    use mix_xmas::NormalizeError;
    use mix_xml::parse_document;
    use std::io;

    fn service() -> WrapperService<XmlSource> {
        let doc = parse_document(
            "<department><name>CS</name>\
               <professor><firstName>Y</firstName><lastName>P</lastName>\
                 <publication><title>t</title><author>a</author><journal/></publication>\
                 <teaches/></professor>\
               <gradStudent><firstName>P</firstName><lastName>V</lastName>\
                 <publication><title>u</title><author>a</author><conference/></publication>\
               </gradStudent></department>",
        )
        .unwrap();
        WrapperService::new(XmlSource::new(d1_department(), doc).unwrap())
    }

    #[test]
    fn exported_dtd_text_reparses() {
        let text = service().export_dtd();
        let dtd = mix_dtd::parse_compact(&text).unwrap();
        assert!(mix_dtd::same_documents(&dtd, &d1_department()));
    }

    #[test]
    fn answer_none_is_fetch_and_some_is_query() {
        let s = service();
        let full = s.answer(None).unwrap();
        assert!(full.contains("<gradStudent>"));
        let ans = s
            .answer(Some(
                "profs = SELECT P WHERE <department> P:<professor/> </department>",
            ))
            .unwrap();
        assert!(ans.contains("<professor>"));
        assert!(!ans.contains("<gradStudent>"));
    }

    #[test]
    fn memoized_service_answers_are_byte_identical_to_unmemoized() {
        let plain = service();
        let memoized = service().with_answer_memo(16);
        let q = "profs = SELECT P WHERE <department> P:<professor/> </department>";
        for _ in 0..3 {
            assert_eq!(
                memoized.answer(Some(q)).unwrap(),
                plain.answer(Some(q)).unwrap()
            );
            assert_eq!(memoized.answer(None).unwrap(), plain.answer(None).unwrap());
        }
        // a fetch and an (unparsable) empty query text never share a slot
        assert_eq!(
            memoized.answer(Some("")).unwrap_err().kind,
            plain.answer(Some("")).unwrap_err().kind
        );
    }

    #[test]
    fn answer_memo_never_caches_faults() {
        let memoized = service().with_answer_memo(16);
        assert_eq!(memoized.answer(Some("not XMAS")).unwrap_err().kind, "query");
        // the failure above must not have poisoned the key: still a fault,
        // not a stale success — and still the same fault each time
        assert_eq!(memoized.answer(Some("not XMAS")).unwrap_err().kind, "query");
    }

    #[test]
    fn query_parse_failure_is_a_query_fault() {
        let fault = service().answer(Some("this is not XMAS")).unwrap_err();
        assert_eq!(fault.kind, "query");
    }

    #[test]
    fn source_faults_roundtrip_through_the_wire_encoding() {
        for e in [
            SourceError::Transient("reset".into()),
            SourceError::Timeout { millis: 250 },
            SourceError::MalformedXml("eof at byte 3".into()),
            SourceError::DtdInvalid("extra course".into()),
            SourceError::Unavailable("circuit open".into()),
            SourceError::Incompatible("peer speaks protocol version 9".into()),
            SourceError::Throttled { retry_after_ms: 40 },
        ] {
            let f = fault_of(&e);
            assert_eq!(remote_to_source_error(&f.kind, f.msg), e);
        }
    }

    #[test]
    fn query_faults_and_unknown_kinds_degrade_to_unavailable() {
        let q = SourceError::Query(NormalizeError::SelfDiseq(mix_xmas::Var::new("X")));
        let f = fault_of(&q);
        assert_eq!(f.kind, "query");
        assert!(matches!(
            remote_to_source_error("query", f.msg),
            SourceError::Unavailable(_)
        ));
        assert!(matches!(
            remote_to_source_error("chrono-skew", "future fault".into()),
            SourceError::Unavailable(_)
        ));
    }

    #[test]
    fn transport_failures_classify_deterministically() {
        let refused = NetError::Io(io::Error::new(io::ErrorKind::ConnectionRefused, "os text"));
        assert_eq!(
            net_to_source_error("127.0.0.1:9", 10_000, refused),
            SourceError::Unavailable("127.0.0.1:9: connection refused".into())
        );
        let timeout = NetError::Io(io::Error::new(io::ErrorKind::WouldBlock, "os text"));
        assert_eq!(
            net_to_source_error("a", 10_000, timeout),
            SourceError::Timeout { millis: 10_000 }
        );
        let eof = NetError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "os text"));
        match net_to_source_error("a", 10_000, eof) {
            SourceError::Transient(m) => assert!(!m.contains("os text"), "{m}"),
            other => panic!("expected Transient, got {other:?}"),
        }
        assert!(matches!(
            net_to_source_error("a", 1, NetError::protocol("bad frame")),
            SourceError::MalformedXml(_)
        ));
    }

    #[test]
    fn version_mismatch_and_throttle_split_off_the_retryable_mapping() {
        // the satellite fix: a version mismatch must NOT land in a
        // breaker-counted variant the way protocol garbage does
        let e = net_to_source_error("h:1", 1, NetError::VersionMismatch { theirs: 9, ours: 1 });
        assert_eq!(
            e,
            SourceError::Incompatible(
                "h:1: peer speaks protocol version 9, this build speaks 1".into()
            )
        );
        assert!(!e.is_source_fault() && !e.is_transient());
        let t = net_to_source_error("h:1", 1, NetError::Throttled { retry_after_ms: 75 });
        assert_eq!(t, SourceError::Throttled { retry_after_ms: 75 });
        assert!(!t.is_source_fault());
        // while a refused connection stays a breaker-counted source fault
        let refused = NetError::Io(io::Error::new(io::ErrorKind::ConnectionRefused, ""));
        assert!(net_to_source_error("h:1", 1, refused).is_source_fault());
    }
}
