//! Strong DataGuides over tree-structured XML.
//!
//! \[GW97\] (cited in the paper's Section 5) introduces dataguides: a
//! concise summary in which **every label path of the source appears
//! exactly once**. Over tree-structured data the strong dataguide is
//! simply the trie of label paths, which is what we build here. The
//! paper's related-work claims about them — no order, no cardinality, no
//! sibling constraints, but *context-dependent* typing like s-DTDs — are
//! demonstrated mechanically in [`crate::compare`] and the `related_work`
//! example.

use mix_relang::symbol::Name;
use mix_xml::{Document, Element};
use std::collections::BTreeMap;
use std::fmt;

/// One node of the dataguide trie: the children reachable under a label
/// path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GuideNode {
    /// Child labels, each summarizing all elements reached by extending
    /// the path with that label.
    pub children: BTreeMap<Name, GuideNode>,
    /// Whether some element on this path had PCDATA content.
    pub has_text: bool,
}

/// A strong dataguide for a set of equally-rooted documents.
///
/// ```
/// use mix_dataguide::DataGuide;
/// let doc = mix_xml::parse_document("<a><b/><c>t</c></a>").unwrap();
/// let g = DataGuide::of_document(&doc);
/// // order and cardinality are invisible to a path summary:
/// assert!(g.describes(&mix_xml::parse_document("<a><c>x</c><b/><b/></a>").unwrap()));
/// assert!(!g.describes(&mix_xml::parse_document("<a><z/></a>").unwrap()));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataGuide {
    /// The root label (all summarized documents share it).
    pub root_name: Name,
    /// The root node of the trie.
    pub root: GuideNode,
}

impl DataGuide {
    /// Builds the dataguide of one document.
    pub fn of_document(doc: &Document) -> DataGuide {
        let mut g = DataGuide {
            root_name: doc.root.name,
            root: GuideNode::default(),
        };
        g.root.absorb(&doc.root);
        g
    }

    /// Builds the dataguide of several documents (they must share a root
    /// label; returns `None` for an empty set or mixed roots).
    pub fn of_documents(docs: &[Document]) -> Option<DataGuide> {
        let first = docs.first()?;
        let mut g = DataGuide::of_document(first);
        for d in &docs[1..] {
            if d.root.name != g.root_name {
                return None;
            }
            g.root.absorb(&d.root);
        }
        Some(g)
    }

    /// Extends the guide with another document (the incremental
    /// maintenance \[GW97\] discusses).
    pub fn absorb(&mut self, doc: &Document) -> bool {
        if doc.root.name != self.root_name {
            return false;
        }
        self.root.absorb(&doc.root);
        true
    }

    /// Does the guide contain this label path (starting *below* the
    /// root)?
    pub fn contains_path(&self, path: &[Name]) -> bool {
        let mut cur = &self.root;
        for n in path {
            match cur.children.get(n) {
                Some(next) => cur = next,
                None => return false,
            }
        }
        true
    }

    /// Does `doc` conform to the guide — is every label path of `doc` a
    /// path of the guide, with text content only where the summarized
    /// data had text? (This is the "schema" reading of an annotated
    /// dataguide: the set of documents whose paths it covers.)
    pub fn describes(&self, doc: &Document) -> bool {
        doc.root.name == self.root_name && self.root.covers(&doc.root)
    }

    /// All label paths (below the root), depth-first.
    pub fn paths(&self) -> Vec<Vec<Name>> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.root.collect_paths(&mut prefix, &mut out);
        out
    }

    /// Number of trie nodes (excluding the root).
    pub fn len(&self) -> usize {
        self.paths().len()
    }

    /// Is the guide a bare root?
    pub fn is_empty(&self) -> bool {
        self.root.children.is_empty()
    }

    /// Counts the documents (name-tree shapes, PCDATA collapsed — the
    /// same metric as `mix_dtd::count_documents_by_size`) of each size
    /// that conform to the guide. A conforming node may repeat and
    /// reorder its guide children arbitrarily — exactly the information
    /// dataguides cannot express, so this is the quantitative face of the
    /// paper's §5 comparison.
    pub fn count_conforming_by_size(&self, max_size: usize) -> Vec<u128> {
        let mut out = vec![0u128; max_size + 1];
        for (s, slot) in out.iter_mut().enumerate().skip(1) {
            *slot = ways(&self.root, s);
        }
        out
    }
}

/// Shapes of a conforming subtree rooted at a node summarized by `g`,
/// with exactly `size` nodes.
fn ways(g: &GuideNode, size: usize) -> u128 {
    if size == 0 {
        return 0;
    }
    if size == 1 {
        // a leaf: text or empty-element content are one shape each; count
        // text leaves only when the guide saw text here, and the empty
        // element always (any element may have empty content when its
        // children are unconstrained… except the guide's job is paths, so
        // an empty element is always conforming)
        return 1 + u128::from(g.has_text);
    }
    // sequences of conforming children with total size-1 nodes
    seq(g, size - 1)
}

fn seq(g: &GuideNode, budget: usize) -> u128 {
    if budget == 0 {
        return 1;
    }
    let mut total = 0u128;
    for child in g.children.values() {
        for k in 1..=budget {
            let w = ways(child, k);
            if w == 0 {
                continue;
            }
            total = total.saturating_add(w.saturating_mul(seq(g, budget - k)));
        }
    }
    total
}

impl GuideNode {
    fn absorb(&mut self, e: &Element) {
        if e.pcdata().is_some() {
            self.has_text = true;
        }
        for c in e.children() {
            self.children.entry(c.name).or_default().absorb(c);
        }
    }

    fn covers(&self, e: &Element) -> bool {
        if e.pcdata().is_some() {
            // annotated-dataguide semantics: text content is only covered
            // where the summarized data had text
            return self.has_text;
        }
        e.children()
            .iter()
            .all(|c| match self.children.get(&c.name) {
                Some(g) => g.covers(c),
                None => false,
            })
    }

    fn collect_paths(&self, prefix: &mut Vec<Name>, out: &mut Vec<Vec<Name>>) {
        for (n, child) in &self.children {
            prefix.push(*n);
            out.push(prefix.clone());
            child.collect_paths(prefix, out);
            prefix.pop();
        }
    }

    fn render(&self, name: &str, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "{}{}{}",
            "  ".repeat(depth),
            name,
            if self.has_text { ": text" } else { "" }
        );
        for (n, child) in &self.children {
            child.render(n.as_str(), depth + 1, out);
        }
    }
}

impl fmt::Display for DataGuide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.root.render(self.root_name.as_str(), 0, &mut out);
        write!(f, "{}", out.trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_relang::symbol::name;
    use mix_xml::parse_document;

    fn doc(s: &str) -> Document {
        parse_document(s).unwrap()
    }

    #[test]
    fn trie_of_label_paths() {
        let g = DataGuide::of_document(&doc("<a><b><d>t</d></b><b><e/></b><c/></a>"));
        let paths: Vec<String> = g
            .paths()
            .iter()
            .map(|p| p.iter().map(|n| n.as_str()).collect::<Vec<_>>().join("/"))
            .collect();
        assert_eq!(paths, ["b", "b/d", "b/e", "c"]);
        // every label path appears exactly once even though b appears twice
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn describes_ignores_order_and_cardinality() {
        let g = DataGuide::of_document(&doc("<a><b/><c/></a>"));
        // reordered
        assert!(g.describes(&doc("<a><c/><b/></a>")));
        // repeated
        assert!(g.describes(&doc("<a><b/><b/><b/></a>")));
        // dropped
        assert!(g.describes(&doc("<a/>")));
        // new label: not covered
        assert!(!g.describes(&doc("<a><z/></a>")));
        // new path through a known label
        assert!(!g.describes(&doc("<a><b><deep/></b></a>")));
    }

    #[test]
    fn context_dependent_typing() {
        // the same label `b` has different structure under different
        // parents — the respect in which dataguides resemble s-DTDs (§5)
        let g = DataGuide::of_document(&doc("<r><x><b><c/></b></x><y><b><d/></b></y></r>"));
        assert!(g.contains_path(&[name("x"), name("b"), name("c")]));
        assert!(!g.contains_path(&[name("x"), name("b"), name("d")]));
        assert!(g.contains_path(&[name("y"), name("b"), name("d")]));
        // a document using d under x/b is rejected
        assert!(!g.describes(&doc("<r><x><b><d/></b></x></r>")));
    }

    #[test]
    fn multi_document_union() {
        let g = DataGuide::of_documents(&[doc("<a><b/></a>"), doc("<a><c>t</c></a>")]).unwrap();
        assert!(g.describes(&doc("<a><b/><c>zzz</c></a>")));
        assert!(DataGuide::of_documents(&[doc("<a/>"), doc("<z/>")]).is_none());
    }

    #[test]
    fn absorb_extends() {
        let mut g = DataGuide::of_document(&doc("<a><b/></a>"));
        assert!(!g.describes(&doc("<a><c/></a>")));
        assert!(g.absorb(&doc("<a><c/></a>")));
        assert!(g.describes(&doc("<a><c/></a>")));
        assert!(!g.absorb(&doc("<zzz/>")));
    }

    #[test]
    fn counting_conforming_shapes() {
        // guide from <a><b/></a>: conforming docs are a-nodes with any
        // number of b-leaves (each a leaf: empty only, no text seen)
        let g = DataGuide::of_document(&doc("<a><b/></a>"));
        let c = g.count_conforming_by_size(4);
        assert_eq!(c, vec![0, 1, 1, 1, 1]);
        // with text seen at b, each b slot has 2 shapes (text or empty)
        let g = DataGuide::of_document(&doc("<a><b>t</b></a>"));
        let c = g.count_conforming_by_size(3);
        assert_eq!(c, vec![0, 1, 2, 4]);
    }

    #[test]
    fn display_renders_tree() {
        let g = DataGuide::of_document(&doc("<a><b><c>t</c></b></a>"));
        let shown = g.to_string();
        assert!(shown.contains("a\n  b\n    c: text"), "{shown}");
    }
}
