//! The event ring: rare, timestamped occurrences.
//!
//! Counters aggregate; events narrate. A circuit breaker that flaps six
//! times during a run shows up in `breaker_opened_total = 6`, but *when*
//! it flapped — and against which source, with what detail — only
//! survives as an ordered list. Events are expected to be rare (breaker
//! transitions, stale serves, degradations), so a plain mutexed deque
//! with a drop counter is the right cost point; the hot path never
//! touches it.

use crate::snapshot::EventSnapshot;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Events retained; the oldest are dropped (and counted) past this.
pub const EVENT_RING_CAPACITY: usize = 256;

pub(crate) struct EventRing {
    ring: Mutex<VecDeque<EventSnapshot>>,
    dropped: AtomicU64,
    capacity: usize,
}

impl EventRing {
    pub(crate) fn new(capacity: usize) -> EventRing {
        EventRing {
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    pub(crate) fn push(&self, event: EventSnapshot) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Relaxed);
        }
        ring.push_back(event);
    }

    /// Retained events in arrival order, plus how many were dropped.
    pub(crate) fn snapshot(&self) -> (Vec<EventSnapshot>, u64) {
        let ring = self.ring.lock().unwrap();
        (ring.iter().cloned().collect(), self.dropped.load(Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ns: u64, kind: &str) -> EventSnapshot {
        EventSnapshot {
            at_ns,
            kind: kind.to_string(),
            detail: String::new(),
        }
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let ring = EventRing::new(3);
        for i in 0..5 {
            ring.push(ev(i, "breaker-open"));
        }
        let (events, dropped) = ring.snapshot();
        assert_eq!(dropped, 2);
        assert_eq!(
            events.iter().map(|e| e.at_ns).collect::<Vec<_>>(),
            [2, 3, 4]
        );
    }
}
