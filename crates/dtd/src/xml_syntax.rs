//! Serialization of DTDs back to real XML `<!DOCTYPE … [ <!ELEMENT …> ]>`
//! syntax, so inferred view DTDs can be handed to standard XML tooling.
//!
//! Plain DTDs roundtrip exactly through [`crate::parse::parse_xml_dtd`].
//! Specialized DTDs cannot be expressed in XML DTD syntax (tags are not
//! names); use [`crate::model::SDtd`]'s display or merge first.

use crate::model::{ContentModel, Dtd};
use mix_relang::ast::Regex;
use std::fmt::Write;

/// Renders one content model in XML DTD syntax.
fn model_to_xml(m: &ContentModel) -> String {
    match m {
        ContentModel::Pcdata => "(#PCDATA)".to_owned(),
        ContentModel::Elements(Regex::Epsilon) => "EMPTY".to_owned(),
        ContentModel::Elements(r) => {
            // XML requires the model to be parenthesized
            format!("({r})")
        }
    }
}

/// Serializes `d` as a `<!DOCTYPE>` declaration with an internal subset.
pub fn to_xml_syntax(d: &Dtd) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "<!DOCTYPE {} [", d.doc_type);
    for (n, m) in d.types.iter() {
        let _ = writeln!(out, "  <!ELEMENT {n} {}>", model_to_xml(m));
    }
    out.push_str("]>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::d1_department;
    use crate::parse::{parse_compact, parse_xml_dtd};

    #[test]
    fn d1_roundtrips_through_xml_syntax() {
        let d = d1_department();
        let xml = to_xml_syntax(&d);
        assert!(xml.starts_with("<!DOCTYPE department ["), "{xml}");
        assert!(xml.contains("<!ELEMENT publication (title, author+, (journal | conference))>"));
        assert!(xml.contains("<!ELEMENT teaches EMPTY>"));
        assert!(xml.contains("<!ELEMENT firstName (#PCDATA)>"));
        let again = parse_xml_dtd(&xml).expect("generated XML DTD parses");
        assert_eq!(d, again);
    }

    #[test]
    fn random_dtds_roundtrip() {
        use crate::generate::{seeded_dtd, DtdGenConfig};
        for seed in 0..40u64 {
            let d = seeded_dtd(seed, &DtdGenConfig::default());
            let xml = to_xml_syntax(&d);
            let again = parse_xml_dtd(&xml).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{xml}"));
            assert_eq!(d, again, "seed {seed} roundtrip mismatch");
        }
    }

    #[test]
    fn inferred_view_dtds_roundtrip() {
        // the pipeline's merged output is a plain DTD and must export
        let d = parse_compact("{<v : a*, b?> <a : PCDATA> <b : c+> <c : EMPTY>}").unwrap();
        let xml = to_xml_syntax(&d);
        assert_eq!(parse_xml_dtd(&xml).unwrap(), d);
    }
}
