//! # mix-xmas — the pick-element XMAS query language
//!
//! The fragment of XMAS (XML Matching And Structuring) the paper's
//! inference algorithm handles (Section 2.1): queries whose SELECT clause
//! has a single pick variable and whose WHERE clause is one tree condition
//! over one source plus id inequalities. Provides the AST, a parser for the
//! paper's syntax, the normalization preprocessing (wildcard expansion, tag
//! assignment), and the evaluator that materializes view documents.

#![warn(missing_docs)]

pub mod ast;
mod display;
pub mod eval;
pub mod gen;
pub mod normalize;
pub mod paper;
pub mod parser;

pub use ast::{Body, Condition, NameTest, Query, Var};
pub use eval::{any_match, evaluate, pick_bindings};
pub use gen::{random_query, random_view_query, QueryGenConfig};
pub use normalize::{normalize, NormalizeError};
pub use parser::{parse_query, QueryError};
