//! Experiment X2 and the paper's Definition 3.1, as property tests: for
//! *random* DTDs, *random* pick-element queries, and *random* valid source
//! documents, every view document satisfies the inferred view DTDs, and
//! the Figure 2 verdicts mean what they claim.

use mix::dtd::generate::{seeded_dtd, DtdGenConfig};
use mix::dtd::sample::{DocConfig, DocSampler};
use mix::dtd::sdtd::SAcceptor;
use mix::dtd::validate::Validator;
use mix::prelude::*;
use mix::xmas::gen::{random_query, QueryGenConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn doc_cfg() -> DocConfig {
    DocConfig {
        max_nodes: 60,
        ..DocConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness (Definition 3.1): V(d) |= D_V for every valid source d.
    #[test]
    fn inferred_view_dtds_are_sound(dtd_seed in 0u64..400, q_seed in 0u64..1000) {
        let source = seeded_dtd(dtd_seed, &DtdGenConfig::default());
        let mut rng = StdRng::seed_from_u64(q_seed);
        let q = random_query(&source, &mut rng, &QueryGenConfig::default());
        let iv = infer_view_dtd(&q, &source).expect("generated queries normalize");
        let validator = Validator::new(&iv.dtd);
        let acceptor = SAcceptor::new(&iv.sdtd);
        let sampler = DocSampler::new(&source, doc_cfg()).expect("generator guarantees docs");
        for _ in 0..12 {
            let doc = sampler.sample(&mut rng);
            let view = evaluate(&iv.query, &doc);
            if let Err(e) = validator.validate_document(&view) {
                panic!(
                    "UNSOUND merged DTD (dtd_seed={dtd_seed}, q_seed={q_seed}): {e}\n\
                     query:\n{q}\nview DTD:\n{}\nsource doc:\n{}\nview doc:\n{}",
                    iv.dtd,
                    write_document(&doc, WriteConfig::default()),
                    write_document(&view, WriteConfig::default()),
                );
            }
            if !acceptor.document_satisfies(&view) {
                panic!(
                    "UNSOUND s-DTD (dtd_seed={dtd_seed}, q_seed={q_seed})\n\
                     query:\n{q}\ns-DTD:\n{}\nview doc:\n{}",
                    iv.sdtd,
                    write_document(&view, WriteConfig::default()),
                );
            }
        }
    }

    /// The inferred tight DTD is never looser than the naive baseline
    /// (and both are sound, so tight ⊆ naive as document sets).
    #[test]
    fn tight_dtd_is_tighter_than_naive(dtd_seed in 0u64..200, q_seed in 0u64..500) {
        let source = seeded_dtd(dtd_seed, &DtdGenConfig::default());
        let mut rng = StdRng::seed_from_u64(q_seed);
        let q = random_query(&source, &mut rng, &QueryGenConfig::default());
        let iv = infer_view_dtd(&q, &source).expect("normalizes");
        let naive = naive_view_dtd(&iv.query, &source, NaiveMode::Sound);
        let cmp = tighter_than(&iv.dtd, &naive);
        prop_assert!(
            cmp.holds(),
            "tight DTD not ⊆ naive ({cmp:?}) for dtd_seed={dtd_seed}, q_seed={q_seed}\n\
             query:\n{q}\ntight:\n{}\nnaive:\n{naive}",
            iv.dtd
        );
    }

    /// Figure 2's side effect, semantically: `Valid` queries match every
    /// document, `Unsatisfiable` queries match none.
    #[test]
    fn verdicts_mean_what_they_say(dtd_seed in 0u64..200, q_seed in 0u64..500) {
        let source = seeded_dtd(dtd_seed, &DtdGenConfig::default());
        let mut rng = StdRng::seed_from_u64(q_seed);
        let q = random_query(&source, &mut rng, &QueryGenConfig::default());
        let iv = infer_view_dtd(&q, &source).expect("normalizes");
        let sampler = DocSampler::new(&source, doc_cfg()).expect("docs exist");
        for _ in 0..10 {
            let doc = sampler.sample(&mut rng);
            let view = evaluate(&iv.query, &doc);
            match iv.verdict {
                Verdict::Valid => prop_assert!(
                    !view.root.children().is_empty(),
                    "Valid verdict but empty view (dtd_seed={dtd_seed}, q_seed={q_seed})\n{q}\n\
                     source:\n{}",
                    write_document(&doc, WriteConfig::default())
                ),
                Verdict::Unsatisfiable => prop_assert!(
                    view.root.children().is_empty(),
                    "Unsatisfiable verdict but non-empty view \
                     (dtd_seed={dtd_seed}, q_seed={q_seed})\n{q}"
                ),
                Verdict::Satisfiable => {}
            }
        }
    }

    /// The specialized view DTD never describes more size-bounded
    /// structures than the merged one, which never describes more than the
    /// naive one.
    #[test]
    fn counting_respects_the_tightness_ladder(dtd_seed in 0u64..60, q_seed in 0u64..200) {
        let source = seeded_dtd(dtd_seed, &DtdGenConfig { names: 6, ..DtdGenConfig::default() });
        let mut rng = StdRng::seed_from_u64(q_seed);
        let q = random_query(&source, &mut rng, &QueryGenConfig::default());
        let rows = tightness_counts(&q, &source, 9);
        for r in rows {
            prop_assert!(r.specialized <= r.merged,
                "s-DTD looser at size {} (dtd_seed={dtd_seed}, q_seed={q_seed})", r.size);
            prop_assert!(r.merged <= r.naive,
                "merged looser than naive at size {} (dtd_seed={dtd_seed}, q_seed={q_seed})",
                r.size);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The specialized view DTD is (bounded-)tighter than its own merged
    /// plain form — merging only ever loses precision, never soundness.
    #[test]
    fn sdtd_is_tighter_than_merged(dtd_seed in 0u64..100, q_seed in 0u64..300) {
        use mix::dtd::{sdtd_tighter_than_bounded, SBoundedTightness, SDtd};
        let source = seeded_dtd(dtd_seed, &DtdGenConfig { names: 6, ..DtdGenConfig::default() });
        let mut rng = StdRng::seed_from_u64(q_seed);
        let q = random_query(&source, &mut rng, &QueryGenConfig::default());
        let iv = infer_view_dtd(&q, &source).expect("normalizes");
        let merged_as_sdtd = SDtd::from_dtd(&iv.dtd);
        if let SBoundedTightness::Witness(w) =
            sdtd_tighter_than_bounded(&iv.sdtd, &merged_as_sdtd, 6, 60_000)
        {
            panic!(
                "s-DTD document escapes the merged DTD \
                 (dtd_seed={dtd_seed}, q_seed={q_seed}):\n{w:?}\nquery:\n{q}"
            );
        }
    }
}

/// The paper's D1 deserves a dedicated, heavier soundness pass.
#[test]
fn d1_soundness_sweep() {
    let source = mix::dtd::paper::d1_department();
    let mut rng = StdRng::seed_from_u64(2024);
    for round in 0..60 {
        let q = random_query(&source, &mut rng, &QueryGenConfig::default());
        let report = soundness_check(&q, &source, 25, round, doc_cfg());
        assert_eq!(
            report.dtd_violations + report.sdtd_violations,
            0,
            "unsound inference in round {round} for query\n{q}"
        );
    }
}
