//! Parser for content-model regular expressions.
//!
//! Accepts both the paper's notation and XML DTD content-model syntax:
//!
//! ```text
//! model  := alt
//! alt    := concat ( '|' concat )*
//! concat := postfix ( ',' postfix )*
//! postfix:= atom ( '*' | '+' | '?' )*
//! atom   := NAME [ '^' TAG ]  |  '(' alt ')'  |  'ε'  |  '∅'
//! ```
//!
//! Names follow XML name rules (letters, digits, `.`, `-`, `_`, `:`), and a
//! trailing `^k` writes a tagged name of a specialized DTD (Definition 3.8).

use crate::ast::Regex;
use crate::symbol::Name;
use std::fmt;

/// A parse error with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// A hand-rolled lexing cursor, shared with the DTD and query parsers in
/// the downstream crates (they embed content-model regexes).
pub struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `src`.
    pub fn new(src: &'a str) -> Self {
        Cursor { src, pos: 0 }
    }

    /// An error at the current position.
    pub fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    /// Skips whitespace.
    pub fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    /// Peeks the next character.
    pub fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    /// Consumes and returns the next character.
    pub fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    /// Consumes `c` (after whitespace) if present.
    pub fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Requires `c` (after whitespace).
    pub fn expect(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}'")))
        }
    }

    /// True when only whitespace remains.
    pub fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.src.len()
    }

    /// Current byte position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    fn is_name_start(c: char) -> bool {
        c.is_alphabetic() || c == '_' || c == ':'
    }

    fn is_name_char(c: char) -> bool {
        c.is_alphanumeric() || matches!(c, '_' | ':' | '.' | '-' | '#')
    }

    /// Parses an XML name (optionally starting with `#`, for `#PCDATA`).
    pub fn name(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let start = self.pos;
        match self.peek() {
            Some(c) if Self::is_name_start(c) || c == '#' => {
                self.bump();
            }
            _ => return Err(self.err("expected a name")),
        }
        while let Some(c) = self.peek() {
            if Self::is_name_char(c) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(&self.src[start..self.pos])
    }

    fn number(&mut self) -> Result<u32, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        self.src[start..self.pos]
            .parse()
            .map_err(|_| self.err("expected a tag number"))
    }

    fn atom(&mut self) -> Result<Regex, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.bump();
                let inner = self.alt()?;
                self.expect(')')?;
                Ok(inner)
            }
            Some('ε') => {
                self.bump();
                Ok(Regex::Epsilon)
            }
            Some('∅') => {
                self.bump();
                Ok(Regex::Empty)
            }
            _ => {
                let n = self.name()?;
                let name = Name::intern(n);
                if self.peek() == Some('^') {
                    self.bump();
                    let tag = self.number()?;
                    Ok(Regex::sym(name.tagged(tag)))
                } else {
                    Ok(Regex::name(name))
                }
            }
        }
    }

    fn postfix(&mut self) -> Result<Regex, ParseError> {
        let mut r = self.atom()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('*') => {
                    self.bump();
                    r = Regex::star(r);
                }
                Some('+') => {
                    self.bump();
                    r = Regex::plus(r);
                }
                Some('?') => {
                    self.bump();
                    r = Regex::opt(r);
                }
                _ => break,
            }
        }
        Ok(r)
    }

    fn concat(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.postfix()?];
        while self.eat(',') {
            parts.push(self.postfix()?);
        }
        Ok(Regex::concat(parts))
    }

    /// Parses a full regex (entry point for embedded models).
    pub fn alt(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.concat()?];
        while self.eat('|') {
            parts.push(self.concat()?);
        }
        Ok(Regex::alt(parts))
    }
}

/// Parses a content-model regular expression.
pub fn parse_regex(src: &str) -> Result<Regex, ParseError> {
    let mut c = Cursor::new(src);
    let r = c.alt()?;
    if !c.at_end() {
        return Err(c.err("trailing input after regular expression"));
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{name, sym};

    #[test]
    fn simple_forms() {
        assert_eq!(parse_regex("a").unwrap(), Regex::Sym(sym("a")));
        assert_eq!(
            parse_regex("a, b").unwrap(),
            Regex::Sym(sym("a")).then(Regex::Sym(sym("b")))
        );
        assert_eq!(
            parse_regex("a | b").unwrap(),
            Regex::Sym(sym("a")).or(Regex::Sym(sym("b")))
        );
        assert_eq!(
            parse_regex("a*").unwrap(),
            Regex::star(Regex::Sym(sym("a")))
        );
    }

    #[test]
    fn precedence() {
        // '|' loosest, ',' tighter, postfix tightest.
        let r = parse_regex("a, b | c").unwrap();
        assert_eq!(
            r,
            Regex::alt([
                Regex::Sym(sym("a")).then(Regex::Sym(sym("b"))),
                Regex::Sym(sym("c")),
            ])
        );
        let r = parse_regex("a, b*").unwrap();
        assert_eq!(
            r,
            Regex::Sym(sym("a")).then(Regex::star(Regex::Sym(sym("b"))))
        );
    }

    #[test]
    fn parens_and_stacked_postfix() {
        let r = parse_regex("(a | b)*").unwrap();
        assert_eq!(
            r,
            Regex::star(Regex::Sym(sym("a")).or(Regex::Sym(sym("b"))))
        );
        // a+? == (a+)? == a*
        assert_eq!(parse_regex("a+?").unwrap(), parse_regex("a*").unwrap());
    }

    #[test]
    fn tagged_names() {
        let r = parse_regex("publication^1").unwrap();
        assert_eq!(r, Regex::sym(name("publication").tagged(1)));
        let r = parse_regex("a^2 | a").unwrap();
        assert_eq!(r.syms().len(), 2);
    }

    #[test]
    fn paper_d1_publication_type() {
        let r = parse_regex("title, author+, (journal | conference)").unwrap();
        assert_eq!(r.names().len(), 4);
        assert!(!r.nullable());
    }

    #[test]
    fn epsilon_and_empty_literals() {
        assert_eq!(parse_regex("ε").unwrap(), Regex::Epsilon);
        assert_eq!(parse_regex("∅").unwrap(), Regex::Empty);
        assert_eq!(
            parse_regex("a | ε").unwrap(),
            Regex::opt(Regex::Sym(sym("a")))
        );
    }

    #[test]
    fn errors() {
        assert!(parse_regex("").is_err());
        assert!(parse_regex("a,,b").is_err());
        assert!(parse_regex("(a").is_err());
        assert!(parse_regex("a)").is_err());
        assert!(parse_regex("a b").is_err()); // juxtaposition is not concat
        assert!(parse_regex("|a").is_err());
        assert!(parse_regex("a^x").is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        assert_eq!(
            parse_regex("  a ,\n\tb  ").unwrap(),
            parse_regex("a,b").unwrap()
        );
    }
}
