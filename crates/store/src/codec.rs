//! The store's byte layer: little-endian primitive encoding and the
//! length-prefixed, checksummed record framing.
//!
//! A store file is `MAGIC` followed by records. One record is
//!
//! ```text
//! [kind: u8][len: u32 LE][payload: len bytes][check: u64 LE]
//! ```
//!
//! where `check` is FNV-1a over the kind byte, the length field, and the
//! payload — so a flip anywhere in a record (including its framing)
//! fails verification. Decoding is total: every read is bounds-checked
//! and returns `None` instead of panicking, because the input is
//! untrusted bytes off a disk.

/// File magic, version included: bump the trailing digit on any
/// incompatible format change so old files are skipped, not misread.
pub const MAGIC: [u8; 8] = *b"MIXSTOR1";

/// Record kind: the portable regex-pool arena.
pub const KIND_POOL: u8 = 1;
/// Record kind: a batch of memoized inclusion results.
pub const KIND_INCLUSIONS: u8 = 2;
/// Record kind: one inference-cache entry.
pub const KIND_VIEW: u8 = 3;
/// Record kind: one memoized satisfiability verdict (PR 10). Loaders
/// predating it skip the records as an unknown future kind.
pub const KIND_SAT: u8 = 4;

/// FNV-1a over `bytes` — the same checksum the fingerprint layer uses.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian payload writer.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian payload reader.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    pub fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }
}

/// Frames `payload` as one checksummed record.
pub fn frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let len = payload.len() as u32;
    let mut out = Vec::with_capacity(1 + 4 + payload.len() + 8);
    out.push(kind);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(&out).to_le_bytes());
    out
}

/// One step of record scanning.
pub enum Scan<'a> {
    /// A record whose checksum verified.
    Record { kind: u8, payload: &'a [u8] },
    /// A fully-framed record whose checksum failed — skipped, scanning
    /// continues at the next frame boundary.
    Corrupt,
    /// The tail of the file is not a whole record (torn append or a
    /// corrupted length field pointing past the end): scanning stops.
    Truncated,
    /// Clean end of input.
    End,
}

/// Scans the record stream after the file header.
pub struct Records<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Records<'a> {
    pub fn new(body: &'a [u8]) -> Records<'a> {
        Records { buf: body, pos: 0 }
    }

    pub fn next(&mut self) -> Scan<'a> {
        let rest = &self.buf[self.pos..];
        if rest.is_empty() {
            return Scan::End;
        }
        if rest.len() < 1 + 4 {
            return Scan::Truncated;
        }
        let len = u32::from_le_bytes(rest[1..5].try_into().expect("4 bytes")) as usize;
        let Some(total) = len.checked_add(1 + 4 + 8) else {
            return Scan::Truncated;
        };
        if rest.len() < total {
            return Scan::Truncated;
        }
        let framed = &rest[..total];
        self.pos += total;
        let stored = u64::from_le_bytes(framed[total - 8..].try_into().expect("8 bytes"));
        if fnv1a(&framed[..total - 8]) != stored {
            return Scan::Corrupt;
        }
        Scan::Record {
            kind: framed[0],
            payload: &framed[5..total - 8],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips() {
        let framed = frame(KIND_VIEW, b"payload");
        let mut records = Records::new(&framed);
        match records.next() {
            Scan::Record { kind, payload } => {
                assert_eq!(kind, KIND_VIEW);
                assert_eq!(payload, b"payload");
            }
            _ => panic!("framed record must scan"),
        }
        assert!(matches!(records.next(), Scan::End));
    }

    #[test]
    fn every_single_byte_flip_is_caught() {
        let framed = frame(KIND_POOL, b"some payload bytes");
        for i in 0..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x10;
            let mut records = Records::new(&bad);
            match records.next() {
                Scan::Record { .. } => panic!("flip at {i} went undetected"),
                Scan::Corrupt | Scan::Truncated => {}
                Scan::End => panic!("flip at {i} emptied the stream"),
            }
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let framed = frame(KIND_INCLUSIONS, b"xyz");
        for cut in 1..framed.len() {
            let mut records = Records::new(&framed[..cut]);
            assert!(
                matches!(records.next(), Scan::Truncated | Scan::Corrupt),
                "cut at {cut} must not yield a record"
            );
        }
    }

    #[test]
    fn dec_never_reads_past_the_end() {
        let mut d = Dec::new(&[1, 2, 3]);
        assert_eq!(d.u8(), Some(1));
        assert_eq!(d.u32(), None, "2 bytes left, u32 needs 4");
        assert_eq!(d.u8(), Some(2));
        let mut d = Dec::new(&[200, 0, 0, 0, b'h', b'i']);
        assert_eq!(d.str(), None, "declared length 200 exceeds the buffer");
    }
}
