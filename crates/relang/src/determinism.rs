//! 1-unambiguity ("determinism") of content models.
//!
//! XML 1.0 requires content models to be *deterministic*: a SGML-inherited
//! rule demanding that each input symbol decide the next position without
//! lookahead — formally, that the Glushkov automaton is deterministic
//! (Brüggemann-Klein & Wood). The paper ignores the rule (its inferred
//! DTDs are used by a query processor, not fed back to an XML parser),
//! but a view DTD handed to standard tooling must satisfy it, so the
//! library reports it: inferred view DTDs are frequently 1-ambiguous
//! right after `Merge` (e.g. the union of two interleavings) and become
//! deterministic again after simplification.

use crate::ast::Regex;
use crate::nfa::Nfa;
use crate::symbol::Sym;

/// A witness that `r` is not 1-unambiguous: from some prefix, the next
/// `symbol` could continue at two different positions of the expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ambiguity {
    /// The symbol with competing positions.
    pub symbol: Sym,
    /// The two competing Glushkov positions (1-based leaf indices in
    /// left-to-right order).
    pub positions: (u32, u32),
}

/// Checks 1-unambiguity: `None` means the model is deterministic in the
/// XML 1.0 sense; otherwise a witness is returned.
pub fn ambiguity(r: &Regex) -> Option<Ambiguity> {
    let nfa = Nfa::from_regex(r);
    for transitions in &nfa.transitions {
        for (i, &(sym_a, ta)) in transitions.iter().enumerate() {
            for &(sym_b, tb) in &transitions[i + 1..] {
                if sym_a == sym_b && ta != tb {
                    return Some(Ambiguity {
                        symbol: sym_a,
                        positions: (ta.min(tb), ta.max(tb)),
                    });
                }
            }
        }
    }
    None
}

/// Is the content model deterministic (1-unambiguous)?
pub fn is_deterministic(r: &Regex) -> bool {
    ambiguity(r).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;

    fn det(s: &str) -> bool {
        is_deterministic(&parse_regex(s).unwrap())
    }

    #[test]
    fn deterministic_models() {
        assert!(det("a, b, c"));
        assert!(det("(a | b)*"));
        assert!(det("title, author+, (journal | conference)"));
        assert!(det("firstName, lastName, publication+, teaches"));
        assert!(det("publication, publication+")); // D2's "at least two"
        assert!(det("a?, b"));
    }

    #[test]
    fn classic_ambiguous_models() {
        // the canonical example: (a, b) | (a, c) — after reading `a` the
        // parser cannot decide which branch it is in
        assert!(!det("(a, b) | (a, c)"));
        // (a | ε), a  ≡ a?, a — ambiguous on `a`
        assert!(!det("a?, a"));
        // merge-style union of interleavings
        assert!(!det("(x, j, c) | (x, c, j)"));
    }

    #[test]
    fn witness_points_at_the_symbol() {
        let r = parse_regex("(a, b) | (a, c)").unwrap();
        let w = ambiguity(&r).unwrap();
        assert_eq!(w.symbol, crate::symbol::sym("a"));
        assert_ne!(w.positions.0, w.positions.1);
    }

    #[test]
    fn factoring_restores_determinism() {
        // the simplifier's union factoring turns the ambiguous form into
        // the deterministic a, (b | c)
        let r = parse_regex("(a, b) | (a, c)").unwrap();
        let s = crate::simplify::simplify(&r);
        assert!(is_deterministic(&s), "simplified to {s}");
    }

    #[test]
    fn ambiguity_is_about_positions_not_language() {
        // a, a* and a+ have the same language; both deterministic
        assert!(det("a, a*"));
        assert!(det("a+"));
        // but b*, (b | c) is ambiguous on b despite a simple language
        assert!(!det("b*, (b | c)"));
    }
}
