//! Per-connection byte ring buffers for the reactor.
//!
//! A [`RingBuf`] is a power-of-two circular byte queue that grows on
//! demand: the reactor appends whatever a nonblocking read produced,
//! parses complete frames off the front, and stages outgoing frames for
//! incremental nonblocking writes. Heads and tails chase each other
//! around the ring, so steady-state traffic costs zero copies beyond the
//! socket transfer itself — the buffer is only linearized when it must
//! grow.

use std::io::{Read, Write};

/// How many bytes one `fill_from` call asks the socket for.
const READ_CHUNK: usize = 64 * 1024;

/// A growable circular byte buffer.
#[derive(Debug)]
pub struct RingBuf {
    buf: Box<[u8]>,
    head: usize, // index of the first queued byte
    len: usize,  // queued bytes
}

impl RingBuf {
    /// An empty ring; `capacity` rounds up to a power of two (min 64).
    pub fn with_capacity(capacity: usize) -> RingBuf {
        let cap = capacity.max(64).next_power_of_two();
        RingBuf {
            buf: vec![0u8; cap].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Queued bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn mask(&self, i: usize) -> usize {
        i & (self.buf.len() - 1)
    }

    /// Grows (linearizing) until at least `additional` more bytes fit.
    fn reserve(&mut self, additional: usize) {
        let needed = self.len + additional;
        if needed <= self.buf.len() {
            return;
        }
        let new_cap = needed.next_power_of_two();
        let mut new_buf = vec![0u8; new_cap].into_boxed_slice();
        let (a, b) = self.front_slices();
        new_buf[..a.len()].copy_from_slice(a);
        new_buf[a.len()..a.len() + b.len()].copy_from_slice(b);
        self.head = 0;
        self.buf = new_buf;
    }

    /// The queued bytes as (front, wrapped) slices; the second is empty
    /// unless the data wraps the ring edge.
    pub fn front_slices(&self) -> (&[u8], &[u8]) {
        let start = self.head;
        let end = self.head + self.len;
        if end <= self.buf.len() {
            (&self.buf[start..end], &[][..])
        } else {
            (&self.buf[start..], &self.buf[..self.mask(end)])
        }
    }

    /// Appends `data`.
    pub fn push_slice(&mut self, data: &[u8]) {
        self.reserve(data.len());
        let tail = self.mask(self.head + self.len);
        let first = data.len().min(self.buf.len() - tail);
        self.buf[tail..tail + first].copy_from_slice(&data[..first]);
        let rest = &data[first..];
        self.buf[..rest.len()].copy_from_slice(rest);
        self.len += data.len();
    }

    /// Copies the first `out.len()` queued bytes into `out` without
    /// consuming them. Returns false if fewer are queued.
    pub fn peek_into(&self, out: &mut [u8]) -> bool {
        if self.len < out.len() {
            return false;
        }
        let (a, b) = self.front_slices();
        let first = out.len().min(a.len());
        let rest = out.len() - first;
        out[..first].copy_from_slice(&a[..first]);
        out[first..].copy_from_slice(&b[..rest]);
        true
    }

    /// Drops the first `n` queued bytes.
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.len);
        self.head = self.mask(self.head + n);
        self.len -= n;
        if self.len == 0 {
            self.head = 0; // free relinearization
        }
    }

    /// Consumes exactly `n` bytes into a fresh `Vec`. Panics (debug) if
    /// fewer are queued — the caller has already seen the frame header.
    pub fn take_vec(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        let ok = self.peek_into(&mut out);
        debug_assert!(ok);
        self.consume(n);
        out
    }

    /// One nonblocking read from `r` into the ring (up to [`READ_CHUNK`]
    /// bytes, one contiguous region). Returns `Ok(0)` on EOF; passes
    /// `WouldBlock` and other errors through untouched.
    pub fn fill_from(&mut self, r: &mut impl Read) -> std::io::Result<usize> {
        self.reserve(8 * 1024);
        let tail = self.mask(self.head + self.len);
        // the contiguous spare region starting at the tail ends at the
        // head when the queued data wraps, else at the ring edge
        let spare_end = if self.len > 0 && tail < self.head {
            self.head
        } else {
            self.buf.len()
        };
        let span = (spare_end - tail).min(READ_CHUNK);
        let n = r.read(&mut self.buf[tail..tail + span])?;
        self.len += n;
        Ok(n)
    }

    /// One nonblocking write of the front contiguous region to `w`.
    /// Returns how many bytes left the ring; passes `WouldBlock` through.
    pub fn drain_to(&mut self, w: &mut impl Write) -> std::io::Result<usize> {
        if self.len == 0 {
            return Ok(0);
        }
        let (a, _) = self.front_slices();
        let n = w.write(a)?;
        self.consume(n);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_peek_consume_roundtrip() {
        let mut r = RingBuf::with_capacity(8); // rounds to 64
        r.push_slice(b"hello world");
        assert_eq!(r.len(), 11);
        let mut head = [0u8; 5];
        assert!(r.peek_into(&mut head));
        assert_eq!(&head, b"hello");
        r.consume(6);
        assert_eq!(r.take_vec(5), b"world");
        assert!(r.is_empty());
    }

    #[test]
    fn wraps_around_the_ring_edge() {
        let mut r = RingBuf::with_capacity(64);
        // walk the head deep into the ring (one byte stays resident so
        // the head is not reset), then force a wrap
        r.push_slice(&[b'x'; 56]);
        r.consume(55);
        let data: Vec<u8> = (0..40u8).collect();
        r.push_slice(&data);
        let (a, b) = r.front_slices();
        assert_eq!(a.len() + b.len(), 41);
        assert!(!b.is_empty(), "expected wrapped data");
        assert_eq!(r.take_vec(1), [b'x']);
        assert_eq!(r.take_vec(40), data);
    }

    #[test]
    fn grows_preserving_order_across_the_wrap() {
        let mut r = RingBuf::with_capacity(64);
        r.push_slice(&[1u8; 48]);
        r.consume(40);
        let tail: Vec<u8> = (0..200u8).collect();
        r.push_slice(&tail); // wraps, then outgrows 64
        assert_eq!(r.len(), 8 + 200);
        assert_eq!(r.take_vec(8), [1u8; 8]);
        assert_eq!(r.take_vec(200), tail);
    }

    #[test]
    fn fill_and_drain_move_bytes_through_io_traits() {
        let mut r = RingBuf::with_capacity(64);
        let src: Vec<u8> = (0..255u8).cycle().take(100_000).collect();
        let mut cursor = std::io::Cursor::new(src.clone());
        let mut moved = 0;
        let mut out = Vec::new();
        while moved < src.len() || !r.is_empty() {
            if moved < src.len() {
                moved += r.fill_from(&mut cursor).unwrap();
            }
            r.drain_to(&mut out).unwrap();
        }
        assert_eq!(out, src);
    }
}
