//! Property suites for the regular-language substrate: the decision
//! procedures behind tightness must agree with each other and with brute
//! force on random regexes.

use mix::prelude::*;
use mix::relang::dfa::Dfa;
use mix::relang::nfa::Nfa;
use mix::relang::sample::{sample_word, SampleConfig};
use mix::relang::Sym;
use proptest::prelude::*;

/// A strategy producing random content-model regexes over a small
/// alphabet.
fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        4 => prop::sample::select(vec!["a", "b", "c"]).prop_map(|s| Regex::Sym(sym(s))),
        1 => Just(Regex::Epsilon),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::star),
            inner.clone().prop_map(Regex::plus),
            inner.prop_map(Regex::opt),
        ]
    })
}

fn alphabet() -> Vec<Sym> {
    vec![sym("a"), sym("b"), sym("c")]
}

/// All words over {a,b,c} of length ≤ 4 (121 words) — small enough to
/// brute-force every property.
fn all_words() -> Vec<Vec<Sym>> {
    let alpha = alphabet();
    let mut out: Vec<Vec<Sym>> = vec![vec![]];
    let mut layer: Vec<Vec<Sym>> = vec![vec![]];
    for _ in 0..4 {
        let mut next = Vec::new();
        for w in &layer {
            for &s in &alpha {
                let mut w2 = w.clone();
                w2.push(s);
                next.push(w2);
            }
        }
        out.extend(next.iter().cloned());
        layer = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// NFA simulation and determinized DFA agree word-by-word.
    #[test]
    fn nfa_and_dfa_agree(r in arb_regex()) {
        let nfa = Nfa::from_regex(&r);
        let dfa = Dfa::from_regex_with_alphabet(&r, &alphabet());
        for w in all_words() {
            prop_assert_eq!(nfa.accepts(&w), dfa.accepts(&w), "word {:?} of {}", w, r);
        }
    }

    /// `simplify` never changes the language and never grows the regex.
    #[test]
    fn simplify_preserves_language(r in arb_regex()) {
        let s = simplify(&r);
        prop_assert!(equivalent(&r, &s), "{r} vs {s}");
        prop_assert!(s.size() <= r.size(), "{r} grew to {s}");
    }

    /// Inclusion agrees with brute-force word checking.
    #[test]
    fn subset_agrees_with_bruteforce(a in arb_regex(), b in arb_regex()) {
        let claim = is_subset(&a, &b);
        let na = Nfa::from_regex(&a);
        let nb = Nfa::from_regex(&b);
        let brute_counterexample = all_words()
            .into_iter()
            .find(|w| na.accepts(w) && !nb.accepts(w));
        if let Some(w) = &brute_counterexample {
            prop_assert!(!claim, "claimed {a} ⊆ {b} but {w:?} separates them");
        }
        // (no counterexample up to length 4 does not prove inclusion, so
        // only the one-sided check is possible here)
    }

    /// `refine` computes exactly the containing sublanguage (Definition
    /// 4.1), verified by brute force.
    #[test]
    fn refine_is_exact(r in arb_regex()) {
        let n = name("a");
        let refined = mix::infer::refine1(&r, n, 0);
        let nr = Nfa::from_regex(&r);
        let nref = Nfa::from_regex(&refined);
        for w in all_words() {
            let expected = nr.accepts(&w) && w.iter().any(|s| s.name == n);
            prop_assert_eq!(
                nref.accepts(&w),
                expected,
                "refine({}, a) wrong on {:?} (got {})",
                &r, &w, &refined
            );
        }
    }

    /// Sampled words are members; nullable regexes can sample ε.
    #[test]
    fn sampled_words_are_members(r in arb_regex(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        if let Some(w) = sample_word(&r, &mut rng, SampleConfig::default()) {
            prop_assert!(mix::relang::matches(&r, &w), "sampled {:?} ∉ L({})", w, r);
        } else {
            prop_assert!(r.is_empty_lang());
        }
    }

    /// Counting agrees with brute force on lengths ≤ 4.
    #[test]
    fn counting_agrees_with_bruteforce(r in arb_regex()) {
        let counts = mix::relang::count_words_by_len(&r, 4);
        let nfa = Nfa::from_regex(&r);
        let mut brute = vec![0u128; 5];
        for w in all_words() {
            if nfa.accepts(&w) {
                brute[w.len()] += 1;
            }
        }
        prop_assert_eq!(counts, brute, "counting mismatch for {}", r);
    }

    /// Brzozowski derivatives agree with the Glushkov NFA — two
    /// independent matchers cross-validating every membership decision.
    #[test]
    fn derivatives_agree_with_nfa(r in arb_regex()) {
        let nfa = Nfa::from_regex(&r);
        for w in all_words() {
            prop_assert_eq!(
                nfa.accepts(&w),
                mix::relang::matches_by_derivative(&r, &w),
                "matcher disagreement on {:?} of {}", w, r
            );
        }
    }

    /// The Glushkov invariant: smart constructors never nest Empty.
    #[test]
    fn smart_constructors_keep_empty_at_top(r in arb_regex()) {
        fn no_inner_empty(r: &Regex) -> bool {
            match r {
                Regex::Empty | Regex::Epsilon | Regex::Sym(_) => true,
                Regex::Concat(v) | Regex::Alt(v) => {
                    v.iter().all(|x| !x.is_empty_lang() && no_inner_empty(x))
                }
                Regex::Star(x) | Regex::Plus(x) | Regex::Opt(x) => {
                    !x.is_empty_lang() && no_inner_empty(x)
                }
            }
        }
        prop_assert!(no_inner_empty(&r));
    }

    /// Minimization preserves the language and never adds states.
    #[test]
    fn minimize_preserves_language(r in arb_regex()) {
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&r), &alphabet());
        let min = dfa.minimize();
        prop_assert!(min.len() <= dfa.len());
        for w in all_words() {
            prop_assert_eq!(dfa.accepts(&w), min.accepts(&w));
        }
    }
}
