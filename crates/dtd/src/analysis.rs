//! Static analyses of DTDs: productivity, reachability, and usability.
//!
//! * A name is **productive** when it derives at least one *finite*
//!   document (a recursive name with no base case derives none).
//! * A name is **usable** when it actually occurs in some valid document
//!   of the DTD: it must be productive and reachable from the document
//!   type through contexts whose mandatory siblings are productive too.
//!
//! These analyses restrict the per-type language-inclusion checks so that
//! [`crate::compare::tighter_than`] is exact (DESIGN.md system #9).

use crate::model::{ContentModel, Dtd};
use mix_relang::ast::Regex;
use mix_relang::symbol::Name;
use std::collections::HashSet;

/// Does `L(r)` contain a word using only names in `allowed`?
pub(crate) fn has_word_over(r: &Regex, allowed: &HashSet<Name>) -> bool {
    match r {
        Regex::Empty => false,
        Regex::Epsilon => true,
        Regex::Sym(s) => allowed.contains(&s.name),
        Regex::Concat(v) => v.iter().all(|x| has_word_over(x, allowed)),
        Regex::Alt(v) => v.iter().any(|x| has_word_over(x, allowed)),
        Regex::Star(_) | Regex::Opt(_) => true,
        Regex::Plus(x) => has_word_over(x, allowed),
    }
}

/// Does `L(r)` contain a word over `allowed ∪ {n}` that *mentions* `n`?
pub(crate) fn can_occur(r: &Regex, n: Name, allowed: &HashSet<Name>) -> bool {
    match r {
        Regex::Empty | Regex::Epsilon => false,
        Regex::Sym(s) => s.name == n,
        Regex::Concat(v) => v.iter().enumerate().any(|(i, x)| {
            can_occur(x, n, allowed)
                && v.iter()
                    .enumerate()
                    .all(|(j, y)| j == i || has_word_over(y, allowed))
        }),
        Regex::Alt(v) => v.iter().any(|x| can_occur(x, n, allowed)),
        Regex::Star(x) | Regex::Opt(x) | Regex::Plus(x) => can_occur(x, n, allowed),
    }
}

/// The set of productive names: those deriving at least one finite document.
pub fn productive(d: &Dtd) -> HashSet<Name> {
    let mut prod: HashSet<Name> = HashSet::new();
    loop {
        let mut changed = false;
        for (n, m) in d.types.iter() {
            if prod.contains(&n) {
                continue;
            }
            let ok = match m {
                ContentModel::Pcdata => true,
                ContentModel::Elements(r) => has_word_over(r, &prod),
            };
            if ok {
                prod.insert(n);
                changed = true;
            }
        }
        if !changed {
            return prod;
        }
    }
}

/// The set of usable names: those occurring in at least one valid finite
/// document of `d`.
pub fn usable(d: &Dtd) -> HashSet<Name> {
    let prod = productive(d);
    let mut out: HashSet<Name> = HashSet::new();
    if !prod.contains(&d.doc_type) {
        return out; // the DTD describes no documents at all
    }
    out.insert(d.doc_type);
    let mut frontier = vec![d.doc_type];
    while let Some(n) = frontier.pop() {
        if let Some(ContentModel::Elements(r)) = d.get(n) {
            for child in r.names() {
                if !out.contains(&child) && prod.contains(&child) && can_occur(r, child, &prod) {
                    out.insert(child);
                    frontier.push(child);
                }
            }
        }
    }
    out
}

/// Does the DTD describe at least one document?
pub fn describes_some_document(d: &Dtd) -> bool {
    productive(d).contains(&d.doc_type)
}

/// Names whose content models are *not* 1-unambiguous — i.e. would be
/// rejected by an XML 1.0 validator's determinism rule. Inferred view
/// DTDs can trip this right after merging; the simplifier usually
/// restores determinism (see `mix_relang::determinism`).
pub fn nondeterministic_names(d: &Dtd) -> Vec<Name> {
    d.types
        .iter()
        .filter_map(|(n, m)| match m {
            ContentModel::Elements(r) if !mix_relang::is_deterministic(r) => Some(n),
            _ => None,
        })
        .collect()
}

/// The tractable-fragment class of one content model, following the
/// satisfiability playbook of *XPath Satisfiability with Parent Axes or
/// Qualifiers Is Tractable under Many of Real-World DTDs* (arXiv
/// 1308.0769): joint realizability of a required sibling combination is
/// decided exactly by one structural pass only when the content model is
/// **duplicate-free** (each element name occurs at most once in the
/// regex). Models outside the fragment force the satisfiability analyzer
/// to degrade that check to `Unknown` — never to an unsound `Unsat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentClass {
    /// `PCDATA` content: no element children at all.
    Pcdata,
    /// Every element name occurs at most once in the content regex; the
    /// fragment where sibling-combination realizability is tractable.
    DuplicateFree,
    /// Some element name occurs more than once in the regex; sibling
    /// reasoning over this model is out of the tractable fragment.
    Duplicated,
}

/// Classifies one content model into the tractable fragment (see
/// [`ContentClass`]).
pub fn content_class(m: &ContentModel) -> ContentClass {
    match m {
        ContentModel::Pcdata => ContentClass::Pcdata,
        ContentModel::Elements(r) => {
            let mut seen: HashSet<Name> = HashSet::new();
            if occurrences_unique(r, &mut seen) {
                ContentClass::DuplicateFree
            } else {
                ContentClass::Duplicated
            }
        }
    }
}

/// True when no element name is seen twice across the whole regex.
fn occurrences_unique(r: &Regex, seen: &mut HashSet<Name>) -> bool {
    match r {
        Regex::Empty | Regex::Epsilon => true,
        Regex::Sym(s) => seen.insert(s.name),
        Regex::Concat(v) | Regex::Alt(v) => v.iter().all(|x| occurrences_unique(x, seen)),
        Regex::Star(x) | Regex::Plus(x) | Regex::Opt(x) => occurrences_unique(x, seen),
    }
}

/// Restricts a content model to the given alphabet: occurrences of other
/// names become `∅` and are normalized away. `L(restrict(r, S)) =
/// L(r) ∩ S*`, which is exactly the set of child sequences realizable when
/// only `S` names can appear in a document.
pub fn restrict(r: &Regex, allowed: &HashSet<Name>) -> Regex {
    r.map_syms(&mut |s| {
        if allowed.contains(&s.name) {
            Regex::Sym(s)
        } else {
            Regex::Empty
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_compact;
    use mix_relang::symbol::name;

    fn names(set: &HashSet<Name>) -> Vec<&'static str> {
        let mut v: Vec<&str> = set.iter().map(|n| n.as_str()).collect();
        v.sort();
        v
    }

    #[test]
    fn productive_with_base_case() {
        // section is recursive but has the empty repetition as base case.
        let d = crate::paper::section_recursive();
        let p = productive(&d);
        assert!(p.contains(&name("section")));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn unproductive_infinite_recursion() {
        // loop requires another loop forever: no finite document.
        let d = parse_compact("{<r : loop?> <loop : loop>}").unwrap();
        let p = productive(&d);
        assert!(!p.contains(&name("loop")));
        assert!(p.contains(&name("r")));
        assert!(describes_some_document(&d));
    }

    #[test]
    fn unproductive_root_means_no_documents() {
        let d = parse_compact("{<r : r>}").unwrap();
        assert!(!describes_some_document(&d));
        assert!(usable(&d).is_empty());
    }

    #[test]
    fn usable_excludes_unreachable() {
        let d = parse_compact("{<r : a> <a : PCDATA> <island : PCDATA>}").unwrap();
        assert_eq!(names(&usable(&d)), ["a", "r"]);
    }

    #[test]
    fn usable_excludes_names_blocked_by_unproductive_sibling() {
        // b can only appear next to a mandatory unproductive u, so b is
        // never part of a finite document.
        let d = parse_compact("{<r : (u, b)?> <u : u> <b : PCDATA>}").unwrap();
        assert_eq!(names(&usable(&d)), ["r"]);
    }

    #[test]
    fn usable_via_alternative_branch() {
        let d = parse_compact("{<r : (u, b) | c> <u : u> <b : PCDATA> <c : PCDATA>}").unwrap();
        assert_eq!(names(&usable(&d)), ["c", "r"]);
    }

    #[test]
    fn paper_d1_everything_usable() {
        let d = crate::paper::d1_department();
        let u = usable(&d);
        assert_eq!(u.len(), d.types.len());
    }

    /// The tractable-fragment coverage table for the paper's DTDs,
    /// pinned so it can't silently regress. The source DTDs the paper
    /// feeds the mediator (D1, D9, D11, the recursive section DTD) are
    /// entirely duplicate-free — the satisfiability analyzer's joint
    /// sibling check is exact on all of them. The *inferred* view DTDs
    /// D2 (Q2 over D1) and D10 (Q6 over D9) pick up duplicated names
    /// from specialization merging (`publication, publication+`;
    /// `... journal ..., journal, ...`), so sibling reasoning over those
    /// models must degrade to `Unknown`.
    #[test]
    fn paper_dtd_content_class_table() {
        use ContentClass::*;
        let class_of = |d: &Dtd, n: &str| content_class(d.get(name(n)).unwrap());

        // D1: every model duplicate-free (journal|conference is one
        // occurrence each).
        let d1 = crate::paper::d1_department();
        for n in [
            "department",
            "professor",
            "gradStudent",
            "publication",
            "teaches",
            "journal",
            "conference",
            "course",
        ] {
            assert_eq!(class_of(&d1, n), DuplicateFree, "D1 <{n}>");
        }
        for n in ["firstName", "lastName", "title", "author", "name"] {
            assert_eq!(class_of(&d1, n), Pcdata, "D1 <{n}>");
        }

        // D9 and D11: duplicate-free throughout.
        let d9 = crate::paper::d9_professor();
        assert_eq!(class_of(&d9, "professor"), DuplicateFree);
        assert_eq!(class_of(&d9, "name"), Pcdata);
        let d11 = crate::paper::d11_department();
        for n in ["department", "professor", "gradStudent", "publication"] {
            assert_eq!(class_of(&d11, n), DuplicateFree, "D11 <{n}>");
        }

        // The recursive section DTD stays in the fragment: recursion is
        // fine, duplication is what breaks tractability.
        let sec = crate::paper::section_recursive();
        assert_eq!(class_of(&sec, "section"), DuplicateFree);

        // D2 (the view DTD Q2 infers over D1): specialization merging
        // leaves `publication, publication+` — out of the fragment.
        let d2 = parse_compact(
            "{ (document type: withJournals)
               <withJournals : professor*, gradStudent*>
               <professor : firstName, lastName, publication, publication+, teaches>
               <gradStudent : firstName, lastName, publication, publication+>
               <firstName : PCDATA> <lastName : PCDATA>
               <publication : title, author+, (journal | conference)>
               <teaches : EMPTY> <title : PCDATA> <author : PCDATA>
               <journal : EMPTY> <conference : EMPTY> }",
        )
        .unwrap();
        assert_eq!(class_of(&d2, "professor"), Duplicated);
        assert_eq!(class_of(&d2, "gradStudent"), Duplicated);
        assert_eq!(class_of(&d2, "withJournals"), DuplicateFree);
        assert_eq!(class_of(&d2, "publication"), DuplicateFree);

        // D10 (Q6 over D9): `(journal | conference)*, journal,
        // (journal | conference)*` repeats both names.
        let d10 = parse_compact(
            "{ (document type: answer)
               <answer : professor?>
               <professor : name, (journal | conference)*, journal, (journal | conference)*>
               <name : PCDATA> <journal : EMPTY> <conference : EMPTY> }",
        )
        .unwrap();
        assert_eq!(class_of(&d10, "professor"), Duplicated);
        assert_eq!(class_of(&d10, "answer"), DuplicateFree);
    }

    #[test]
    fn restrict_drops_letters() {
        let r = mix_relang::parse_regex("a, (b | c)*, d?").unwrap();
        let allowed: HashSet<Name> = [name("a"), name("b")].into_iter().collect();
        let out = restrict(&r, &allowed);
        assert_eq!(out.to_string(), "a, b*");
        // restricting away a mandatory letter empties the language
        let allowed: HashSet<Name> = [name("b")].into_iter().collect();
        assert!(restrict(&r, &allowed).is_empty_lang());
    }
}
