//! # MIX — view DTD inference for XML mediators
//!
//! A from-scratch Rust reproduction of *"Enhancing Semistructured Data
//! Mediators with Document Type Definitions"* (Papakonstantinou &
//! Velikhov, ICDE 1999) — the MIX mediator's View DTD Inference module and
//! every substrate it rests on.
//!
//! ```
//! use mix::prelude::*;
//!
//! // the paper's department DTD (D1) and query (Q3)
//! let source = mix::dtd::paper::d1_department();
//! let q = parse_query(
//!     "publist = SELECT P WHERE <department> <name>CS</name> \
//!        <professor | gradStudent> P:<publication><journal/></publication> </> </>",
//! ).unwrap();
//! let view = infer_view_dtd(&q, &source).unwrap();
//! // the inferred view DTD removed the (journal | conference) disjunction
//! let publication = view.dtd.get(name("publication")).unwrap();
//! assert_eq!(publication.to_string(), "title, author+, journal");
//! ```
//!
//! The crates:
//!
//! * [`relang`] — regular expressions over element names + automata,
//! * [`xml`] — the paper's XML abstraction (parser, serializer),
//! * [`dtd`] — DTDs & specialized DTDs: validation, comparison, counting,
//! * [`xmas`] — the pick-element XMAS query language,
//! * [`infer`] — refine / tighten / merge / InferList (the contribution),
//! * [`mediator`] — the MIX mediator: views, simplifier, composition,
//!   stacking,
//! * [`net`] — the mix-net wire protocol for distributed mediation
//!   (`mixctl serve-source` daemons, `RemoteWrapper` clients),
//! * [`obs`] — the observability substrate: atomic instruments, span
//!   tracing, Prometheus/JSON expositions (`mixctl stats`),
//! * [`store`] — the persistent content-addressed warm-start store
//!   (`mixctl ... --store-dir`): pool arena, inclusion memo, and
//!   inference results survive restarts,
//! * [`dataguide`] — strong DataGuides for the Section 5 related-work
//!   comparison.

pub use mix_dataguide as dataguide;
pub use mix_dtd as dtd;
pub use mix_infer as infer;
pub use mix_mediator as mediator;
pub use mix_net as net;
pub use mix_obs as obs;
pub use mix_relang as relang;
pub use mix_store as store;
pub use mix_stream as stream;
pub use mix_xmas as xmas;
pub use mix_xml as xml;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use mix_dataguide::DataGuide;
    pub use mix_dtd::{
        count_documents_by_size, count_sdocuments_by_size, parse_compact, parse_compact_sdtd,
        parse_xml_dtd, same_documents, satisfies, sdtd_satisfies, tighter_than, validate_document,
        ContentModel, Dtd, SDtd,
    };
    pub use mix_infer::metrics::{
        non_tight_witnesses, realization_coverage, serving_metrics, soundness_check,
        tightness_counts, ServingMetrics,
    };
    pub use mix_infer::{
        check_sat, check_sat_memo, classify_query, compose_union_views, infer_view_dtd, merge,
        naive_view_dtd, refine, tighten, CacheStats, InferenceCache, InferredUnionView,
        InferredView, NaiveMode, SatCache, SatVerdict, Verdict, WarmStore,
    };
    pub use mix_mediator::{
        compose, render_structure, Answer, AnswerPath, BreakerState, DeadReplica,
        DegradationReport, Fault, FaultInjector, FaultPlan, Federation, FederationPart,
        FetchStatus, HashRing, LatencyWrapper, Mediator, MediatorError, ProcessorConfig,
        RemoteWrapper, ReplicaInstruments, ReplicaPolicy, ReplicaSet, ResiliencePolicy, ServedBy,
        SourceError, SourceOutcome, SourceSpec, StreamingWrapper, Topology, TopologyError,
        UnionView, ViewWrapper, Wrapper, WrapperService, XmlSource,
    };
    pub use mix_net::{
        AdmissionConfig, ClientConfig, Connection, Msg, NetError, Pool, Server, ServerConfig,
        ServerHandle,
    };
    pub use mix_obs::{Registry, Snapshot};
    pub use mix_relang::symbol::{name, sym, Name, Sym};
    pub use mix_relang::{equivalent, is_subset, parse_regex, simplify, Regex};
    pub use mix_store::{Store, StoreStats};
    pub use mix_stream::{stream_answer, stream_answer_to, CompiledQuery, StreamStats};
    pub use mix_xmas::{evaluate, normalize, parse_query, Query};
    pub use mix_xml::{parse_document, write_document, Document, Element, WriteConfig};
}
