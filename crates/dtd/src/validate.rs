//! Validation of elements and documents against a DTD (Definition 2.3/2.4).

use crate::model::{ContentModel, Dtd};
use mix_relang::symbol::Name;
use mix_relang::Nfa;
use mix_xml::{Content, Document, Element};
use std::collections::HashMap;
use std::fmt;

/// Why an element failed validation, with the path from the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Element names from the root to the offending element.
    pub path: Vec<Name>,
    /// What went wrong there.
    pub kind: ValidationErrorKind,
}

/// The kinds of validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationErrorKind {
    /// The element's name has no type definition (Definition 2.3, cond. 1).
    UndeclaredName(Name),
    /// The root element is not the document type (Definition 2.4).
    WrongDocType {
        /// The expected document type.
        expected: Name,
        /// The actual root name.
        actual: Name,
    },
    /// The child-name sequence is not in the type's language (cond. 2).
    ContentMismatch {
        /// The element whose content failed.
        name: Name,
        /// The observed child-name word.
        found: Vec<Name>,
    },
    /// String content for a non-PCDATA type, or vice versa (cond. 3).
    PcdataMismatch {
        /// The element whose content failed.
        name: Name,
        /// True if the element had string content.
        had_text: bool,
    },
    /// Two elements share an ID (validity, Appendix A).
    DuplicateId(mix_xml::ElemId),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at /")?;
        for (i, n) in self.path.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{n}")?;
        }
        match &self.kind {
            ValidationErrorKind::UndeclaredName(n) => write!(f, ": undeclared name '{n}'"),
            ValidationErrorKind::WrongDocType { expected, actual } => {
                write!(
                    f,
                    ": document type is '{actual}', DTD requires '{expected}'"
                )
            }
            ValidationErrorKind::ContentMismatch { name, found } => {
                write!(f, ": content of '{name}' is [")?;
                for (i, n) in found.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{n}")?;
                }
                write!(f, "], not in the declared model")
            }
            ValidationErrorKind::PcdataMismatch { name, had_text } => {
                if *had_text {
                    write!(f, ": '{name}' has string content but is not PCDATA")
                } else {
                    write!(f, ": '{name}' is PCDATA but has element content")
                }
            }
            ValidationErrorKind::DuplicateId(id) => write!(f, ": duplicate id '{id}'"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// A validator with per-name compiled automata, reusable across many
/// documents (the benches validate thousands).
pub struct Validator<'d> {
    dtd: &'d Dtd,
    automata: HashMap<Name, Nfa>,
}

impl<'d> Validator<'d> {
    /// Compiles every content model of `dtd`.
    pub fn new(dtd: &'d Dtd) -> Validator<'d> {
        let mut automata = HashMap::new();
        for (n, m) in dtd.types.iter() {
            if let ContentModel::Elements(r) = m {
                automata.insert(n, Nfa::from_regex(r));
            }
        }
        Validator { dtd, automata }
    }

    /// Checks `e |= D` (Definition 2.3), ignoring the document-type rule.
    pub fn validate_element(&self, e: &Element) -> Result<(), ValidationError> {
        let mut path = Vec::new();
        self.go(e, &mut path)
    }

    /// Checks a full document: `e |= D`, root name = document type, and ID
    /// uniqueness.
    pub fn validate_document(&self, doc: &Document) -> Result<(), ValidationError> {
        if doc.root.name != self.dtd.doc_type {
            return Err(ValidationError {
                path: vec![doc.root.name],
                kind: ValidationErrorKind::WrongDocType {
                    expected: self.dtd.doc_type,
                    actual: doc.root.name,
                },
            });
        }
        if let Some(id) = doc.duplicate_id() {
            return Err(ValidationError {
                path: vec![doc.root.name],
                kind: ValidationErrorKind::DuplicateId(id),
            });
        }
        self.validate_element(&doc.root)
    }

    fn go(&self, e: &Element, path: &mut Vec<Name>) -> Result<(), ValidationError> {
        path.push(e.name);
        let fail = |path: &[Name], kind| {
            Err(ValidationError {
                path: path.to_vec(),
                kind,
            })
        };
        let Some(model) = self.dtd.get(e.name) else {
            return fail(path, ValidationErrorKind::UndeclaredName(e.name));
        };
        match (&e.content, model) {
            (Content::Text(_), ContentModel::Pcdata) => {}
            (Content::Text(_), ContentModel::Elements(_)) => {
                return fail(
                    path,
                    ValidationErrorKind::PcdataMismatch {
                        name: e.name,
                        had_text: true,
                    },
                );
            }
            (Content::Elements(_), ContentModel::Pcdata) => {
                return fail(
                    path,
                    ValidationErrorKind::PcdataMismatch {
                        name: e.name,
                        had_text: false,
                    },
                );
            }
            (Content::Elements(children), ContentModel::Elements(_)) => {
                let word: Vec<mix_relang::Sym> =
                    children.iter().map(|c| c.name.untagged()).collect();
                let nfa = self.automata.get(&e.name).expect("compiled with the DTD");
                if !nfa.accepts(&word) {
                    return fail(
                        path,
                        ValidationErrorKind::ContentMismatch {
                            name: e.name,
                            found: children.iter().map(|c| c.name).collect(),
                        },
                    );
                }
                for c in children {
                    self.go(c, path)?;
                }
            }
        }
        path.pop();
        Ok(())
    }
}

/// One-shot element validation (`e |= D`, Definition 2.3).
pub fn validate_element(dtd: &Dtd, e: &Element) -> Result<(), ValidationError> {
    Validator::new(dtd).validate_element(e)
}

/// One-shot document validation (Definition 2.4 + ID uniqueness).
pub fn validate_document(dtd: &Dtd, doc: &Document) -> Result<(), ValidationError> {
    Validator::new(dtd).validate_document(doc)
}

/// Convenience used throughout the tests: `e |= D`?
pub fn satisfies(dtd: &Dtd, doc: &Document) -> bool {
    validate_document(dtd, doc).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::d1_department;
    use mix_xml::parse_document;

    fn dept_doc() -> Document {
        parse_document(
            "<department>\
               <name>CS</name>\
               <professor><firstName>Y</firstName><lastName>P</lastName>\
                 <publication><title>t</title><author>a</author><journal/></publication>\
                 <teaches/></professor>\
               <gradStudent><firstName>P</firstName><lastName>V</lastName>\
                 <publication><title>t2</title><author>a</author><conference/></publication>\
               </gradStudent>\
             </department>",
        )
        .unwrap()
    }

    #[test]
    fn valid_department_document() {
        assert!(satisfies(&d1_department(), &dept_doc()));
    }

    #[test]
    fn wrong_doc_type() {
        let doc = parse_document("<professor><firstName>x</firstName></professor>").unwrap();
        let err = validate_document(&d1_department(), &doc).unwrap_err();
        assert!(matches!(err.kind, ValidationErrorKind::WrongDocType { .. }));
    }

    #[test]
    fn content_mismatch_reports_path() {
        // professor missing lastName
        let doc = parse_document(
            "<department><name>CS</name>\
               <professor><firstName>Y</firstName>\
                 <publication><title>t</title><author>a</author><journal/></publication>\
                 <teaches/></professor>\
               <gradStudent><firstName>P</firstName><lastName>V</lastName>\
                 <publication><title>t</title><author>a</author><journal/></publication>\
               </gradStudent>\
             </department>",
        )
        .unwrap();
        let err = validate_document(&d1_department(), &doc).unwrap_err();
        match &err.kind {
            ValidationErrorKind::ContentMismatch { name, .. } => {
                assert_eq!(name.as_str(), "professor");
            }
            other => panic!("unexpected error {other:?}"),
        }
        let shown = err.to_string();
        assert!(shown.contains("department/professor"), "{shown}");
    }

    #[test]
    fn pcdata_mismatch_both_directions() {
        // journal is EMPTY (ε) but given text
        let doc = parse_document(
            "<department><name>CS</name>\
               <professor><firstName>Y</firstName><lastName>P</lastName>\
                 <publication><title>t</title><author>a</author>\
                   <journal>VLDB J.</journal></publication>\
                 <teaches/></professor>\
               <gradStudent><firstName>P</firstName><lastName>V</lastName>\
                 <publication><title>t</title><author>a</author><journal/></publication>\
               </gradStudent>\
             </department>",
        )
        .unwrap();
        let err = validate_document(&d1_department(), &doc).unwrap_err();
        assert!(matches!(
            err.kind,
            ValidationErrorKind::PcdataMismatch { had_text: true, .. }
        ));
        // name is PCDATA but given children
        let doc = parse_document(
            "<department><name><x/></name>\
               <professor><firstName>Y</firstName><lastName>P</lastName>\
                 <publication><title>t</title><author>a</author><journal/></publication>\
                 <teaches/></professor>\
               <gradStudent><firstName>P</firstName><lastName>V</lastName>\
                 <publication><title>t</title><author>a</author><journal/></publication>\
               </gradStudent>\
             </department>",
        )
        .unwrap();
        let err = validate_document(&d1_department(), &doc).unwrap_err();
        assert!(matches!(
            err.kind,
            ValidationErrorKind::PcdataMismatch {
                had_text: false,
                ..
            }
        ));
    }

    #[test]
    fn undeclared_name() {
        let dtd = crate::parse::parse_compact("{<r : a?> <a : PCDATA>}").unwrap();
        let doc = parse_document("<r><b>hm</b></r>").unwrap();
        let err = validate_document(&dtd, &doc).unwrap_err();
        // content model is checked first: b is not in a?'s language
        assert!(matches!(
            err.kind,
            ValidationErrorKind::ContentMismatch { .. }
        ));
        // but a document whose *root* is undeclared reports UndeclaredName
        let dtd2 = crate::parse::parse_compact("{<b : zzz?> <zzz : PCDATA>}").unwrap();
        let doc2 = parse_document("<b><undeclared/></b>").unwrap();
        let err2 = validate_document(&dtd2, &doc2).unwrap_err();
        assert!(matches!(
            err2.kind,
            ValidationErrorKind::ContentMismatch { .. }
        ));
    }

    #[test]
    fn empty_content_matches_epsilon_model() {
        let dtd = crate::parse::parse_compact("{<r : a*> <a : EMPTY>}").unwrap();
        let doc = parse_document("<r><a/><a/></r>").unwrap();
        assert!(satisfies(&dtd, &doc));
        let doc = parse_document("<r/>").unwrap();
        assert!(satisfies(&dtd, &doc));
    }

    #[test]
    fn validator_is_reusable() {
        let dtd = d1_department();
        let v = Validator::new(&dtd);
        for _ in 0..3 {
            assert!(v.validate_document(&dept_doc()).is_ok());
        }
    }
}
