//! X20 — the event-driven wire tier: pipelined frames on the X16
//! workload, and the 64-client storm ridden on the multiplexed client.
//!
//! Like X16/X19 this is a custom harness (not Criterion): the acceptance
//! criteria are correctness plus ratios landing in a committed artifact,
//! so the run measures with `std::time::Instant`, asserts every batch of
//! answers byte-identical to an all-in-process reference (the same
//! reference X16 asserted against on the blocking PR 3 path), and writes
//! machine-readable results to `BENCH_PR7.json` at the workspace root.
//!
//! Three phases:
//!
//! All timed windows measure *steady-state* serving: the daemons run the
//! serving-side answer memo (`WrapperService::with_answer_memo`, valid
//! because each daemon serves a start-time snapshot), clients hash-cons
//! reply parses (`RemoteWrapper`'s built-in memo), and both tiers are
//! warmed — with the answers byte-checked — before any clock starts.
//!
//! * **Scaling** — the X16 federation (4 loopback daemons, the 20-query
//!   batch) serving 1/2/4/8 *concurrent client threads*, each thread
//!   running the full batch. X16's blocking stack fell to 0.67x under
//!   added concurrency (thread-per-connection handlers fighting over a
//!   single CPU); the reactor batches frames from every connection per
//!   poll tick and coalesces answers per flush, so aggregate q/s must
//!   be monotone non-decreasing (within tolerance) as clients pile on.
//!   The 1-thread row is the X16-shape single-thread measurement the
//!   storm phase is judged against.
//! * **Storm** — 64 concurrent clients against one daemon, each client
//!   issuing its requests as pipelined batches over a single
//!   connection. The aggregate q/s must beat the X16-shape 1-thread
//!   measurement from *this same run* by ≥4x: the pipelining dividend
//!   (a window of frames per write syscall, answers coalesced per
//!   flush, reads amortized per tick) compounded with the memo tiers —
//!   not parallelism, this container has one CPU.
//! * **Equality** — the pipelined batch path (`answer_batch`) and the
//!   one-frame-at-a-time blocking path (`answer`) must produce
//!   byte-identical answers, both equal to the in-process wrapper.

use mix_bench::{d1, department_of_size, q2};
use mix_mediator::{Mediator, RemoteWrapper, Wrapper, WrapperService, XmlSource};
use mix_net::{ClientConfig, Server, ServerConfig, ServerHandle};
use mix_xmas::{parse_query, Query};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DAEMONS: usize = 4;
const BATCH: usize = 20;
const THREADS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 7;
/// Total batch passes per timed window, split evenly across the window's
/// clients. Keeping the *total* work constant makes every window the same
/// length (tens of ms), so best-of-reps has the same upside bias at every
/// thread count — short 1-client windows would otherwise catch lucky
/// scheduler slices that long 8-client windows cannot.
const PASSES_TOTAL: usize = 24;
const DOC_SIZE: usize = 6;
const STORM_CLIENTS: usize = 64;
const STORM_REQS: usize = 30;
/// Allowed backslide between adjacent thread counts before "monotone"
/// is considered violated. On a single-CPU host the curve is flat (the
/// server saturates the core at 1 client), so the claim being defended
/// is that aggregate q/s *holds* under 8x client concurrency — X16's
/// blocking stack collapsed to 0.67x here — and best-of-rep windows on
/// a shared host still jitter by a few percent.
const MONOTONE_TOLERANCE: f64 = 0.90;

fn source() -> XmlSource {
    XmlSource::new(d1(), department_of_size(DOC_SIZE)).expect("valid dept")
}

fn spawn_daemon(config: ServerConfig) -> ServerHandle {
    // the daemons serve a start-time snapshot, so the serving-side answer
    // memo applies (`mixctl serve-source --memo`); the client side
    // hash-conses reply parses unconditionally. Both tiers are warmed
    // before any timed window — X20 measures steady-state serving.
    Server::bind(
        "127.0.0.1:0",
        Arc::new(WrapperService::new(source()).with_answer_memo(64)),
        config,
    )
    .expect("bind")
    .spawn()
    .expect("spawn")
}

/// A mediator over `wrappers`, one q2-shaped view per source, plus the
/// query batch the throughput loop serves — the X16 workload.
fn build_mediator(wrappers: Vec<Arc<dyn Wrapper>>) -> (Mediator, Vec<Query>) {
    let mut m = Mediator::new();
    let mut views = Vec::new();
    for (i, w) in wrappers.into_iter().enumerate() {
        let site = format!("site{i}");
        m.add_source(&site, w);
        let mut view = q2();
        view.view_name = mix_relang::name(&format!("wj{i}"));
        m.register_view(&site, &view).expect("view registers");
        views.push(view.view_name);
    }
    let batch: Vec<Query> = (0..BATCH)
        .map(|i| {
            let view = views[i % views.len()];
            parse_query(&format!(
                "b{i} = SELECT X WHERE <{view}> X:<professor/> </{view}>"
            ))
            .expect("batch query parses")
        })
        .collect();
    (m, batch)
}

fn render(a: &Result<mix_mediator::Answer, mix_mediator::MediatorError>) -> String {
    match a {
        Ok(ans) => mix_xml::write_document(&ans.document, mix_xml::WriteConfig::default()),
        Err(e) => format!("error: {e}"),
    }
}

fn render_doc(doc: &mix_xml::Document) -> String {
    mix_xml::write_document(doc, mix_xml::WriteConfig::default())
}

struct ThroughputRow {
    threads: usize,
    best: Duration,
    qps: f64,
}

fn main() {
    // the in-process reference: same DTD, same deterministic documents,
    // no sockets — the equality oracle X16 used for the blocking path
    let locals: Vec<Arc<dyn Wrapper>> = (0..DAEMONS)
        .map(|_| Arc::new(source()) as Arc<dyn Wrapper>)
        .collect();
    let (local_m, local_batch) = build_mediator(locals);
    let reference: Vec<String> = local_m
        .answer_many_with_threads(&local_batch, 1)
        .iter()
        .map(render)
        .collect();

    println!("X20 event-driven wire tier: pipelined scaling, 64-client storm");

    // ---- phase 1: the X16 shape on the new stack --------------------
    let daemons: Vec<ServerHandle> = (0..DAEMONS)
        .map(|_| spawn_daemon(ServerConfig::default()))
        .collect();
    let remotes: Vec<Arc<dyn Wrapper>> = daemons
        .iter()
        .map(|d| {
            Arc::new(RemoteWrapper::connect(&d.addr().to_string()).expect("daemon reachable"))
                as Arc<dyn Wrapper>
        })
        .collect();
    let (m, batch) = build_mediator(remotes);

    // warm both memo tiers (and the connection pools) outside any timer
    let warm: Vec<String> = m
        .answer_many_with_threads(&batch, 1)
        .iter()
        .map(render)
        .collect();
    assert_eq!(reference, warm, "warm-up answers diverged");

    // reps are interleaved across thread counts (1,2,4,8, 1,2,4,8, …)
    // and each row keeps its best window: consecutive same-count reps
    // would alias any slow drift of the shared host onto the later,
    // higher-count rows and fake a decline
    let mut best = [Duration::MAX; THREADS.len()];
    for _ in 0..REPS {
        for (slot, &threads) in THREADS.iter().enumerate() {
            let t = Instant::now();
            let all: Vec<Vec<Vec<Result<mix_mediator::Answer, mix_mediator::MediatorError>>>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            let (m, batch) = (&m, &batch);
                            scope.spawn(move || {
                                (0..PASSES_TOTAL / threads)
                                    .map(|_| m.answer_many_with_threads(batch, 1))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("client thread panicked"))
                        .collect()
                });
            best[slot] = best[slot].min(t.elapsed());
            for answers in all.iter().flatten() {
                let rendered: Vec<String> = answers.iter().map(render).collect();
                assert_eq!(
                    reference, rendered,
                    "distributed answers diverged from the in-process run at {threads} threads"
                );
            }
        }
    }
    let rows: Vec<ThroughputRow> = THREADS
        .iter()
        .zip(best)
        .map(|(&threads, best)| ThroughputRow {
            threads,
            best,
            qps: (PASSES_TOTAL * BATCH) as f64 / best.as_secs_f64().max(1e-12),
        })
        .collect();
    let base_qps = rows[0].qps;
    for r in &rows {
        println!(
            "  {} client(s): {:?}  {:.1} q/s aggregate  ({:.2}x vs 1 client)",
            r.threads,
            r.best,
            r.qps,
            r.qps / base_qps
        );
    }
    let mut monotone = true;
    for pair in rows.windows(2) {
        if pair[1].qps < pair[0].qps * MONOTONE_TOLERANCE {
            monotone = false;
            println!(
                "  NOT monotone: {} -> {} threads fell {:.1} -> {:.1} q/s",
                pair[0].threads, pair[1].threads, pair[0].qps, pair[1].qps
            );
        }
    }
    assert!(
        monotone,
        "aggregate q/s must be monotone non-decreasing (within {MONOTONE_TOLERANCE} tolerance) \
         from 1 to 8 client threads"
    );
    println!("  monotone 1->8 threads, answers byte-identical to the in-process run");

    // ---- phase 2: the 64-client pipelined storm ---------------------
    let storm_daemon = spawn_daemon(ServerConfig {
        max_connections: STORM_CLIENTS + 8,
        io_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    });
    let storm_addr = storm_daemon.addr().to_string();
    let storm_query = q2();
    let storm_expected = render_doc(&source().answer(&storm_query).expect("reference answer"));
    let storm_batch: Vec<Query> = (0..STORM_REQS).map(|_| storm_query.clone()).collect();

    // connect up front so the measured window is serving, not dialing,
    // and warm every client's parse memo with one answer each
    let clients: Vec<RemoteWrapper> = (0..STORM_CLIENTS)
        .map(|_| {
            let config = ClientConfig {
                pool_size: 1,
                in_flight_per_conn: STORM_REQS.min(256),
                io_timeout: Duration::from_secs(10),
                ..ClientConfig::default()
            };
            let c =
                RemoteWrapper::connect_with(&storm_addr, config).expect("storm client connects");
            assert_eq!(
                render_doc(&c.answer(&storm_query).expect("warm-up answer")),
                storm_expected
            );
            c
        })
        .collect();

    // answers are collected inside the timed window, verified outside
    // it: the measurement is the serving rate, not the checker's speed
    let t = Instant::now();
    let outcomes: Vec<Vec<Result<mix_xml::Document, mix_mediator::SourceError>>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = clients
                .iter()
                .map(|client| {
                    let storm_batch = &storm_batch;
                    scope.spawn(move || client.answer_batch(storm_batch))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("storm client panicked"))
                .collect()
        });
    let storm_elapsed = t.elapsed();
    let wrong: usize = outcomes
        .iter()
        .flatten()
        .filter(|r| match r {
            Ok(doc) => render_doc(doc) != storm_expected,
            Err(_) => true,
        })
        .count();
    let storm_total = STORM_CLIENTS * STORM_REQS;
    let storm_qps = storm_total as f64 / storm_elapsed.as_secs_f64().max(1e-12);
    drop(clients);
    storm_daemon.shutdown();

    assert_eq!(wrong, 0, "every storm answer must be byte-correct");
    let storm_vs_base = storm_qps / base_qps;
    println!(
        "  storm: {} clients x {} pipelined reqs in {:?} = {:.1} q/s ({:.2}x the \
         X16-shape 1-thread rate)",
        STORM_CLIENTS, STORM_REQS, storm_elapsed, storm_qps, storm_vs_base
    );
    assert!(
        storm_vs_base >= 4.0,
        "the 64-client storm must serve at least 4x the X16-shape single-thread rate \
         (got {storm_vs_base:.2}x)"
    );

    // ---- phase 3: pipelined == blocking, byte for byte --------------
    let eq_daemon = spawn_daemon(ServerConfig::default());
    let eq_remote = RemoteWrapper::connect(&eq_daemon.addr().to_string()).expect("reachable");
    let eq_local = source();
    let eq_queries: Vec<Query> = (0..BATCH).map(|_| q2()).collect();
    let blocking: Vec<String> = eq_queries
        .iter()
        .map(|q| render_doc(&eq_remote.answer(q).expect("blocking answer")))
        .collect();
    let pipelined: Vec<String> = eq_remote
        .answer_batch(&eq_queries)
        .into_iter()
        .map(|r| render_doc(&r.expect("pipelined answer")))
        .collect();
    let in_process: Vec<String> = eq_queries
        .iter()
        .map(|q| render_doc(&eq_local.answer(q).expect("local answer")))
        .collect();
    assert_eq!(
        blocking, pipelined,
        "pipelined batch answers must match the blocking path byte for byte"
    );
    assert_eq!(
        pipelined, in_process,
        "wire answers must match the in-process wrapper byte for byte"
    );
    eq_daemon.shutdown();
    println!("  pipelined batch == blocking path == in-process, byte-identical");

    let throughput_json = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"threads\": {}, \"elapsed_ms\": {:.3}, \"qps\": {:.1}, \
                 \"speedup_vs_1\": {:.2} }}",
                r.threads,
                r.best.as_secs_f64() * 1e3,
                r.qps,
                r.qps / base_qps
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"experiment\": \"X20\",\n  \
         \"generated_by\": \"cargo bench -p mix-bench --bench net_pipeline\",\n  \
         \"transport\": \"mix-net loopback TCP, frame version {}, reactor server, \
         multiplexed client\",\n  \
         \"daemons\": {DAEMONS},\n  \"batch\": {BATCH},\n  \
         \"answers_match_in_process\": true,\n  \
         \"throughput\": [\n{}\n  ],\n  \
         \"monotone_1_to_8\": {},\n  \
         \"storm\": {{ \"clients\": {}, \"requests_per_client\": {}, \
         \"elapsed_ms\": {:.3}, \"qps\": {:.1}, \"vs_x16_shape_1_thread\": {:.2}, \
         \"wrong_answers\": {} }},\n  \
         \"pipelined_equals_blocking\": true\n}}",
        mix_net::FRAME_VERSION,
        throughput_json,
        monotone,
        STORM_CLIENTS,
        STORM_REQS,
        storm_elapsed.as_secs_f64() * 1e3,
        storm_qps,
        storm_vs_base,
        wrong,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR7.json");
    std::fs::write(out, json + "\n").expect("write BENCH_PR7.json");
    println!("wrote {out}");

    for d in daemons {
        d.shutdown();
    }
}
