//! The readiness-driven event loop behind [`crate::server::Server`].
//!
//! One reactor thread owns the listener, every connection's nonblocking
//! socket, and a pair of ring buffers per connection; a small worker pool
//! answers queries. The division of labor:
//!
//! - **Reactor**: accepts, reads bytes into per-connection in-rings,
//!   parses complete frames, answers the cheap control frames (`Hello`,
//!   `ExportDtd`, `Stats`) inline, admission-gates `Query` frames, and
//!   flushes out-rings as sockets become writable. Never blocks on a
//!   socket and never runs service code that could be slow.
//! - **Workers**: run [`crate::server::WireService::answer`] for admitted
//!   queries and push completions back; the self-pipe waker pulls the
//!   reactor out of `poll` to encode and flush the replies.
//!
//! Because every frame carries its own id, many queries can be in flight
//! per connection: workers finish in any order and each `Answer` finds
//! its way home by id. Backpressure, fairness, and failure isolation all
//! live here:
//!
//! - a connection that dribbles bytes (slow loris) parks cheaply in the
//!   poller — it holds no thread — and cannot stall other connections;
//! - a connection with *no* byte progress for `io_timeout` and nothing in
//!   flight is evicted (`net_deadline_expiries_total`);
//! - a peer speaking a foreign frame version gets a clean `incompatible`
//!   fault in its *own* framing (v1) and a drained close, never garbage;
//! - shutdown stops accepting and reading immediately, but flushes the
//!   answers of already-admitted queries before closing (bounded by
//!   `drain_timeout`) — an admitted query is a promise.

use crate::admission::TokenBucket;
use crate::frame::{
    decode_header, encode_header, MsgType, CONNECTION_FRAME_ID, FRAME_VERSION, HEADER_LEN,
    LEGACY_FRAME_VERSION, LEGACY_HEADER_LEN,
};
use crate::msg::Msg;
use crate::ring::RingBuf;
use crate::server::{NetInstruments, ServerConfig, WireService};
use crate::sys::{Event, Poller, Waker};
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

const LISTENER: usize = 0;
const WAKER: usize = 1;
const CONN_BASE: usize = 2;

/// Per-tick cap on `read` calls per connection — keeps one firehose
/// connection from starving the rest; the level-triggered poller re-arms
/// whatever is left.
const READS_PER_TICK: usize = 8;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// An admitted query on its way to a worker.
struct Job {
    token: usize,
    gen: u64,
    frame_id: u32,
    query: Option<String>,
    started_ns: u64,
}

/// A worker's finished answer on its way back to the reactor.
struct Completion {
    token: usize,
    gen: u64,
    frame_id: u32,
    reply: Msg,
    started_ns: u64,
}

struct WorkQueue {
    jobs: Mutex<VecDeque<Job>>,
    cv: Condvar,
    stop: AtomicBool,
}

struct DoneQueue {
    list: Mutex<Vec<Completion>>,
    waker: Arc<Waker>,
}

fn worker_loop<S: WireService>(service: Arc<S>, queue: Arc<WorkQueue>, done: Arc<DoneQueue>) {
    loop {
        let job = {
            let mut jobs = lock(&queue.jobs);
            loop {
                if let Some(j) = jobs.pop_front() {
                    break j;
                }
                // drain-then-exit: jobs enqueued before the stop flag are
                // still answered, which is what lets shutdown flush them
                if queue.stop.load(Ordering::SeqCst) {
                    return;
                }
                jobs = queue.cv.wait(jobs).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let reply = answer_job(service.as_ref(), job.query.as_deref());
        lock(&done.list).push(Completion {
            token: job.token,
            gen: job.gen,
            frame_id: job.frame_id,
            reply,
            started_ns: job.started_ns,
        });
        done.waker.wake();
    }
}

fn answer_job(service: &dyn WireService, query: Option<&str>) -> Msg {
    match std::panic::catch_unwind(AssertUnwindSafe(|| service.answer(query))) {
        Ok(Ok(xml)) => Msg::Answer(xml),
        Ok(Err(fault)) => Msg::Err {
            kind: fault.kind,
            msg: fault.msg,
        },
        Err(_) => Msg::Err {
            kind: "internal".into(),
            msg: "service panicked answering the query".into(),
        },
    }
}

enum ConnState {
    /// Nothing decoded yet: the first byte picks the version path and the
    /// first frame must be `Hello`.
    Handshake,
    /// Handshake done; regular traffic.
    Ready,
}

struct Conn {
    stream: TcpStream,
    inbuf: RingBuf,
    outbuf: RingBuf,
    state: ConnState,
    bucket: Option<TokenBucket>,
    /// Distinguishes this occupancy of the slot from earlier ones, so a
    /// worker completion for a closed connection is dropped, not
    /// delivered to whoever reused the slot.
    gen: u64,
    in_flight: usize,
    /// Still consuming input (false once EOF or a fatal fault was seen).
    reading: bool,
    /// Input is drained and discarded without parsing (refused or
    /// foreign-version connections): keeps the receive queue empty so the
    /// eventual close is a clean FIN and the peer can read our reply.
    discard_input: bool,
    /// Close as soon as the out-ring is flushed and nothing is in flight.
    close_after_flush: bool,
    /// Counted in `net_connections_opened/closed_total` and against
    /// `max_connections`; refusals are not.
    admitted: bool,
    last_progress: Instant,
    // interest currently registered with the poller
    want_read: bool,
    want_write: bool,
}

enum Phase {
    Running,
    Draining { deadline: Instant },
}

pub(crate) struct Reactor<S: WireService> {
    listener: Option<TcpListener>,
    service: Arc<S>,
    config: ServerConfig,
    obs: NetInstruments,
    poller: Poller,
    waker: Arc<Waker>,
    stop: Arc<AtomicBool>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    admitted_count: usize,
    next_gen: u64,
    total_in_flight: i64,
    queue: Arc<WorkQueue>,
    done: Arc<DoneQueue>,
    phase: Phase,
}

impl<S: WireService> Reactor<S> {
    pub(crate) fn new(
        listener: TcpListener,
        service: Arc<S>,
        config: ServerConfig,
        obs: NetInstruments,
        stop: Arc<AtomicBool>,
        waker: Arc<Waker>,
    ) -> std::io::Result<Reactor<S>> {
        listener.set_nonblocking(true)?;
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTENER, true, false)?;
        poller.register(waker.read_fd(), WAKER, true, false)?;
        let queue = Arc::new(WorkQueue {
            jobs: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let done = Arc::new(DoneQueue {
            list: Mutex::new(Vec::new()),
            waker: Arc::clone(&waker),
        });
        let workers = effective_workers(config.workers);
        for _ in 0..workers {
            let service = Arc::clone(&service);
            let queue = Arc::clone(&queue);
            let done = Arc::clone(&done);
            // detached on purpose: a worker stuck inside a slow
            // `service.answer` must not be able to wedge shutdown
            std::thread::spawn(move || worker_loop(service, queue, done));
        }
        Ok(Reactor {
            listener: Some(listener),
            service,
            config,
            obs,
            poller,
            waker,
            stop,
            conns: Vec::new(),
            free: Vec::new(),
            admitted_count: 0,
            next_gen: 1,
            total_in_flight: 0,
            queue,
            done,
            phase: Phase::Running,
        })
    }

    /// The event loop. Returns when shutdown has drained (or force-closed
    /// at the drain deadline) every connection.
    pub(crate) fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.stop.load(Ordering::SeqCst) && matches!(self.phase, Phase::Running) {
                self.begin_drain();
            }
            if let Phase::Draining { deadline } = self.phase {
                if self.live_conns() == 0 {
                    break;
                }
                if Instant::now() >= deadline {
                    self.force_close_all();
                    break;
                }
            }
            events.clear();
            if self.poller.wait(&mut events, self.next_timeout()).is_err() {
                break;
            }
            self.obs.reactor_polls.inc();
            for ev in &events {
                match ev.token {
                    LISTENER => self.accept_ready(),
                    WAKER => {
                        self.waker.drain();
                        self.obs.reactor_wakeups.inc();
                    }
                    t => {
                        let idx = t - CONN_BASE;
                        if ev.writable {
                            self.flush_conn(idx);
                        }
                        if ev.readable {
                            self.read_conn(idx);
                        }
                        self.settle(idx);
                    }
                }
            }
            self.apply_completions();
            self.evict_stalled();
        }
        // drain-then-exit for workers: anything still queued is answered,
        // then the (detached) threads leave
        self.queue.stop.store(true, Ordering::SeqCst);
        self.queue.cv.notify_all();
    }

    fn live_conns(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// How long `poll` may sleep: until the nearest eviction or drain
    /// deadline, or forever when neither applies.
    fn next_timeout(&self) -> Option<Duration> {
        let now = Instant::now();
        let mut next: Option<Instant> = None;
        let mut consider = |t: Instant| {
            next = Some(match next {
                Some(n) if n <= t => n,
                _ => t,
            });
        };
        for conn in self.conns.iter().flatten() {
            if conn.in_flight == 0 {
                consider(conn.last_progress + self.config.io_timeout);
            }
        }
        if let Phase::Draining { deadline } = self.phase {
            consider(deadline);
        }
        next.map(|t| t.saturating_duration_since(now))
    }

    fn begin_drain(&mut self) {
        // stop accepting: drop the listener so the port refuses outright
        if let Some(l) = self.listener.take() {
            let _ = self.poller.deregister(l.as_raw_fd());
        }
        self.phase = Phase::Draining {
            deadline: Instant::now() + self.config.drain_timeout,
        };
        // stop reading everywhere; idle connections close immediately —
        // that is the "daemon killed" signal pooled clients observe —
        // while connections with admitted queries in flight (or replies
        // still buffered) stay to be flushed
        for idx in 0..self.conns.len() {
            if let Some(conn) = &mut self.conns[idx] {
                conn.reading = false;
                conn.discard_input = false;
                conn.close_after_flush = true;
                if conn.in_flight == 0 && conn.outbuf.is_empty() {
                    self.close(idx);
                } else {
                    self.update_interest(idx);
                }
            }
        }
    }

    fn force_close_all(&mut self) {
        for idx in 0..self.conns.len() {
            if self.conns[idx].is_some() {
                self.close(idx);
            }
        }
    }

    fn evict_stalled(&mut self) {
        let now = Instant::now();
        for idx in 0..self.conns.len() {
            let Some(conn) = &self.conns[idx] else {
                continue;
            };
            // progress on either direction resets the clock; a query
            // being answered is progress we owe, not theirs to make
            if conn.in_flight == 0
                && now.saturating_duration_since(conn.last_progress) >= self.config.io_timeout
            {
                self.obs.deadline_expiries.inc();
                self.close(idx);
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            let stream = match listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let over_cap = self.admitted_count >= self.config.max_connections;
            let gen = self.next_gen;
            self.next_gen += 1;
            let mut conn = Conn {
                stream,
                inbuf: RingBuf::with_capacity(4 * 1024),
                outbuf: RingBuf::with_capacity(4 * 1024),
                state: ConnState::Handshake,
                bucket: self.config.admission.map(TokenBucket::new),
                gen,
                in_flight: 0,
                reading: true,
                discard_input: false,
                close_after_flush: false,
                admitted: !over_cap,
                last_progress: Instant::now(),
                want_read: false,
                want_write: false,
            };
            if over_cap {
                // turn it away politely, in v2 framing at connection
                // scope; keep draining its bytes so the close is clean
                self.obs.conns_refused.inc();
                conn.discard_input = true;
                conn.close_after_flush = true;
                let refusal = Msg::Err {
                    kind: "unavailable".into(),
                    msg: "connection limit reached".into(),
                };
                push_msg(&mut conn.outbuf, CONNECTION_FRAME_ID, &refusal);
                self.obs.wrote(&refusal);
            } else {
                self.obs.conns_opened.inc();
                self.admitted_count += 1;
            }
            let idx = match self.free.pop() {
                Some(i) => {
                    self.conns[i] = Some(conn);
                    i
                }
                None => {
                    self.conns.push(Some(conn));
                    self.conns.len() - 1
                }
            };
            let fd = self.conns[idx]
                .as_ref()
                .expect("just inserted")
                .stream
                .as_raw_fd();
            if self
                .poller
                .register(fd, CONN_BASE + idx, false, false)
                .is_err()
            {
                self.close(idx);
                continue;
            }
            self.flush_conn(idx);
            self.settle(idx);
        }
    }

    fn read_conn(&mut self, idx: usize) {
        let mut eof = false;
        let mut failed = false;
        {
            let Some(conn) = &mut self.conns[idx] else {
                return;
            };
            if !conn.reading {
                // still drain the socket if we are in discard mode
                if !conn.discard_input {
                    return;
                }
            }
            for _ in 0..READS_PER_TICK {
                match conn.inbuf.fill_from(&mut conn.stream) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(_) => {
                        conn.last_progress = Instant::now();
                        if conn.discard_input {
                            let n = conn.inbuf.len();
                            conn.inbuf.consume(n);
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
        }
        if failed {
            self.close(idx);
            return;
        }
        self.parse_frames(idx);
        if eof {
            if let Some(conn) = &mut self.conns[idx] {
                conn.reading = false;
                conn.discard_input = false;
                if conn.in_flight == 0 && conn.outbuf.is_empty() {
                    self.close(idx);
                } else {
                    // half-close: finish answering what was admitted
                    conn.close_after_flush = true;
                }
            }
        }
    }

    fn parse_frames(&mut self, idx: usize) {
        loop {
            let Some(conn) = &mut self.conns[idx] else {
                return;
            };
            if conn.discard_input || conn.close_after_flush {
                return;
            }
            if conn.inbuf.is_empty() {
                return;
            }
            if matches!(conn.state, ConnState::Handshake) {
                let mut first = [0u8; 1];
                conn.inbuf.peek_into(&mut first);
                if first[0] != FRAME_VERSION {
                    self.reject_foreign_version(idx, first[0]);
                    return;
                }
            }
            if conn.inbuf.len() < HEADER_LEN {
                return;
            }
            let mut raw = [0u8; HEADER_LEN];
            conn.inbuf.peek_into(&mut raw);
            let header = match decode_header(&raw) {
                Ok(h) => h,
                Err(e) => {
                    // mid-stream desync (wrong version byte can only
                    // happen here after a corrupted length): fatal
                    self.protocol_fault(idx, CONNECTION_FRAME_ID, e.to_string());
                    return;
                }
            };
            if conn.inbuf.len() < HEADER_LEN + header.len as usize {
                return; // partial frame: wait for more bytes
            }
            conn.inbuf.consume(HEADER_LEN);
            let payload = conn.inbuf.take_vec(header.len as usize);
            match Msg::decode(header.ty, payload) {
                Ok(msg) => self.dispatch(idx, header.frame_id, msg),
                Err(e) => {
                    self.protocol_fault(idx, header.frame_id, e.to_string());
                    return;
                }
            }
        }
    }

    fn dispatch(&mut self, idx: usize, frame_id: u32, msg: Msg) {
        self.obs.read(&msg);
        let started = self.obs.registry.now_ns();
        let (handshaking, gen) = {
            let Some(conn) = &self.conns[idx] else { return };
            (matches!(conn.state, ConnState::Handshake), conn.gen)
        };
        if handshaking && !matches!(msg, Msg::Hello) {
            self.protocol_fault(
                idx,
                frame_id,
                format!("expected Hello, got {:?}", msg.msg_type()),
            );
            return;
        }
        match msg {
            Msg::Hello => {
                if let Some(conn) = &mut self.conns[idx] {
                    conn.state = ConnState::Ready;
                }
                // the handshake Hello is connection setup, not an RPC;
                // only a *re*-handshake lands a latency sample
                self.reply(idx, frame_id, Msg::Hello, (!handshaking).then_some(started));
            }
            Msg::ExportDtd(_) => {
                let dtd = self.service.export_dtd();
                self.reply(idx, frame_id, Msg::ExportDtd(dtd), Some(started));
            }
            Msg::Stats(_) => {
                let reply = match self.service.stats() {
                    Some(json) => Msg::Stats(json),
                    None => Msg::Err {
                        kind: "unsupported".into(),
                        msg: "this service exports no statistics".into(),
                    },
                };
                self.reply(idx, frame_id, reply, Some(started));
            }
            Msg::Query(q) => {
                // only the data plane is admission-gated; handshakes, DTD
                // exports, and stats probes always go through
                let shed = {
                    let Some(conn) = &mut self.conns[idx] else {
                        return;
                    };
                    match conn.bucket.as_ref().map(TokenBucket::try_acquire) {
                        Some(Err(retry_after_ms)) => Some(retry_after_ms),
                        _ => {
                            conn.in_flight += 1;
                            None
                        }
                    }
                };
                match shed {
                    Some(retry_after_ms) => {
                        self.obs.requests_shed.inc();
                        self.reply(
                            idx,
                            frame_id,
                            Msg::Throttled { retry_after_ms },
                            Some(started),
                        );
                    }
                    None => {
                        self.total_in_flight += 1;
                        self.obs.inflight_depth.set(self.total_in_flight);
                        lock(&self.queue.jobs).push_back(Job {
                            token: idx,
                            gen,
                            frame_id,
                            query: (!q.is_empty()).then_some(q),
                            started_ns: started,
                        });
                        self.queue.cv.notify_one();
                    }
                }
            }
            Msg::Answer(_) | Msg::Err { .. } | Msg::Throttled { .. } => {
                self.protocol_fault(
                    idx,
                    frame_id,
                    "clients send ExportDtd/Query, not Answer/Err/Throttled".into(),
                );
            }
        }
    }

    /// Encodes `reply` into the connection's out-ring, records traffic
    /// (and latency when `started` is a dispatch timestamp), and tries an
    /// opportunistic flush.
    fn reply(&mut self, idx: usize, frame_id: u32, reply: Msg, started: Option<u64>) {
        let Some(conn) = &mut self.conns[idx] else {
            return;
        };
        push_msg(&mut conn.outbuf, frame_id, &reply);
        self.obs.wrote(&reply);
        if let Some(t0) = started {
            self.obs
                .rpc_latency
                .observe(self.obs.registry.now_ns().saturating_sub(t0));
        }
        self.flush_conn(idx);
    }

    /// A fatal protocol violation: tell the peer, flush, close.
    fn protocol_fault(&mut self, idx: usize, frame_id: u32, detail: String) {
        let Some(conn) = &mut self.conns[idx] else {
            return;
        };
        let fault = Msg::Err {
            kind: "protocol".into(),
            msg: detail,
        };
        push_msg(&mut conn.outbuf, frame_id, &fault);
        self.obs.wrote(&fault);
        conn.reading = false;
        conn.discard_input = true; // drain so the close is a clean FIN
        conn.close_after_flush = true;
        self.flush_conn(idx);
    }

    /// A peer whose very first byte is a foreign frame version: reply in
    /// *its* framing (v1 — all older builds) so it reads a clean
    /// `incompatible` fault instead of garbage, then drain and close.
    fn reject_foreign_version(&mut self, idx: usize, theirs: u8) {
        self.obs.version_mismatches.inc();
        let Some(conn) = &mut self.conns[idx] else {
            return;
        };
        let payload = format!(
            "incompatible\npeer speaks frame version {theirs}; this build speaks {FRAME_VERSION}"
        );
        let mut legacy = Vec::with_capacity(LEGACY_HEADER_LEN + payload.len());
        legacy.push(LEGACY_FRAME_VERSION);
        legacy.push(MsgType::Err as u8);
        legacy.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        legacy.extend_from_slice(payload.as_bytes());
        self.obs.frames_out.inc();
        self.obs.bytes_out.add(legacy.len() as u64);
        conn.outbuf.push_slice(&legacy);
        let n = conn.inbuf.len();
        conn.inbuf.consume(n);
        conn.reading = false;
        conn.discard_input = true;
        conn.close_after_flush = true;
        self.flush_conn(idx);
    }

    fn flush_conn(&mut self, idx: usize) {
        let mut failed = false;
        {
            let Some(conn) = &mut self.conns[idx] else {
                return;
            };
            while !conn.outbuf.is_empty() {
                match conn.outbuf.drain_to(&mut conn.stream) {
                    Ok(0) => break,
                    Ok(_) => conn.last_progress = Instant::now(),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
        }
        if failed {
            self.close(idx);
        }
    }

    /// Re-registers poller interest to match the connection's state and
    /// closes it if it is fully done.
    fn settle(&mut self, idx: usize) {
        let done = {
            let Some(conn) = &self.conns[idx] else { return };
            conn.close_after_flush && conn.outbuf.is_empty() && conn.in_flight == 0
        };
        if done {
            self.close(idx);
            return;
        }
        self.update_interest(idx);
    }

    fn update_interest(&mut self, idx: usize) {
        let Some(conn) = &mut self.conns[idx] else {
            return;
        };
        let want_read = conn.reading || conn.discard_input;
        let want_write = !conn.outbuf.is_empty();
        if want_read == conn.want_read && want_write == conn.want_write {
            return;
        }
        conn.want_read = want_read;
        conn.want_write = want_write;
        let fd = conn.stream.as_raw_fd();
        let _ = self
            .poller
            .modify(fd, CONN_BASE + idx, want_read, want_write);
    }

    fn close(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].take() else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        if conn.admitted {
            self.obs.conns_closed.inc();
            self.admitted_count -= 1;
        }
        self.total_in_flight -= conn.in_flight as i64;
        self.obs.inflight_depth.set(self.total_in_flight);
        self.free.push(idx);
        // the TcpStream drops (closes) here
    }

    fn apply_completions(&mut self) {
        let completions = std::mem::take(&mut *lock(&self.done.list));
        for c in completions {
            let delivered = {
                match self.conns.get_mut(c.token).and_then(Option::as_mut) {
                    // gen mismatch: the slot was reused; the requester is
                    // long gone and the answer has no home
                    Some(conn) if conn.gen == c.gen => {
                        conn.in_flight -= 1;
                        true
                    }
                    _ => false,
                }
            };
            if delivered {
                self.total_in_flight -= 1;
                self.obs.inflight_depth.set(self.total_in_flight);
                self.reply(c.token, c.frame_id, c.reply, Some(c.started_ns));
                self.settle(c.token);
            }
        }
    }
}

/// Encodes one v2 frame for `msg` into `out`.
fn push_msg(out: &mut RingBuf, frame_id: u32, msg: &Msg) {
    let payload = msg.payload();
    out.push_slice(&encode_header(
        msg.msg_type(),
        frame_id,
        payload.len() as u32,
    ));
    out.push_slice(&payload);
}

/// Resolves the worker-pool size: explicit, or one per available core
/// (clamped to [2, 16]) for `0`.
pub(crate) fn effective_workers(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 16)
}
