//! Robustness properties: no parser in the workspace may panic on
//! arbitrary input, the exact counters must agree with brute force
//! (enumerate + accept) on random s-DTDs, and the fault-tolerant source
//! layer must be deterministic, panic-free, and lossless for surviving
//! union members.

use mix::dtd::enumerate::enumerate_documents;
use mix::dtd::generate::{seeded_dtd, DtdGenConfig};
use mix::dtd::sdtd::SAcceptor;
use mix::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The regex parser returns Ok or Err — never panics, and successful
    /// parses display+reparse to the same AST.
    #[test]
    fn regex_parser_total(input in "\\PC{0,60}") {
        if let Ok(r) = parse_regex(&input) {
            let shown = r.to_string();
            let again = parse_regex(&shown)
                .unwrap_or_else(|e| panic!("display of {input:?} unparseable: {e}"));
            prop_assert_eq!(r, again);
        }
    }

    /// Same for the XML parser.
    #[test]
    fn xml_parser_total(input in "\\PC{0,120}") {
        let _ = parse_document(&input);
    }

    /// And for structured-ish XML-like inputs built from tag fragments.
    #[test]
    fn xml_parser_total_on_taglike(parts in prop::collection::vec(
        prop::sample::select(vec![
            "<a>", "</a>", "<b/>", "<a id=\"x\">", "text", "&amp;", "<", ">", "</",
            "<!--", "-->", "<?xml?>", "\"", "id=", " ",
        ]),
        0..24,
    )) {
        let input: String = parts.concat();
        if let Ok(doc) = parse_document(&input) {
            // anything accepted must re-serialize and re-parse
            let text = write_document(&doc, WriteConfig::default());
            prop_assert!(parse_document(&text).is_ok(), "reserialization broke: {text}");
        }
    }

    /// The query parser is total too.
    #[test]
    fn query_parser_total(input in "\\PC{0,120}") {
        if let Ok(q) = parse_query(&input) {
            let shown = q.to_string();
            prop_assert!(parse_query(&shown).is_ok(), "display unparseable:\n{shown}");
        }
    }

    /// DTD parsers (both syntaxes) are total.
    #[test]
    fn dtd_parsers_total(input in "\\PC{0,120}") {
        let _ = parse_compact(&input);
        let _ = parse_compact_sdtd(&input);
        let _ = parse_xml_dtd(&input);
    }

    /// A seeded fault schedule replays identically: two injectors built
    /// from the same (seed, rate) over the same source produce the same
    /// outcome sequence, call for call.
    #[test]
    fn fault_schedule_replays_identically(seed in 0u64..100_000, pct in 0u64..=100) {
        let rate = pct as f64 / 100.0;
        let make = || {
            let dtd = parse_compact("{<r : a*> <a : PCDATA>}").unwrap();
            let doc = parse_document("<r><a>1</a></r>").unwrap();
            FaultInjector::seeded(
                Arc::new(XmlSource::new(dtd, doc).unwrap()),
                seed,
                rate,
            )
        };
        let (a, b) = (make(), make());
        for call in 0..64u64 {
            let (ra, rb) = (a.fetch(), b.fetch());
            let sig = |r: &Result<Document, SourceError>| match r {
                Ok(d) => format!("ok:{}", d.root.children().len()),
                Err(e) => format!("err:{}", e.kind()),
            };
            prop_assert_eq!(sig(&ra), sig(&rb), "diverged at call {}", call);
        }
    }

    /// The mediator never panics while materializing a union view over
    /// generated DTD/document pairs under an arbitrary seeded fault
    /// schedule — every outcome is an `Ok` partial answer or a clean
    /// error.
    #[test]
    fn mediator_never_panics_under_faults(
        dtd_seed in 0u64..500,
        fault_seed in 0u64..100_000,
        pct in 0u64..=100,
    ) {
        use mix::xmas::gen::{random_query, QueryGenConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let dtd = seeded_dtd(
            dtd_seed,
            &DtdGenConfig { names: 5, regex_depth: 2, ..DtdGenConfig::default() },
        );
        let docs = mix::dtd::sample::sample_documents(&dtd, 3, dtd_seed, Default::default());
        let mut rng = StdRng::seed_from_u64(dtd_seed);
        let q = random_query(&dtd, &mut rng, &QueryGenConfig::default());
        let mut m = Mediator::new();
        let names = ["s0", "s1", "s2"];
        for (i, doc) in docs.into_iter().enumerate() {
            let src = Arc::new(XmlSource::new(dtd.clone(), doc).unwrap());
            let inj = FaultInjector::seeded(
                src,
                fault_seed.wrapping_add(i as u64),
                pct as f64 / 100.0,
            );
            m.add_source(names[i], Arc::new(inj));
        }
        let parts: Vec<(&str, Query)> =
            names.iter().map(|s| (*s, q.clone())).collect();
        if m.register_union_view("u", &parts).is_ok() {
            // two rounds: the second exercises breakers tripped and
            // snapshots captured by the first
            for _ in 0..2 {
                match m.materialize_with_report(name("u")) {
                    Ok((_, report)) => prop_assert_eq!(report.outcomes.len(), 3),
                    Err(MediatorError::AllSourcesFailed(_)) => {}
                    Err(e) => prop_assert!(false, "unexpected error class: {}", e),
                }
            }
        }
    }

    /// With k < N sources hard-down, the union answer still contains
    /// *every* member the surviving sources contribute, in registration
    /// order — degradation loses exactly the failed members, nothing
    /// else.
    #[test]
    fn union_survivors_are_lossless(mask in 0u32..32) {
        const N: usize = 5;
        let dtd = parse_compact("{<r : a*> <a : PCDATA>}").unwrap();
        let q = parse_query("u = SELECT X WHERE <r> X:<a/> </r>").unwrap();
        let mut m = Mediator::new();
        let names: Vec<String> = (0..N).map(|i| format!("site{i}")).collect();
        for (i, n) in names.iter().enumerate() {
            let doc = parse_document(&format!(
                "<r><a>m{i}.0</a><a>m{i}.1</a></r>"
            ))
            .unwrap();
            let src: Arc<dyn Wrapper> =
                Arc::new(XmlSource::new(dtd.clone(), doc).unwrap());
            // masked sites are hard-down: every call is an outage
            let plan = if mask & (1 << i) != 0 {
                FaultPlan::Script(vec![Some(Fault::Unavailable); 64])
            } else {
                FaultPlan::None
            };
            m.add_source(n, Arc::new(FaultInjector::new(src, plan)));
        }
        let parts: Vec<(&str, Query)> =
            names.iter().map(|n| (n.as_str(), q.clone())).collect();
        m.register_union_view("u", &parts).unwrap();
        let expected: Vec<String> = (0..N)
            .filter(|i| mask & (1 << i) == 0)
            .flat_map(|i| vec![format!("m{i}.0"), format!("m{i}.1")])
            .collect();
        match m.materialize_with_report(name("u")) {
            Ok((doc, report)) => {
                let got: Vec<String> = doc
                    .root
                    .children()
                    .iter()
                    .map(|c| c.pcdata().unwrap_or("").to_owned())
                    .collect();
                prop_assert_eq!(got, expected);
                let failed: Vec<String> = (0..N)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| format!("site{i}"))
                    .collect();
                let reported: Vec<String> = report
                    .failed_sources()
                    .iter()
                    .map(|s| (*s).to_owned())
                    .collect();
                prop_assert_eq!(reported, failed);
            }
            Err(MediatorError::AllSourcesFailed(_)) => {
                prop_assert_eq!(mask, 31, "only the all-down mask may hard-fail");
            }
            Err(e) => prop_assert!(false, "unexpected error: {}", e),
        }
    }
}

/// The subset-construction s-DTD counter agrees with brute force:
/// enumerate every document of the *merged* DTD and count how many the
/// s-DTD accepts.
#[test]
fn sdtd_counting_agrees_with_enumeration() {
    use mix::xmas::gen::{random_query, QueryGenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut checked = 0;
    for seed in 0..40u64 {
        let source = seeded_dtd(
            seed,
            &DtdGenConfig {
                names: 6,
                regex_depth: 2,
                ..DtdGenConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(&source, &mut rng, &QueryGenConfig::default());
        let iv = infer_view_dtd(&q, &source).expect("normalizes");
        let max = 7;
        // brute force: all merged-DTD documents, filtered by s-DTD acceptance
        let docs = enumerate_documents(&iv.dtd, max, 400_000);
        if docs.len() >= 400_000 {
            continue; // enumeration capped: comparison not exact
        }
        let acceptor = SAcceptor::new(&iv.sdtd);
        let brute = docs
            .iter()
            .filter(|d| acceptor.document_satisfies(d))
            .count() as u128;
        let counted: u128 = count_sdocuments_by_size(&iv.sdtd, max).iter().sum();
        assert_eq!(
            counted, brute,
            "s-DTD counting mismatch (seed {seed})\nquery:\n{q}\ns-DTD:\n{}",
            iv.sdtd
        );
        checked += 1;
    }
    assert!(checked >= 30, "too few exact comparisons ran: {checked}");
}

/// The dataguide counter agrees with brute force on guide-conforming
/// documents drawn from a DTD enumeration.
#[test]
fn dataguide_counting_agrees_with_enumeration() {
    use mix::dataguide::DataGuide;
    for seed in 0..20u64 {
        let dtd = seeded_dtd(
            seed,
            &DtdGenConfig {
                names: 5,
                regex_depth: 2,
                ..DtdGenConfig::default()
            },
        );
        let docs = mix::dtd::sample::sample_documents(&dtd, 5, seed, Default::default());
        let Some(guide) = DataGuide::of_documents(&docs) else {
            continue;
        };
        // truly independent brute force: enumerate *all* element trees of
        // size ≤ max over the guide's label alphabet (with and without
        // text leaves) and count those `describes` accepts
        let max = 4;
        let counted: u128 = guide.count_conforming_by_size(max).iter().sum();
        let alphabet: Vec<mix::relang::Name> = {
            let mut v: Vec<_> = guide.paths().into_iter().flatten().collect();
            v.sort();
            v.dedup();
            v
        };
        if alphabet.len() > 6 {
            continue; // keep the exponential brute force tiny
        }
        let mut brute = 0u128;
        for s in 1..=max {
            for t in all_trees(guide.root_name, &alphabet, s) {
                if guide.describes(&mix::xml::Document::new(t)) {
                    brute += 1;
                }
            }
        }
        assert_eq!(counted, brute, "seed {seed}\nguide:\n{guide}");
    }
}

/// All element trees with the given root name and exactly `size` nodes,
/// with inner labels drawn from `alphabet`. Leaves come in two shapes:
/// empty-element and text.
fn all_trees(
    root: mix::relang::Name,
    alphabet: &[mix::relang::Name],
    size: usize,
) -> Vec<mix::xml::Element> {
    use mix::xml::{Content, ElemId, Element};
    if size == 0 {
        return vec![];
    }
    if size == 1 {
        return vec![
            Element {
                name: root,
                id: ElemId::fresh(),
                content: Content::Elements(vec![]),
            },
            Element {
                name: root,
                id: ElemId::fresh(),
                content: Content::Text("s".to_owned()),
            },
        ];
    }
    // sequences of subtrees totalling size-1 nodes
    fn seqs(alphabet: &[mix::relang::Name], budget: usize) -> Vec<Vec<mix::xml::Element>> {
        if budget == 0 {
            return vec![vec![]];
        }
        let mut out = Vec::new();
        for &first_name in alphabet {
            for k in 1..=budget {
                for first in all_trees(first_name, alphabet, k) {
                    for rest in seqs(alphabet, budget - k) {
                        let mut v = vec![first.deep_clone_fresh()];
                        v.extend(rest);
                        out.push(v);
                    }
                }
            }
        }
        out
    }
    seqs(alphabet, size - 1)
        .into_iter()
        .map(|children| mix::xml::Element {
            name: root,
            id: mix::xml::ElemId::fresh(),
            content: mix::xml::Content::Elements(children),
        })
        .collect()
}
