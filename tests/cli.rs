//! End-to-end tests of the `mixctl` binary (deliverable b's tool face).

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mixctl-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write fixture");
    path
}

fn mixctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mixctl"))
        .args(args)
        .output()
        .expect("binary runs")
}

const D1: &str = "{<department : name, professor+, gradStudent+, course*>\
  <professor : firstName, lastName, publication+, teaches>\
  <gradStudent : firstName, lastName, publication+>\
  <publication : title, author+, (journal | conference)>\
  <teaches : EMPTY> <journal : EMPTY> <conference : EMPTY> <course : EMPTY>}";

const Q2: &str = "withJournals = SELECT P WHERE <department> <name>CS</name> \
  P:<professor | gradStudent> \
    <publication id=Pub1><journal/></publication> \
    <publication id=Pub2><journal/></publication> \
  </> </> AND Pub1 != Pub2";

const DOC: &str = "<department><name>CS</name>\
  <professor><firstName>Y</firstName><lastName>P</lastName>\
    <publication><title>a</title><author>x</author><journal/></publication>\
    <publication><title>b</title><author>x</author><journal/></publication>\
    <teaches/></professor>\
  <gradStudent><firstName>G</firstName><lastName>S</lastName>\
    <publication><title>c</title><author>x</author><conference/></publication>\
  </gradStudent></department>";

#[test]
fn infer_prints_view_dtds() {
    let dtd = fixture("d1.dtd", D1);
    let q = fixture("q2.xmas", Q2);
    let out = mixctl(&[
        "infer",
        "--dtd",
        dtd.to_str().unwrap(),
        "--query",
        q.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verdict: Satisfiable"), "{text}");
    assert!(
        text.contains("publication^1 : title, author+, journal"),
        "{text}"
    );
    assert!(text.contains("non-tightness introduced by merging on: publication"));
}

#[test]
fn classify_and_eval() {
    let dtd = fixture("d1b.dtd", D1);
    let q = fixture("q2b.xmas", Q2);
    let doc = fixture("dept.xml", DOC);
    let out = mixctl(&[
        "classify",
        "--dtd",
        dtd.to_str().unwrap(),
        "--query",
        q.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "Satisfiable");

    let out = mixctl(&[
        "eval",
        "--dtd",
        dtd.to_str().unwrap(),
        "--doc",
        doc.to_str().unwrap(),
        "--query",
        q.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("<withJournals>"));
    assert!(text.contains("<professor>"));
    assert!(!text.contains("<gradStudent>")); // only one journal pub
}

#[test]
fn validate_both_ways() {
    let dtd = fixture("d1c.dtd", D1);
    let good = fixture("good.xml", DOC);
    let bad = fixture("bad.xml", "<department><name>CS</name></department>");
    let out = mixctl(&[
        "validate",
        "--dtd",
        dtd.to_str().unwrap(),
        "--doc",
        good.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = mixctl(&[
        "validate",
        "--dtd",
        dtd.to_str().unwrap(),
        "--doc",
        bad.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("invalid"));
}

#[test]
fn structure_and_tightness() {
    let dtd = fixture("d1d.dtd", D1);
    let q = fixture("q2d.xmas", Q2);
    let out = mixctl(&["structure", "--dtd", dtd.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("professor"));

    let out = mixctl(&[
        "tightness",
        "--dtd",
        dtd.to_str().unwrap(),
        "--query",
        q.to_str().unwrap(),
        "--max-size",
        "12",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("naive"), "{text}");
}

#[test]
fn xml_dtd_syntax_is_autodetected() {
    let dtd = fixture(
        "d1.xmldtd",
        "<!DOCTYPE department [\
           <!ELEMENT department (name, professor+, gradStudent+, course*)>\
           <!ELEMENT professor (firstName, lastName, publication+, teaches)>\
           <!ELEMENT gradStudent (firstName, lastName, publication+)>\
           <!ELEMENT publication (title, author+, (journal | conference))>\
           <!ELEMENT teaches EMPTY> <!ELEMENT journal EMPTY>\
           <!ELEMENT conference EMPTY> <!ELEMENT course EMPTY>\
         ]>",
    );
    let out = mixctl(&["structure", "--dtd", dtd.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("department"));
}

#[test]
fn bad_usage_exits_nonzero() {
    assert!(!mixctl(&[]).status.success());
    assert!(!mixctl(&["nonsense"]).status.success());
    assert!(!mixctl(&["infer"]).status.success());
    assert!(mixctl(&["help"]).status.success());
}

/// Unparseable inputs (DTD, query, document) all map to exit code 4.
#[test]
fn parse_errors_exit_4() {
    let good_dtd = fixture("pe.dtd", D1);
    let good_q = fixture("pe.xmas", Q2);
    let bad_dtd = fixture("pe-bad.dtd", "{<department : ");
    let bad_q = fixture("pe-bad.xmas", "SELECT WHERE <<");
    let bad_doc = fixture("pe-bad.xml", "<department><name>CS</department>");

    let out = mixctl(&[
        "infer",
        "--dtd",
        bad_dtd.to_str().unwrap(),
        "--query",
        good_q.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(4), "bad DTD");

    let out = mixctl(&[
        "classify",
        "--dtd",
        good_dtd.to_str().unwrap(),
        "--query",
        bad_q.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(4), "bad query");

    let out = mixctl(&[
        "validate",
        "--dtd",
        good_dtd.to_str().unwrap(),
        "--doc",
        bad_doc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(4), "bad document");
}

/// A well-formed query that fails normalization (its pick variable is
/// never bound) is *rejected*, exit code 5 — distinct from a parse error
/// and from source trouble.
#[test]
fn rejected_queries_exit_5() {
    let dtd = fixture("rq.dtd", D1);
    let doc = fixture("rq.xml", DOC);
    let q = fixture(
        "rq.xmas",
        "v = SELECT Z WHERE <department> X:<professor/> </department>",
    );
    let out = mixctl(&[
        "eval",
        "--dtd",
        dtd.to_str().unwrap(),
        "--doc",
        doc.to_str().unwrap(),
        "--query",
        q.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(5), "{:?}", out);
    assert!(String::from_utf8_lossy(&out.stderr).contains("query rejected"));
}

/// `federate --remote` against a dead address is an unavailable-source
/// failure: exit code 6.
#[test]
fn federate_dead_remote_exits_6() {
    // bind-then-drop reserves a port nothing is listening on
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let q = fixture("fd.xmas", Q2);
    let out = mixctl(&[
        "federate",
        "--query",
        q.to_str().unwrap(),
        "--remote",
        &dead,
    ]);
    assert_eq!(out.status.code(), Some(6), "{:?}", out);
    assert!(String::from_utf8_lossy(&out.stderr).contains("connection refused"));
}

/// A serve-source daemon spawned from the binary answers a `federate
/// --remote` run from a second binary invocation — the full network mode
/// end to end, including the parseable "listening on" line.
#[test]
fn serve_source_then_federate_over_loopback() {
    use std::io::BufRead as _;

    let dtd = fixture("net.dtd", D1);
    let doc = fixture("net.xml", DOC);
    let q = fixture("net.xmas", Q2);

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_mixctl"))
        .args([
            "serve-source",
            "--addr",
            "127.0.0.1:0",
            "--dtd",
            dtd.to_str().unwrap(),
            "--doc",
            doc.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut line = String::new();
    std::io::BufReader::new(daemon.stdout.as_mut().expect("piped stdout"))
        .read_line(&mut line)
        .expect("daemon announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_owned();

    let out = mixctl(&[
        "federate",
        "--query",
        q.to_str().unwrap(),
        "--remote",
        &addr,
    ]);
    let _ = daemon.kill();
    let _ = daemon.wait();

    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("<view>"), "{text}");
    assert!(text.contains("<professor>"), "{text}");
    assert!(text.contains("1/1 sources served"), "{text}");
}

/// serve-source without a bind address is a usage error (exit 2), like
/// every other malformed invocation.
#[test]
fn serve_source_without_addr_is_usage_error() {
    let dtd = fixture("sa.dtd", D1);
    let doc = fixture("sa.xml", DOC);
    let out = mixctl(&[
        "serve-source",
        "--dtd",
        dtd.to_str().unwrap(),
        "--doc",
        doc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn union_subcommand() {
    let dtd = fixture("du.dtd", D1);
    let q = fixture(
        "qu.xmas",
        "publist = SELECT P WHERE <department> <name>CS</name> \
           <professor | gradStudent> P:<publication><journal/></publication> </> </>",
    );
    let part = format!("{}:{}", dtd.to_str().unwrap(), q.to_str().unwrap());
    let out = mixctl(&[
        "union", "--name", "allPubs", "--part", &part, "--part", &part,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("allPubs"), "{text}");
    assert!(text.contains("publication"), "{text}");
    // no parts → usage error
    assert!(!mixctl(&["union"]).status.success());
}
