//! Deterministic automata: subset construction, completion, product,
//! Moore minimization, and the word-counting dynamic program used by the
//! tightness metrics.

use crate::ast::Regex;
use crate::nfa::Nfa;
use crate::symbol::Sym;
use std::collections::HashMap;

/// A complete deterministic finite automaton over an explicit alphabet.
///
/// Every state has exactly one transition per alphabet symbol (a sink state
/// is materialized during construction), so language-theoretic operations
/// (complement, product, counting) are table walks.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// The symbols this automaton distinguishes. Symbols outside the
    /// alphabet are rejected from any state.
    pub alphabet: Vec<Sym>,
    /// `transitions[s * alphabet.len() + a]` = successor of state `s` on
    /// alphabet symbol index `a`.
    pub transitions: Vec<u32>,
    /// `accepting[s]` is true if `s` is final.
    pub accepting: Vec<bool>,
    /// The start state.
    pub start: u32,
}

impl Dfa {
    /// Number of states.
    pub fn len(&self) -> usize {
        self.accepting.len()
    }

    /// True when there are no states (never constructed that way).
    pub fn is_empty(&self) -> bool {
        self.accepting.is_empty()
    }

    fn step(&self, state: u32, a: usize) -> u32 {
        self.transitions[state as usize * self.alphabet.len() + a]
    }

    fn sym_index(&self, s: Sym) -> Option<usize> {
        self.alphabet.iter().position(|&x| x == s)
    }

    /// Subset construction over the given alphabet.
    ///
    /// The alphabet must be a superset of the symbols the NFA uses; extra
    /// symbols yield dead transitions. Passing a shared alphabet lets two
    /// DFAs be combined with [`Dfa::product`].
    pub fn from_nfa(nfa: &Nfa, alphabet: &[Sym]) -> Dfa {
        let asz = alphabet.len();
        let nsz = nfa.len();
        // Map each subset (bitset as Vec<u64>) to a DFA state id.
        let words = nsz.div_ceil(64);
        let mut start = vec![0u64; words];
        start[0] |= 1; // NFA state 0
        let mut index: HashMap<Vec<u64>, u32> = HashMap::new();
        index.insert(start.clone(), 0);
        let mut order = vec![start];
        let mut transitions: Vec<u32> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut frontier = 0usize;
        while frontier < order.len() {
            let set = order[frontier].clone();
            frontier += 1;
            accepting.push((0..nsz).any(|s| set[s / 64] >> (s % 64) & 1 == 1 && nfa.accepting[s]));
            for &a in alphabet.iter() {
                let mut next = vec![0u64; words];
                for s in 0..nsz {
                    if set[s / 64] >> (s % 64) & 1 == 1 {
                        for &(sym, t) in &nfa.transitions[s] {
                            if sym == a {
                                next[t as usize / 64] |= 1 << (t % 64);
                            }
                        }
                    }
                }
                let id = *index.entry(next.clone()).or_insert_with(|| {
                    order.push(next);
                    (order.len() - 1) as u32
                });
                transitions.push(id);
            }
        }
        debug_assert_eq!(transitions.len(), order.len() * asz);
        Dfa {
            alphabet: alphabet.to_vec(),
            transitions,
            accepting,
            start: 0,
        }
    }

    /// Builds a minimized DFA for `r` over the union of `r`'s symbols and
    /// `extra` alphabet symbols.
    pub fn from_regex_with_alphabet(r: &Regex, extra: &[Sym]) -> Dfa {
        let mut alphabet: Vec<Sym> = r.syms().into_iter().collect();
        for &s in extra {
            if !alphabet.contains(&s) {
                alphabet.push(s);
            }
        }
        alphabet.sort();
        Dfa::from_nfa(&Nfa::from_regex(r), &alphabet).minimize()
    }

    /// Builds a minimized DFA for `r` over exactly `r`'s own symbols.
    pub fn from_regex(r: &Regex) -> Dfa {
        Dfa::from_regex_with_alphabet(r, &[])
    }

    /// Runs the automaton. Symbols outside the alphabet reject.
    pub fn accepts(&self, word: &[Sym]) -> bool {
        let mut s = self.start;
        for &c in word {
            match self.sym_index(c) {
                Some(a) => s = self.step(s, a),
                None => return false,
            }
        }
        self.accepting[s as usize]
    }

    /// Complement (the DFA is complete by construction, so this just flips
    /// accepting states). The complement is relative to the alphabet.
    pub fn complement(&self) -> Dfa {
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions: self.transitions.clone(),
            accepting: self.accepting.iter().map(|b| !b).collect(),
            start: self.start,
        }
    }

    /// Product automaton computing the *intersection* of two languages.
    ///
    /// Panics if the alphabets differ — build both sides with a shared
    /// alphabet (see [`Dfa::from_regex_with_alphabet`]).
    pub fn product(&self, other: &Dfa) -> Dfa {
        assert_eq!(
            self.alphabet, other.alphabet,
            "product requires a shared alphabet"
        );
        let asz = self.alphabet.len();
        let mut index: HashMap<(u32, u32), u32> = HashMap::new();
        let mut order = vec![(self.start, other.start)];
        index.insert(order[0], 0);
        let mut transitions = Vec::new();
        let mut accepting = Vec::new();
        let mut i = 0;
        while i < order.len() {
            let (p, q) = order[i];
            i += 1;
            accepting.push(self.accepting[p as usize] && other.accepting[q as usize]);
            for a in 0..asz {
                let next = (self.step(p, a), other.step(q, a));
                let id = *index.entry(next).or_insert_with(|| {
                    order.push(next);
                    (order.len() - 1) as u32
                });
                transitions.push(id);
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions,
            accepting,
            start: 0,
        }
    }

    /// Does the automaton accept any word at all?
    pub fn language_is_empty(&self) -> bool {
        // BFS from the start state.
        let mut seen = vec![false; self.len()];
        let mut stack = vec![self.start];
        seen[self.start as usize] = true;
        while let Some(s) = stack.pop() {
            if self.accepting[s as usize] {
                return false;
            }
            for a in 0..self.alphabet.len() {
                let t = self.step(s, a);
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        true
    }

    /// Moore partition-refinement minimization (also prunes unreachable
    /// states).
    pub fn minimize(&self) -> Dfa {
        let asz = self.alphabet.len();
        // 1. restrict to reachable states
        let mut reach: Vec<Option<u32>> = vec![None; self.len()];
        let mut order = vec![self.start];
        reach[self.start as usize] = Some(0);
        let mut i = 0;
        while i < order.len() {
            let s = order[i];
            i += 1;
            for a in 0..asz {
                let t = self.step(s, a);
                if reach[t as usize].is_none() {
                    reach[t as usize] = Some(order.len() as u32);
                    order.push(t);
                }
            }
        }
        let n = order.len();
        // 2. initial partition by acceptance
        let mut class: Vec<u32> = order
            .iter()
            .map(|&s| u32::from(self.accepting[s as usize]))
            .collect();
        let mut nclasses = 2;
        loop {
            // signature of each state: (class, classes of successors)
            let mut sig_index: HashMap<Vec<u32>, u32> = HashMap::new();
            let mut next_class = vec![0u32; n];
            let mut next_n = 0;
            for (ri, &s) in order.iter().enumerate() {
                let mut sig = Vec::with_capacity(asz + 1);
                sig.push(class[ri]);
                for a in 0..asz {
                    let t = self.step(s, a);
                    let rt = reach[t as usize].expect("successor reachable");
                    sig.push(class[rt as usize]);
                }
                let id = *sig_index.entry(sig).or_insert_with(|| {
                    next_n += 1;
                    next_n - 1
                });
                next_class[ri] = id;
            }
            if next_n == nclasses {
                class = next_class;
                break;
            }
            nclasses = next_n;
            class = next_class;
        }
        // 3. build the quotient
        let mut transitions = vec![0u32; nclasses as usize * asz];
        let mut accepting = vec![false; nclasses as usize];
        let mut seen = vec![false; nclasses as usize];
        for (ri, &s) in order.iter().enumerate() {
            let c = class[ri] as usize;
            if seen[c] {
                continue;
            }
            seen[c] = true;
            accepting[c] = self.accepting[s as usize];
            for a in 0..asz {
                let t = self.step(s, a);
                let rt = reach[t as usize].expect("successor reachable");
                transitions[c * asz + a] = class[rt as usize];
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions,
            accepting,
            start: class[0],
        }
    }

    /// Counts accepted words of each length `0..=max_len`.
    ///
    /// Saturates at `u128::MAX`. This is the workhorse of the quantitative
    /// tightness metric: the number of *sequences of children* a type allows.
    pub fn count_words_by_len(&self, max_len: usize) -> Vec<u128> {
        let asz = self.alphabet.len();
        let mut counts = vec![0u128; self.len()];
        counts[self.start as usize] = 1;
        let mut out = Vec::with_capacity(max_len + 1);
        let accept_sum = |c: &[u128]| {
            c.iter()
                .zip(&self.accepting)
                .filter(|(_, acc)| **acc)
                .fold(0u128, |s, (v, _)| s.saturating_add(*v))
        };
        out.push(accept_sum(&counts));
        for _ in 0..max_len {
            let mut next = vec![0u128; self.len()];
            for (s, &v) in counts.iter().enumerate() {
                if v == 0 {
                    continue;
                }
                for a in 0..asz {
                    let t = self.step(s as u32, a) as usize;
                    next[t] = next[t].saturating_add(v);
                }
            }
            counts = next;
            out.push(accept_sum(&counts));
        }
        out
    }

    /// Enumerates accepted words of length ≤ `max_len`, up to `cap` words,
    /// in length-lexicographic order.
    pub fn enumerate_words(&self, max_len: usize, cap: usize) -> Vec<Vec<Sym>> {
        let mut out = Vec::new();
        let mut layer: Vec<(u32, Vec<Sym>)> = vec![(self.start, Vec::new())];
        for len in 0..=max_len {
            for (s, w) in &layer {
                if self.accepting[*s as usize] {
                    out.push(w.clone());
                    if out.len() >= cap {
                        return out;
                    }
                }
            }
            if len == max_len {
                break;
            }
            let mut next = Vec::new();
            for (s, w) in &layer {
                for (a, &sym) in self.alphabet.iter().enumerate() {
                    let t = self.step(*s, a);
                    // Skip obvious dead branches: states from which no
                    // accepting state is reachable would still be expanded;
                    // keep it simple and rely on `cap`/`max_len` to bound.
                    let mut w2 = w.clone();
                    w2.push(sym);
                    next.push((t, w2));
                }
            }
            layer = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;
    use crate::symbol::sym;

    fn dfa(s: &str) -> Dfa {
        Dfa::from_regex(&parse_regex(s).unwrap())
    }

    fn accepts(d: &Dfa, word: &[&str]) -> bool {
        let w: Vec<_> = word.iter().map(|s| sym(s)).collect();
        d.accepts(&w)
    }

    #[test]
    fn determinization_agrees_with_nfa() {
        let sources = [
            "a",
            "a, b",
            "a | b",
            "(a | b)*, c",
            "title, author+, (journal | conference)",
            "(a?, b)*",
            "a+, a+",
        ];
        let words: Vec<Vec<&str>> = vec![
            vec![],
            vec!["a"],
            vec!["b"],
            vec!["a", "b"],
            vec!["a", "a"],
            vec!["a", "b", "c"],
            vec!["title", "author", "journal"],
            vec!["a", "a", "a", "a"],
            vec!["b", "a"],
        ];
        for src in sources {
            let r = parse_regex(src).unwrap();
            let nfa = Nfa::from_regex(&r);
            let d = Dfa::from_regex(&r);
            for w in &words {
                let ws: Vec<_> = w.iter().map(|s| sym(s)).collect();
                assert_eq!(
                    nfa.accepts(&ws),
                    d.accepts(&ws),
                    "mismatch for {src} on {w:?}"
                );
            }
        }
    }

    #[test]
    fn complement_flips() {
        let d = dfa("a, b");
        let c = d.complement();
        assert!(accepts(&d, &["a", "b"]));
        assert!(!accepts(&c, &["a", "b"]));
        assert!(!accepts(&d, &["a"]));
        assert!(accepts(&c, &["a"]));
    }

    #[test]
    fn product_intersects() {
        let alpha: Vec<Sym> = vec![sym("a"), sym("b")];
        let d1 = Dfa::from_regex_with_alphabet(&parse_regex("a*, b*").unwrap(), &alpha);
        let d2 = Dfa::from_regex_with_alphabet(&parse_regex("(a, a)* , b*").unwrap(), &alpha);
        let p = d1.product(&d2);
        assert!(accepts(&p, &["a", "a", "b"]));
        assert!(!accepts(&p, &["a", "b"]));
        assert!(accepts(&p, &[]));
    }

    #[test]
    fn emptiness() {
        assert!(Dfa::from_regex(&Regex::Empty).language_is_empty());
        assert!(!dfa("a?").language_is_empty());
        // a ∩ b = ∅
        let alpha: Vec<Sym> = vec![sym("a"), sym("b")];
        let d1 = Dfa::from_regex_with_alphabet(&parse_regex("a").unwrap(), &alpha);
        let d2 = Dfa::from_regex_with_alphabet(&parse_regex("b").unwrap(), &alpha);
        assert!(d1.product(&d2).language_is_empty());
    }

    #[test]
    fn minimize_collapses_equivalent_states() {
        // a|a, (a) and a should all minimize to the same 2+sink machine.
        let d1 = dfa("a | a").minimize();
        let d2 = dfa("a").minimize();
        assert_eq!(d1.len(), d2.len());
        // p*,p,p* has the same language as p+.
        let d3 = dfa("p*, p, p*").minimize();
        let d4 = dfa("p+").minimize();
        assert_eq!(d3.len(), d4.len());
    }

    #[test]
    fn counting_words() {
        // (a|b)* has 2^n words of length n.
        let d = dfa("(a | b)*");
        let c = d.count_words_by_len(5);
        assert_eq!(c, vec![1, 2, 4, 8, 16, 32]);
        // a? has one word of length 0 and one of length 1.
        let d = dfa("a?");
        assert_eq!(d.count_words_by_len(3), vec![1, 1, 0, 0]);
    }

    #[test]
    fn counting_saturates() {
        let d = dfa("(a | b)*");
        let c = d.count_words_by_len(200);
        assert_eq!(*c.last().unwrap(), u128::MAX.saturating_mul(1)); // saturated? 2^200 > u128::MAX
        assert_eq!(c[200], u128::MAX);
    }

    #[test]
    fn enumerate_small() {
        let d = dfa("a, b | c");
        let mut words = d.enumerate_words(2, 100);
        words.sort();
        assert_eq!(words.len(), 2);
        assert!(words.contains(&vec![sym("c")]));
        assert!(words.contains(&vec![sym("a"), sym("b")]));
    }
}
