//! The fault model of the source layer.
//!
//! The paper's headline scenario unions "the structures exported by 100
//! sites" — and real sites time out, ship malformed XML, or emit documents
//! that no longer validate against their advertised DTD. [`SourceError`]
//! is the closed set of ways a wrapper call can fail; the mediator's
//! resilience layer (see [`crate::resilience`]) keys its retry and
//! circuit-breaker decisions off [`SourceError::is_transient`].

use mix_dtd::ValidationError;
use mix_xmas::NormalizeError;
use std::fmt;

/// Why a wrapper call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// A transient fault (connection reset, mid-air reconfiguration):
    /// retrying the same call may succeed.
    Transient(String),
    /// The source did not answer within its budget. Timeouts are treated
    /// as transient: the next attempt may land inside the budget.
    Timeout {
        /// The (virtual) budget that elapsed, in milliseconds.
        millis: u64,
    },
    /// The source answered with text that does not parse as XML.
    MalformedXml(String),
    /// The source answered with a well-formed document that violates its
    /// advertised DTD.
    DtdInvalid(String),
    /// The source is down, unreachable, or refusing service.
    Unavailable(String),
    /// The query itself is ill-formed for this source (normalization
    /// failed). Not a source fault: retries and breaker accounting skip
    /// it.
    Query(NormalizeError),
    /// This build and the source's build speak incompatible protocols
    /// (e.g. a frame-version mismatch). A *deployment* fault, not a
    /// health signal: no number of retries against the same peer can
    /// succeed, so breaker accounting skips it — tripping the breaker
    /// would mask the misconfiguration behind stale snapshots.
    Incompatible(String),
    /// The source's admission control shed the call (backpressure). Not
    /// a health signal either: the source is alive and protecting
    /// itself, so the breaker stays untouched, and retrying inside the
    /// same attempt budget would just burn tokens.
    Throttled {
        /// The source's suggested minimum backoff, in milliseconds.
        retry_after_ms: u64,
    },
}

impl SourceError {
    /// Whether retrying the identical call can plausibly succeed.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SourceError::Transient(_) | SourceError::Timeout { .. }
        )
    }

    /// Whether the failure counts against the *source's* health (breaker
    /// accounting). Query errors are the caller's fault; version
    /// mismatches are the deployment's; throttles are the source
    /// defending itself — none of them says the source is *sick*.
    pub fn is_source_fault(&self) -> bool {
        !matches!(
            self,
            SourceError::Query(_) | SourceError::Incompatible(_) | SourceError::Throttled { .. }
        )
    }

    /// A short stable label for reports and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            SourceError::Transient(_) => "transient",
            SourceError::Timeout { .. } => "timeout",
            SourceError::MalformedXml(_) => "malformed-xml",
            SourceError::DtdInvalid(_) => "dtd-invalid",
            SourceError::Unavailable(_) => "unavailable",
            SourceError::Query(_) => "query",
            SourceError::Incompatible(_) => "incompatible",
            SourceError::Throttled { .. } => "throttled",
        }
    }

    /// A DTD-invalid error carrying the validator's diagnosis.
    pub fn invalid(e: &ValidationError) -> SourceError {
        SourceError::DtdInvalid(e.to_string())
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Transient(msg) => write!(f, "transient fault: {msg}"),
            SourceError::Timeout { millis } => write!(f, "timed out after {millis}ms"),
            SourceError::MalformedXml(msg) => write!(f, "malformed XML: {msg}"),
            SourceError::DtdInvalid(msg) => {
                write!(f, "document violates the advertised DTD: {msg}")
            }
            SourceError::Unavailable(msg) => write!(f, "source unavailable: {msg}"),
            SourceError::Query(e) => write!(f, "query rejected: {e}"),
            SourceError::Incompatible(msg) => write!(f, "incompatible peer: {msg}"),
            SourceError::Throttled { retry_after_ms } => {
                write!(f, "throttled by source: retry after {retry_after_ms}ms")
            }
        }
    }
}

impl std::error::Error for SourceError {}

impl From<NormalizeError> for SourceError {
    fn from(e: NormalizeError) -> Self {
        SourceError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        assert!(SourceError::Transient("reset".into()).is_transient());
        assert!(SourceError::Timeout { millis: 50 }.is_transient());
        assert!(!SourceError::MalformedXml("eof".into()).is_transient());
        assert!(!SourceError::DtdInvalid("bad".into()).is_transient());
        assert!(!SourceError::Unavailable("down".into()).is_transient());
    }

    #[test]
    fn query_errors_are_not_source_faults() {
        let e = SourceError::Query(NormalizeError::SelfDiseq(mix_xmas::Var::new("X")));
        assert!(!e.is_source_fault());
        assert!(SourceError::Unavailable("down".into()).is_source_fault());
    }

    #[test]
    fn incompatibility_and_throttling_bypass_the_breaker_and_retries() {
        let v = SourceError::Incompatible("peer speaks 9".into());
        assert!(!v.is_source_fault() && !v.is_transient());
        let t = SourceError::Throttled { retry_after_ms: 25 };
        assert!(!t.is_source_fault() && !t.is_transient());
        assert_eq!(t.to_string(), "throttled by source: retry after 25ms");
    }

    #[test]
    fn kinds_are_stable() {
        assert_eq!(SourceError::Timeout { millis: 1 }.kind(), "timeout");
        assert_eq!(SourceError::Transient(String::new()).kind(), "transient");
        assert_eq!(
            SourceError::Incompatible(String::new()).kind(),
            "incompatible"
        );
        assert_eq!(
            SourceError::Throttled { retry_after_ms: 1 }.kind(),
            "throttled"
        );
    }
}
