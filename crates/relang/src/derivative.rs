//! Brzozowski derivatives — a second, independent decision procedure for
//! content-model languages.
//!
//! The Glushkov automata of [`crate::nfa`] are the workhorse; derivatives
//! provide (a) an online matcher that needs no automaton construction
//! (useful for one-shot validation of small content), and (b) an
//! implementation-independent cross-check: the property suites verify
//! both matchers agree on random regexes, which guards the soundness of
//! every tightness decision made downstream.

use crate::ast::Regex;
use crate::pool::{self, ReId, ReNode};
use crate::symbol::Sym;

/// The Brzozowski derivative `∂_s r`: a regex for `{ w | s·w ∈ L(r) }`.
pub fn derivative(r: &Regex, s: Sym) -> Regex {
    match r {
        Regex::Empty | Regex::Epsilon => Regex::Empty,
        Regex::Sym(x) => {
            if *x == s {
                Regex::Epsilon
            } else {
                Regex::Empty
            }
        }
        Regex::Concat(v) => {
            // ∂(r1 r2…) = ∂(r1) r2… | [nullable r1] ∂(r2…)
            let first = &v[0];
            let rest = Regex::concat(v[1..].iter().cloned());
            let left = Regex::concat([derivative(first, s), rest.clone()]);
            if first.nullable() {
                Regex::alt([left, derivative(&rest, s)])
            } else {
                left
            }
        }
        Regex::Alt(v) => Regex::alt(v.iter().map(|x| derivative(x, s))),
        Regex::Star(g) => Regex::concat([derivative(g, s), Regex::star((**g).clone())]),
        Regex::Plus(g) => {
            // r+ = r r*
            Regex::concat([derivative(g, s), Regex::star((**g).clone())])
        }
        Regex::Opt(g) => derivative(g, s),
    }
}

/// The Brzozowski derivative over pool ids, guarded by the cached
/// first-set: when `s` cannot start any word of `L(r)` the whole
/// recursion is skipped and `Empty` returned directly — sound because the
/// structural first-set always over-approximates the language first-set.
/// Subterms shared through the pool are derived by the same mirror smart
/// constructors as the boxed twin.
pub fn derivative_id(r: ReId, s: Sym) -> ReId {
    if !pool::first_set(r).contains(&s) {
        return ReId::EMPTY;
    }
    match pool::node(r) {
        ReNode::Empty | ReNode::Epsilon => ReId::EMPTY,
        ReNode::Sym(x) => {
            if x == s {
                ReId::EPSILON
            } else {
                ReId::EMPTY
            }
        }
        ReNode::Concat(v) => {
            // ∂(r1 r2…) = ∂(r1) r2… | [nullable r1] ∂(r2…)
            let first = v[0];
            let rest = pool::concat_ids(v[1..].to_vec());
            let left = pool::concat_ids([derivative_id(first, s), rest]);
            if pool::nullable(first) {
                pool::alt_ids([left, derivative_id(rest, s)])
            } else {
                left
            }
        }
        ReNode::Alt(v) => pool::alt_ids(v.iter().map(|&x| derivative_id(x, s)).collect::<Vec<_>>()),
        ReNode::Star(g) | ReNode::Plus(g) => {
            // ∂(r*) = ∂(r) r* ; r+ = r r*
            pool::concat_ids([derivative_id(g, s), pool::star_id(g)])
        }
        ReNode::Opt(g) => derivative_id(g, s),
    }
}

/// Word membership via iterated derivatives (interned: emptiness and
/// nullability checks are cached id lookups; boxed-baseline mode keeps
/// the seed clone-per-step loop).
pub fn matches_by_derivative(r: &Regex, word: &[Sym]) -> bool {
    if pool::boxed_baseline() {
        let mut cur = r.clone();
        for &s in word {
            if cur.is_empty_lang() {
                return false;
            }
            cur = derivative(&cur, s);
        }
        return cur.nullable();
    }
    let mut cur = pool::intern(r);
    for &s in word {
        if cur == ReId::EMPTY {
            return false;
        }
        cur = derivative_id(cur, s);
    }
    pool::nullable(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matches;
    use crate::parser::parse_regex;
    use crate::symbol::sym;

    fn w(names: &[&str]) -> Vec<Sym> {
        names.iter().map(|s| sym(s)).collect()
    }

    #[test]
    fn basic_derivatives() {
        let r = parse_regex("a, b").unwrap();
        let d = derivative(&r, sym("a"));
        assert!(matches_by_derivative(&d, &w(&["b"])));
        assert!(derivative(&r, sym("b")).is_empty_lang());
    }

    #[test]
    fn matches_agree_with_nfa_on_fixed_cases() {
        for (re, word, expect) in [
            ("a*", vec![], true),
            ("a*", vec!["a", "a"], true),
            ("a+", vec![], false),
            ("a?, b", vec!["b"], true),
            ("a?, b", vec!["a", "b"], true),
            ("(a | b)*, c", vec!["b", "a", "c"], true),
            ("(a | b)*, c", vec!["c", "a"], false),
            (
                "title, author+, (journal | conference)",
                vec!["title", "author", "journal"],
                true,
            ),
        ] {
            let r = parse_regex(re).unwrap();
            let word = w(&word);
            assert_eq!(matches_by_derivative(&r, &word), expect, "{re} on {word:?}");
            assert_eq!(matches(&r, &word), expect, "NFA disagrees on {re}");
        }
    }

    #[test]
    fn nullable_after_full_word() {
        let r = parse_regex("(a, b)+").unwrap();
        assert!(matches_by_derivative(&r, &w(&["a", "b", "a", "b"])));
        assert!(!matches_by_derivative(&r, &w(&["a", "b", "a"])));
    }

    #[test]
    fn tagged_syms_differ() {
        let r = parse_regex("j^1, j").unwrap();
        let j0 = sym("j");
        let j1 = crate::symbol::name("j").tagged(1);
        assert!(matches_by_derivative(&r, &[j1, j0]));
        assert!(!matches_by_derivative(&r, &[j0, j1]));
    }

    #[test]
    fn interned_derivative_mirrors_boxed() {
        for (re, by) in [
            ("a, b", "a"),
            ("a?, b", "b"),
            ("(a | b)*, c", "b"),
            ("(a, b)+", "a"),
            ("title, author+, (journal | conference)", "title"),
            ("a, b", "z"), // first-set guard path
        ] {
            let r = parse_regex(re).unwrap();
            let s = sym(by);
            let boxed = derivative(&r, s);
            let interned = crate::pool::to_regex(derivative_id(crate::pool::intern(&r), s));
            assert_eq!(interned, boxed, "∂_{by} {re}");
        }
    }

    #[test]
    fn derivative_of_empty_stays_empty() {
        assert!(derivative(&Regex::Empty, sym("a")).is_empty_lang());
        assert!(derivative(&Regex::Epsilon, sym("a")).is_empty_lang());
    }
}
