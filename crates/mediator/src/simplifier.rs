//! DTD-based query simplification beyond unsatisfiability pruning.
//!
//! Section 1: "the query simplifier may employ the source DTDs to create a
//! more efficient plan". Two rewrites, both justified by the Figure 2
//! verdicts:
//!
//! * **Valid-condition elimination** — a subcondition whose *step*
//!   verdict is Valid (every parent instance certainly contains a fresh
//!   witness child) filters nothing; dropping it leaves the answer
//!   unchanged and removes matching work. Because sibling conditions must
//!   bind *distinct* children (Section 4.2), a condition is only dropped
//!   when either every sibling's step verdict is Valid too (the whole
//!   conjunction is valid, so the satisfaction set is "everything" with
//!   or without it) or its name test is disjoint from every sibling's
//!   (no competition for witnesses). Conditions binding variables the
//!   query still needs (the pick variable, ids used in `!=`) are kept.
//! * **Dead-branch narrowing** — a disjunct of a name test whose subtree
//!   is *Unsatisfiable* for that name can never produce a witness;
//!   narrowing the test shrinks the search space. (When *all* names die
//!   the whole query is unsatisfiable — that case is handled by the
//!   mediator's pruning path before this rewrite runs.)

use mix_dtd::Dtd;
use mix_infer::tighten::{tighten, Tightened, Verdict};
use mix_xmas::{Body, Condition, NameTest, Query, Var};
use std::collections::HashSet;

/// Statistics of one simplification run (surfaced for the ablation bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Subconditions removed because they were valid.
    pub dropped_valid: usize,
    /// Names removed from disjunctive tests because they were dead.
    pub narrowed_names: usize,
}

/// Simplifies a *normalized* query against the DTD it will run on.
/// Returns the rewritten query and what was done. The answer set is
/// preserved exactly.
pub fn simplify_query(q: &Query, dtd: &Dtd) -> (Query, SimplifyStats) {
    let tightened = tighten(q, dtd);
    let mut stats = SimplifyStats::default();
    // variables that must survive: the pick and everything in diseqs
    let mut needed: HashSet<Var> = HashSet::new();
    needed.insert(q.pick);
    for &(a, b) in &q.diseqs {
        needed.insert(a);
        needed.insert(b);
    }
    let root = rewrite(&q.root, &tightened, &needed, &mut stats, true);
    (
        Query {
            view_name: q.view_name,
            pick: q.pick,
            root,
            diseqs: q.diseqs.clone(),
        },
        stats,
    )
}

/// Does this subtree bind any variable the query still needs?
fn binds_needed(c: &Condition, needed: &HashSet<Var>) -> bool {
    c.walk().iter().any(|x| {
        x.var.is_some_and(|v| needed.contains(&v)) || x.id_var.is_some_and(|v| needed.contains(&v))
    })
}

/// The step verdict recorded by the tightening pass for this occurrence.
fn step_verdict(c: &Condition, t: &Tightened) -> Verdict {
    t.step
        .get(&c.tag)
        .copied()
        .unwrap_or(Verdict::Unsatisfiable)
}

/// Can the two conditions ever compete for the same witness child?
fn tests_overlap(a: &Condition, b: &Condition) -> bool {
    match (&a.test, &b.test) {
        (NameTest::Names(x), NameTest::Names(y)) => x.iter().any(|n| y.contains(n)),
        _ => true, // wildcards (pre-normalization) overlap everything
    }
}

fn rewrite(
    c: &Condition,
    t: &Tightened,
    needed: &HashSet<Var>,
    stats: &mut SimplifyStats,
    is_root: bool,
) -> Condition {
    // narrow the test to viable names (skip the root: its test is matched
    // against the fixed document type, and narrowing hides the mismatch
    // diagnostics)
    let test = if is_root {
        c.test.clone()
    } else {
        match &c.test {
            NameTest::Names(names) if names.len() > 1 => {
                let viable = t.viable_names(c);
                let kept: Vec<_> = names
                    .iter()
                    .copied()
                    .filter(|n| viable.contains(n))
                    .collect();
                if kept.is_empty() || kept.len() == names.len() {
                    c.test.clone()
                } else {
                    stats.narrowed_names += names.len() - kept.len();
                    NameTest::Names(kept)
                }
            }
            other => other.clone(),
        }
    };
    let body = match &c.body {
        Body::Text(s) => Body::Text(s.clone()),
        Body::Children(kids) => {
            let all_valid = kids.iter().all(|k| step_verdict(k, t) == Verdict::Valid);
            let mut out = Vec::new();
            for (i, k) in kids.iter().enumerate() {
                let droppable = !binds_needed(k, needed)
                    && step_verdict(k, t) == Verdict::Valid
                    && (all_valid
                        || kids
                            .iter()
                            .enumerate()
                            .all(|(j, other)| i == j || !tests_overlap(k, other)));
                if droppable {
                    stats.dropped_valid += 1;
                    continue;
                }
                out.push(rewrite(k, t, needed, stats, false));
            }
            Body::Children(out)
        }
    };
    Condition {
        test,
        var: c.var,
        id_var: c.id_var,
        tag: c.tag,
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_dtd::paper::d1_department;
    use mix_relang::symbol::name;
    use mix_xmas::{evaluate, normalize, parse_query};
    use mix_xml::parse_document;

    fn dept() -> mix_xml::Document {
        parse_document(
            "<department><name>CS</name>\
               <professor><firstName>Y</firstName><lastName>P</lastName>\
                 <publication><title>a</title><author>x</author><journal/></publication>\
                 <teaches/></professor>\
               <gradStudent><firstName>G</firstName><lastName>S</lastName>\
                 <publication><title>b</title><author>x</author><conference/></publication>\
               </gradStudent></department>",
        )
        .unwrap()
    }

    #[test]
    fn valid_conditions_are_dropped() {
        let d = d1_department();
        // <publication/> under professor is guaranteed by D1; <journal/>
        // under publication is not.
        let q = normalize(
            &parse_query(
                "v = SELECT P WHERE <department> P:<professor> \
                   <publication><title/></publication> </professor> </>",
            )
            .unwrap(),
            &d,
        )
        .unwrap();
        let (s, stats) = simplify_query(&q, &d);
        assert_eq!(stats.dropped_valid, 1);
        assert!(s.pick_node().unwrap().children().is_empty());
        // answers unchanged
        let a = evaluate(&q, &dept());
        let b = evaluate(&s, &dept());
        assert!(mix_xml::same_structural_class(&a.root, &b.root));
    }

    #[test]
    fn non_valid_conditions_are_kept() {
        let d = d1_department();
        let q = normalize(
            &parse_query(
                "v = SELECT P WHERE <department> P:<professor> \
                   <publication><journal/></publication> </professor> </>",
            )
            .unwrap(),
            &d,
        )
        .unwrap();
        let (s, stats) = simplify_query(&q, &d);
        assert_eq!(stats.dropped_valid, 0);
        assert_eq!(s.pick_node().unwrap().children().len(), 1);
    }

    #[test]
    fn conditions_binding_needed_vars_are_kept() {
        let d = d1_department();
        // the publication conditions are needed for the != even though a
        // publication child is guaranteed
        let q = normalize(
            &parse_query(
                "v = SELECT P WHERE <department> P:<professor> \
                   <publication id=A/> <publication id=B/> </professor> </> AND A != B",
            )
            .unwrap(),
            &d,
        )
        .unwrap();
        let (s, stats) = simplify_query(&q, &d);
        assert_eq!(stats.dropped_valid, 0);
        assert_eq!(s.pick_node().unwrap().children().len(), 2);
    }

    #[test]
    fn dead_disjuncts_are_narrowed() {
        let d = d1_department();
        // teaches exists only under professor
        let q = normalize(
            &parse_query(
                "v = SELECT P WHERE <department> P:<professor | gradStudent> \
                   <teaches/> </> </>",
            )
            .unwrap(),
            &d,
        )
        .unwrap();
        let (s, stats) = simplify_query(&q, &d);
        assert_eq!(stats.narrowed_names, 1);
        assert_eq!(s.pick_node().unwrap().test.names(), &[name("professor")]);
        let a = evaluate(&q, &dept());
        let b = evaluate(&s, &dept());
        assert!(mix_xml::same_structural_class(&a.root, &b.root));
    }

    #[test]
    fn simplification_preserves_answers_on_random_workloads() {
        use mix_dtd::generate::{seeded_dtd, DtdGenConfig};
        use mix_dtd::sample::{sample_documents, DocConfig};
        use mix_xmas::gen::{random_query, QueryGenConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        for seed in 0..30u64 {
            let d = seeded_dtd(seed, &DtdGenConfig::default());
            let mut rng = StdRng::seed_from_u64(seed);
            let q = normalize(&random_query(&d, &mut rng, &QueryGenConfig::default()), &d).unwrap();
            let (s, _) = simplify_query(&q, &d);
            for doc in sample_documents(&d, 6, seed * 7, DocConfig::default()) {
                let a = evaluate(&q, &doc);
                let b = evaluate(&s, &doc);
                assert!(
                    mix_xml::same_structural_class(&a.root, &b.root),
                    "seed {seed}: simplification changed the answer\n\
                     original:\n{q}\nsimplified:\n{s}"
                );
            }
        }
    }
}
