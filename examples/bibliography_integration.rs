//! Multi-source integration with stacked mediators — the "mediators can
//! be stacked on top of mediators" scenario of Section 1: two department
//! sources, one lower mediator per department exporting a journal-paper
//! view, and an upper mediator whose source *is* a lower mediator's view
//! (with its inferred DTD).
//!
//! ```sh
//! cargo run --example bibliography_integration
//! ```

use mix::dtd::paper::d1_department;
use mix::prelude::*;
use mix::relang::symbol::name;
use std::sync::Arc;

fn dept(professors: &[(&str, &[&str])]) -> Document {
    let profs: String = professors
        .iter()
        .map(|(who, pubs)| {
            let pubs: String = pubs
                .iter()
                .map(|t| {
                    format!(
                        "<publication><title>{t}</title><author>{who}</author><journal/></publication>"
                    )
                })
                .collect();
            format!(
                "<professor><firstName>{who}</firstName><lastName>X</lastName>{pubs}<teaches/></professor>"
            )
        })
        .collect();
    parse_document(&format!(
        "<department><name>CS</name>{profs}\
         <gradStudent><firstName>g</firstName><lastName>Y</lastName>\
           <publication><title>thesis</title><author>g</author><conference/></publication>\
         </gradStudent></department>"
    ))
    .expect("synthesized department parses")
}

fn main() {
    // Two source departments with different contents, same schema (D1).
    let ucsd = dept(&[("yannis", &["Mediators", "MIX"]), ("victor", &["Views"])]);
    let stanford = dept(&[("jennifer", &["Lore", "DataGuides"])]);

    // One lower mediator per campus, each exporting a journal-papers view.
    let mut lower_ucsd = Mediator::new();
    lower_ucsd.add_source(
        "ucsd",
        Arc::new(XmlSource::new(d1_department(), ucsd).unwrap()),
    );
    let papers_view = parse_query(
        "papers = SELECT X WHERE <department> <professor | gradStudent> \
           X:<publication><journal/></publication> </> </>",
    )
    .unwrap();
    let v = lower_ucsd.register_view("ucsd", &papers_view).unwrap();
    println!("UCSD lower mediator view DTD:\n{}\n", v.inferred.dtd);

    let mut lower_stanford = Mediator::new();
    lower_stanford.add_source(
        "stanford",
        Arc::new(XmlSource::new(d1_department(), stanford).unwrap()),
    );
    lower_stanford
        .register_view("stanford", &papers_view)
        .unwrap();

    // The upper mediator treats each lower view as a source. Its view DTD
    // inference runs against the *inferred* lower view DTDs.
    let mut upper = Mediator::new();
    upper.add_source(
        "ucsd-papers",
        Arc::new(ViewWrapper::new(Arc::new(lower_ucsd), name("papers")).unwrap()),
    );
    upper.add_source(
        "stanford-papers",
        Arc::new(ViewWrapper::new(Arc::new(lower_stanford), name("papers")).unwrap()),
    );

    let titles_view =
        parse_query("titles = SELECT T WHERE <papers> <publication> T:<title/> </> </papers>")
            .unwrap();
    let tv = upper.register_view("ucsd-papers", &titles_view).unwrap();
    println!(
        "Upper mediator view DTD (inferred over a view DTD):\n{}\n",
        tv.inferred.dtd
    );

    // Query through both levels.
    let q = parse_query("ans = SELECT T WHERE <titles> T:<title/> </titles>").unwrap();
    let a = upper.query(&q).unwrap();
    let titles: Vec<&str> = a
        .document
        .root
        .children()
        .iter()
        .filter_map(|e| e.pcdata())
        .collect();
    println!("journal-paper titles at UCSD, via two mediator levels: {titles:?}");
    assert_eq!(titles, ["Mediators", "MIX", "Views"]);

    // Consolidation across sources, first class: a *union view* over both
    // campuses (the intro's "union the structures exported by N sites" —
    // now with an inferred DTD).
    let titles_view2 =
        parse_query("titles2 = SELECT T WHERE <papers> <publication> T:<title/> </> </papers>")
            .unwrap();
    let union = upper
        .register_union_view(
            "bibliography",
            &[
                ("ucsd-papers", titles_view2.clone()),
                ("stanford-papers", titles_view2),
            ],
        )
        .unwrap();
    println!(
        "Union view DTD (both campuses folded together):\n{}\n",
        union.inferred.dtd
    );
    let all = upper
        .materialize(mix::relang::name("bibliography"))
        .unwrap();
    let integrated: Vec<&str> = all
        .root
        .children()
        .iter()
        .filter_map(|e| e.pcdata())
        .collect();
    println!("Integrated bibliography: {integrated:?}");
    assert_eq!(
        integrated,
        ["Mediators", "MIX", "Views", "Lore", "DataGuides"]
    );
}
