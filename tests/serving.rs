//! The PR-2 serving layer, end to end: cached inference agrees with the
//! uncached pipeline up to language equivalence, batched `answer_many` is
//! indistinguishable from sequential serving (input order, bytes, and
//! degradation reports — including under seeded fault schedules), parallel
//! union materialization preserves registration order, and the inference
//! cache survives same-DTD source redeployments.

use mix::dtd::paper::{d11_department, d1_department, d9_professor};
use mix::prelude::*;
use mix::relang::equivalent_uncached;
use mix::xmas::paper::{q12_papers, q2_with_journals, q3_publist, q6_answer, q7_answer};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// fixtures
// ---------------------------------------------------------------------------

/// A D1-valid department whose professors carry the given first names —
/// distinguishable answers for order-preservation checks.
fn department_doc(profs: &[&str]) -> Document {
    let mut xml = String::from("<department><name>CS</name>");
    for p in profs {
        xml.push_str(&format!(
            "<professor><firstName>{p}</firstName><lastName>L</lastName>\
             <publication><title>t</title><author>a</author><journal/></publication>\
             <publication><title>u</title><author>a</author><journal/></publication>\
             <teaches/></professor>"
        ));
    }
    xml.push_str(
        "<gradStudent><firstName>g</firstName><lastName>L</lastName>\
         <publication><title>v</title><author>a</author><conference/></publication>\
         </gradStudent></department>",
    );
    parse_document(&xml).expect("department fixture parses")
}

fn q2_named(view: &str) -> Query {
    let mut q = q2_with_journals();
    q.view_name = name(view);
    q
}

/// Renders everything observable about one served answer, so two runs can
/// be compared byte-for-byte: the document, the execution path, and the
/// full degradation report (or the error).
fn render(a: &Result<Answer, MediatorError>) -> String {
    match a {
        Ok(ans) => format!(
            "path={:?} degradation={:?}\n{}",
            ans.path,
            ans.degradation,
            write_document(&ans.document, WriteConfig::default())
        ),
        Err(e) => format!("error: {e}"),
    }
}

// ---------------------------------------------------------------------------
// cached inference ≡ uncached pipeline (up to language equivalence)
// ---------------------------------------------------------------------------

fn assert_inferred_equivalent(case: &str, cached: &InferredView, direct: &InferredView) {
    assert_eq!(cached.verdict, direct.verdict, "{case}: verdict");
    assert_eq!(
        cached.merged_names, direct.merged_names,
        "{case}: merged names"
    );
    assert!(
        equivalent_uncached(&cached.list_type, &direct.list_type),
        "{case}: list types differ as languages"
    );
    for (n, model) in cached.dtd.types.iter() {
        let other = direct
            .dtd
            .types
            .get(n)
            .unwrap_or_else(|| panic!("{case}: merged DTD lost {n}"));
        assert_models_equivalent(case, model, other);
    }
    assert_eq!(
        cached.dtd.types.iter().count(),
        direct.dtd.types.iter().count(),
        "{case}: merged DTD name sets differ"
    );
    for (s, model) in cached.sdtd.types.iter() {
        let other = direct
            .sdtd
            .types
            .get(s)
            .unwrap_or_else(|| panic!("{case}: s-DTD lost {s}"));
        assert_models_equivalent(case, model, other);
    }
}

fn assert_models_equivalent(case: &str, a: &ContentModel, b: &ContentModel) {
    match (a, b) {
        (ContentModel::Pcdata, ContentModel::Pcdata) => {}
        (ContentModel::Elements(ra), ContentModel::Elements(rb)) => {
            assert!(
                equivalent_uncached(ra, rb),
                "{case}: content models differ as languages: {ra} vs {rb}"
            );
        }
        other => panic!("{case}: model kind mismatch: {other:?}"),
    }
}

#[test]
fn cached_inference_agrees_with_uncached_pipeline() {
    let pairings: Vec<(&str, Dtd, Query)> = vec![
        ("d1/q2", d1_department(), q2_with_journals()),
        ("d1/q3", d1_department(), q3_publist()),
        ("d11/q12", d11_department(), q12_papers()),
        ("d9/q6", d9_professor(), q6_answer()),
        ("d9/q7", d9_professor(), q7_answer()),
    ];
    let cache = InferenceCache::new();
    for (case, dtd, q) in &pairings {
        let direct = infer_view_dtd(q, dtd).expect("uncached pipeline infers");
        // first pass misses and populates; second pass must hit and still
        // agree — the cache may only change *where* the answer comes from.
        for pass in 0..2 {
            let cached = cache.infer(q, dtd).expect("cached pipeline infers");
            assert_inferred_equivalent(&format!("{case} pass {pass}"), &cached, &direct);
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, pairings.len() as u64);
    assert_eq!(stats.hits, pairings.len() as u64);
}

// ---------------------------------------------------------------------------
// answer_many: parallel ≡ sequential
// ---------------------------------------------------------------------------

/// One mediator with `n` independent seeded-faulty sources, one view per
/// source, and one batch query per view. Each source serves exactly one
/// query, so its injector sees the same call sequence under any thread
/// interleaving — the whole batch is deterministic by construction.
fn faulty_mediator(n: usize, rate: f64) -> (Mediator, Vec<Query>) {
    let mut m = Mediator::new();
    let mut batch = Vec::new();
    for i in 0..n {
        let doc = department_doc(&[&format!("p{i}a"), &format!("p{i}b")]);
        let source = XmlSource::new(d1_department(), doc).expect("valid source");
        let faulty = FaultInjector::seeded(Arc::new(source), 1000 + i as u64, rate);
        let site = format!("s{i}");
        m.add_source(&site, Arc::new(faulty));
        let view = q2_named(&format!("wj{i}"));
        m.register_view(&site, &view).expect("view registers");
        batch.push(
            parse_query(&format!(
                "b{i} = SELECT X WHERE <wj{i}> X:<professor/> </wj{i}>"
            ))
            .expect("batch query parses"),
        );
    }
    (m, batch)
}

#[test]
fn answer_many_parallel_matches_sequential_under_seeded_faults() {
    for rate in [0.0, 0.35] {
        // fresh, identically-built mediators: injector call counters and
        // breaker state are per-mediator, so each run starts from the same
        // world state.
        let (m_seq, batch) = faulty_mediator(6, rate);
        let (m_par, _) = faulty_mediator(6, rate);
        let sequential: Vec<String> = m_seq
            .answer_many_with_threads(&batch, 1)
            .iter()
            .map(render)
            .collect();
        let parallel: Vec<String> = m_par
            .answer_many_with_threads(&batch, 4)
            .iter()
            .map(render)
            .collect();
        assert_eq!(
            sequential, parallel,
            "parallel serving changed answers at fault rate {rate}"
        );
    }
}

#[test]
fn answer_many_preserves_input_order() {
    let (m, batch) = faulty_mediator(6, 0.0);
    let answers = m.answer_many_with_threads(&batch, 8);
    assert_eq!(answers.len(), batch.len());
    for (i, a) in answers.iter().enumerate() {
        let ans = a.as_ref().expect("clean batch answers");
        // slot i answers batch query b{i}: the result root carries the
        // query's head name, and the payload is that source's professors.
        assert_eq!(ans.document.root.name.as_str(), format!("b{i}"));
        let first = ans.document.root.children()[0].children()[0].pcdata();
        assert_eq!(first, Some(format!("p{i}a").as_str()));
    }
}

// ---------------------------------------------------------------------------
// parallel union materialization
// ---------------------------------------------------------------------------

fn union_mediator(faults: bool) -> Mediator {
    let mut m = Mediator::new();
    let parts: Vec<(String, Query)> = (0..3)
        .map(|i| {
            let doc = department_doc(&[&format!("u{i}")]);
            let source = XmlSource::new(d1_department(), doc).expect("valid source");
            let site = format!("u{i}");
            let wrapper: Arc<dyn Wrapper> = if faults {
                Arc::new(FaultInjector::seeded(Arc::new(source), 7 + i as u64, 0.4))
            } else {
                Arc::new(source)
            };
            m.add_source(&site, wrapper);
            (site, q2_with_journals())
        })
        .collect();
    let refs: Vec<(&str, Query)> = parts.iter().map(|(s, q)| (s.as_str(), q.clone())).collect();
    m.register_union_view("wjAll", &refs)
        .expect("union registers");
    m
}

#[test]
fn parallel_union_materialization_preserves_registration_order() {
    let m = union_mediator(false);
    let (doc, report) = m
        .materialize_with_report(name("wjAll"))
        .expect("union materializes");
    // members in registration order: u0's professor, then u1's, then u2's
    let firsts: Vec<&str> = doc
        .root
        .children()
        .iter()
        .map(|member| member.children()[0].pcdata().unwrap())
        .collect();
    assert_eq!(firsts, ["u0", "u1", "u2"]);
    assert!(report.is_clean());
    // and the parallel path is repeatable byte-for-byte
    let (again, _) = m.materialize_with_report(name("wjAll")).unwrap();
    assert_eq!(
        write_document(&doc, WriteConfig::default()),
        write_document(&again, WriteConfig::default())
    );
}

#[test]
fn union_degradation_is_deterministic_under_seeded_faults() {
    let run = || {
        let m = union_mediator(true);
        match m.materialize_with_report(name("wjAll")) {
            Ok((doc, report)) => format!(
                "report={report:?}\n{}",
                write_document(&doc, WriteConfig::default())
            ),
            Err(e) => format!("error: {e}"),
        }
    };
    assert_eq!(run(), run(), "seeded union degradation must replay exactly");
}

// ---------------------------------------------------------------------------
// cache lifecycle across source replacement
// ---------------------------------------------------------------------------

#[test]
fn replace_source_keeps_cache_for_identical_dtd_and_invalidates_on_change() {
    let mut m = Mediator::new();
    let source = XmlSource::new(d1_department(), department_doc(&["p"])).expect("valid");
    m.add_source("s", Arc::new(source));
    m.register_view("s", &q2_named("wj")).expect("registers");
    assert_eq!(m.serving_metrics().inference.entries, 1);

    // same DTD, new document: a redeployment. The cached inference is
    // still exactly right — re-registration is a pure cache hit.
    let redeploy = XmlSource::new(d1_department(), department_doc(&["q"])).expect("valid");
    let changed = m.replace_source("s", Arc::new(redeploy)).expect("replaces");
    assert!(changed.is_empty(), "same DTD cannot change any view DTD");
    let stats = m.serving_metrics().inference;
    assert_eq!(stats.invalidations, 0, "unchanged DTD must not invalidate");
    assert!(stats.hits >= 1, "re-inference must be served from cache");
    assert_eq!(stats.entries, 1);

    // a real schema change: the D1 entries are orphaned and re-inference
    // records an invalidation plus a fresh miss against D11.
    let moved = XmlSource::new(
        d11_department(),
        parse_document(
            "<department><name>CS</name>\
             <professor><firstName>p</firstName><lastName>L</lastName>\
             <publication><title>t</title><author>a</author><journal/></publication>\
             <publication><title>u</title><author>a</author><journal/></publication>\
             <teaches/></professor>\
             <gradStudent><firstName>g</firstName><lastName>L</lastName></gradStudent>\
             </department>",
        )
        .expect("parses"),
    )
    .expect("valid under D11");
    m.replace_source("s", Arc::new(moved)).expect("replaces");
    let stats = m.serving_metrics().inference;
    assert!(stats.invalidations >= 1, "changed DTD must invalidate");
    assert_eq!(stats.entries, 1, "only the fresh D11 inference remains");
}

// ---------------------------------------------------------------------------
// answer_many under simulated source latency actually overlaps waits
// ---------------------------------------------------------------------------

#[test]
fn answer_many_overlaps_source_latency() {
    let mut m = Mediator::new();
    let mut batch = Vec::new();
    for i in 0..4 {
        let source = XmlSource::new(d1_department(), department_doc(&["p"])).expect("valid");
        let slow = LatencyWrapper::new(source, Duration::from_millis(25));
        let site = format!("s{i}");
        m.add_source(&site, Arc::new(slow));
        m.register_view(&site, &q2_named(&format!("wj{i}")))
            .expect("registers");
        batch.push(
            parse_query(&format!(
                "b{i} = SELECT X WHERE <wj{i}> X:<professor/> </wj{i}>"
            ))
            .expect("parses"),
        );
    }
    let t = std::time::Instant::now();
    let seq = m.answer_many_with_threads(&batch, 1);
    let sequential = t.elapsed();
    let t = std::time::Instant::now();
    let par = m.answer_many_with_threads(&batch, 4);
    let parallel = t.elapsed();
    assert!(seq.iter().all(Result::is_ok));
    let a: Vec<String> = seq.iter().map(render).collect();
    let b: Vec<String> = par.iter().map(render).collect();
    assert_eq!(a, b);
    // four 25 ms waits overlapped across four workers: even with generous
    // scheduler slop the parallel batch must beat the sequential one.
    assert!(
        parallel < sequential,
        "parallel {parallel:?} not faster than sequential {sequential:?}"
    );
}
