//! Satellite tier for the pipelined wire protocol (DESIGN.md §13):
//! many `Query` frames in flight per connection, answered out of order.
//!
//! The server's worker pool finishes queries in whatever order their
//! service times dictate, so with randomized per-query delays the wire
//! carries answers genuinely reordered relative to their requests. The
//! properties here pin the two matching contracts that make that safe:
//!
//! 1. every `Answer` lands on the caller whose `frame_id` it carries —
//!    an id mix-up would hand one caller another's (differently-tagged)
//!    echo, which the asserts would catch immediately;
//! 2. batch issue (`Pool::request_many`, and above it
//!    `Mediator::answer_many`) returns results **in input order**
//!    regardless of completion order.

use mix::net::{Msg, Pool, WireFault, WireService};
use mix::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const SITE_DTD: &str = "{<site : entry*> <entry : PCDATA>}";

/// Echoes the tag of a `"<delay_ms>|<tag>"` query after sleeping
/// `delay_ms` — the delay is the chaos: it randomizes completion order
/// across the server's worker pool.
struct DelayEcho;

impl WireService for DelayEcho {
    fn export_dtd(&self) -> String {
        SITE_DTD.into()
    }

    fn answer(&self, query: Option<&str>) -> Result<String, WireFault> {
        let (delay, tag) = query
            .and_then(|q| q.split_once('|'))
            .unwrap_or(("0", "fetch"));
        let ms: u64 = delay.parse().unwrap_or(0);
        if ms > 0 {
            std::thread::sleep(Duration::from_millis(ms));
        }
        Ok(format!("<echo>{tag}</echo>"))
    }
}

fn spawn_echo() -> ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        Arc::new(DelayEcho),
        ServerConfig {
            workers: 4,
            io_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback")
    .spawn()
    .expect("spawn echo daemon")
}

fn client_config(pool_size: usize, in_flight: usize) -> ClientConfig {
    ClientConfig {
        pool_size,
        in_flight_per_conn: in_flight,
        io_timeout: Duration::from_secs(10),
        ..ClientConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// K concurrent callers share a small fixed connection set; each
    /// caller's answer must echo *its own* tag, whatever order the
    /// randomized delays complete in.
    #[test]
    fn every_answer_lands_on_its_own_frame_id(
        delays in prop::collection::vec(0u64..20, 4..16),
        pool_size in 1usize..3,
    ) {
        let daemon = spawn_echo();
        let pool = Pool::new(
            daemon.addr().to_string(),
            client_config(pool_size, 8),
        );
        std::thread::scope(|scope| {
            for (i, d) in delays.iter().enumerate() {
                let pool = &pool;
                scope.spawn(move || {
                    let reply = pool
                        .request(Msg::Query(format!("{d}|t{i}")))
                        .expect("pipelined echo");
                    assert_eq!(
                        reply,
                        Msg::Answer(format!("<echo>t{i}</echo>")),
                        "caller {i} received an answer for a different frame id"
                    );
                });
            }
        });
        daemon.shutdown();
    }

    /// `Pool::request_many` issues the whole batch down the multiplexed
    /// connections and returns replies in input order, not completion
    /// order.
    #[test]
    fn request_many_is_order_preserving_under_random_delays(
        delays in prop::collection::vec(0u64..20, 1..24),
    ) {
        let daemon = spawn_echo();
        let pool = Pool::new(daemon.addr().to_string(), client_config(2, 4));
        let batch: Vec<Msg> = delays
            .iter()
            .enumerate()
            .map(|(i, d)| Msg::Query(format!("{d}|t{i}")))
            .collect();
        let replies = pool.request_many(batch);
        prop_assert_eq!(replies.len(), delays.len());
        for (i, reply) in replies.into_iter().enumerate() {
            let reply = reply.expect("echo reply");
            prop_assert_eq!(
                reply,
                Msg::Answer(format!("<echo>t{i}</echo>")),
                "slot {} holds an out-of-order reply",
                i
            );
        }
        daemon.shutdown();
    }
}

// ---------------------------------------------------------------------------
// The answer_many boundary: batched mediation over remote sources must
// return per-query results in input order, byte-identical to the
// sequential path.
// ---------------------------------------------------------------------------

fn site_source(tag: &str, entries: usize) -> XmlSource {
    let body: String = (0..entries)
        .map(|i| format!("<entry>{tag}{i}</entry>"))
        .collect();
    XmlSource::new(
        parse_compact(SITE_DTD).unwrap(),
        parse_document(&format!("<site>{body}</site>")).unwrap(),
    )
    .unwrap()
}

fn spawn_site(tag: &str, entries: usize) -> ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        Arc::new(WrapperService::new(site_source(tag, entries))),
        ServerConfig::default(),
    )
    .expect("bind loopback")
    .spawn()
    .expect("spawn daemon")
}

/// The per-member query a union view sends each source (rooted at the
/// source's `<site>` document type).
fn member_query() -> Query {
    parse_query("m = SELECT X WHERE <site> X:<entry/> </site>").unwrap()
}

/// A top-level query addressing `view` (the mediator routes by the root
/// element test).
fn view_query(view: &str) -> Query {
    parse_query(&format!(
        "q_{view} = SELECT X WHERE <{view}> X:<entry/> </{view}>"
    ))
    .unwrap()
}

/// Three remote sources under three union views with *different* member
/// sets, so every view has distinguishable answer bytes — a batch whose
/// results came back permuted could not pass.
#[test]
fn answer_many_over_remote_sources_is_order_preserving_and_byte_identical() {
    let daemons: Vec<ServerHandle> = [("alpha", 2), ("beta", 3), ("gamma", 4)]
        .iter()
        .map(|&(tag, n)| spawn_site(tag, n))
        .collect();
    let mut m = Mediator::new();
    for (daemon, name) in daemons.iter().zip(["alpha", "beta", "gamma"]) {
        m.add_source(
            name,
            Arc::new(RemoteWrapper::connect(&daemon.addr().to_string()).expect("daemon reachable")),
        );
    }
    m.register_union_view("ab", &[("alpha", member_query()), ("beta", member_query())])
        .expect("ab registers");
    m.register_union_view("bc", &[("beta", member_query()), ("gamma", member_query())])
        .expect("bc registers");
    m.register_union_view(
        "all",
        &[
            ("alpha", member_query()),
            ("beta", member_query()),
            ("gamma", member_query()),
        ],
    )
    .expect("all registers");

    // an interleaved batch hitting every view several times
    let views = ["ab", "bc", "all", "bc", "ab", "all", "ab", "bc"];
    let batch: Vec<Query> = views.iter().map(|v| view_query(v)).collect();

    let sequential: Vec<String> = batch
        .iter()
        .map(|q| render(&m.query(q).expect("sequential answer").document))
        .collect();
    // the three views genuinely differ, so permutations are detectable
    assert_ne!(sequential[0], sequential[1]);
    assert_ne!(sequential[1], sequential[2]);
    assert_ne!(sequential[0], sequential[2]);

    let batched = m.answer_many(&batch);
    assert_eq!(batched.len(), batch.len());
    for (i, result) in batched.into_iter().enumerate() {
        let answer = result.expect("batched answer");
        assert_eq!(
            render(&answer.document),
            sequential[i],
            "batch slot {i} (view '{}') diverged from the sequential path",
            views[i]
        );
    }

    for d in daemons {
        d.shutdown();
    }
}

/// One remote source contributing *twice* to a union: both member
/// queries produce byte-identical reply text over the same
/// `RemoteWrapper`, so the second answer is served from its parse memo as
/// a clone of the first (the warm-up below makes that deterministic even
/// though members materialize in parallel). Element ids thread through
/// binding and diseq semantics, so memoized clones must be
/// indistinguishable from independent parses end to end: the union keeps
/// both copies' members and the final answer stays id-unique. (The
/// disjoint-ids contract itself is pinned by a `RemoteWrapper` unit
/// test.)
#[test]
fn union_of_byte_identical_members_keeps_both_copies() {
    let daemon = spawn_site("twin", 3);
    let remote =
        Arc::new(RemoteWrapper::connect(&daemon.addr().to_string()).expect("daemon reachable"));
    // warm the parse memo so both (parallel) member calls below are
    // served as clones of the same memoized parse
    remote.answer(&member_query()).expect("warm-up answer");
    let mut m = Mediator::new();
    m.add_source("alpha", Arc::clone(&remote) as Arc<dyn Wrapper>);
    m.register_union_view(
        "both",
        &[("alpha", member_query()), ("alpha", member_query())],
    )
    .expect("view registers");
    let answer = m.query(&view_query("both")).expect("union answer").document;
    let entries = answer
        .root
        .walk()
        .filter(|e| e.name.as_str() == "entry")
        .count();
    assert_eq!(
        entries, 6,
        "expected the member's 3 entries twice; id-sharing clones were deduplicated"
    );
    assert!(
        answer.duplicate_id().is_none(),
        "the glued union answer must not contain duplicate element ids"
    );
    daemon.shutdown();
}

fn render(doc: &Document) -> String {
    write_document(doc, WriteConfig::default())
}
