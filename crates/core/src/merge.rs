//! Algorithm Merge (Section 4.3): convert an s-DTD to a plain DTD by
//! taking images of all types and unioning the definitions that collapse
//! onto the same name — signalling the collapse, "since merging
//! inadvertently introduces non-tightness".

use mix_dtd::{ContentModel, Dtd, SDtd};
use mix_relang::ast::Regex;
use mix_relang::symbol::Name;
use mix_relang::{image_cached, simplify};

/// Result of [`merge`].
#[derive(Debug, Clone)]
pub struct Merged {
    /// The resulting plain DTD (types simplified).
    pub dtd: Dtd,
    /// Names whose specializations were merged — the user-facing
    /// non-tightness signal.
    pub merged_names: Vec<Name>,
}

/// Converts `sd` into a plain DTD (Algorithm Merge).
pub fn merge(sd: &SDtd) -> Merged {
    let mut dtd = Dtd::new(sd.doc_type.name);
    let mut merged_names = Vec::new();
    for (sym, model) in sd.types.iter() {
        let n = sym.name;
        let image = match model {
            ContentModel::Pcdata => ContentModel::Pcdata,
            // tighten already computed these images; the pool remembers
            ContentModel::Elements(r) => ContentModel::Elements(image_cached(r)),
        };
        match dtd.types.get(n) {
            None => {
                dtd.types.insert(n, image);
            }
            Some(existing) => {
                // signal the merge
                if !merged_names.contains(&n) {
                    merged_names.push(n);
                }
                let unioned = match (existing, &image) {
                    (ContentModel::Pcdata, ContentModel::Pcdata) => ContentModel::Pcdata,
                    (ContentModel::Elements(a), ContentModel::Elements(b)) => {
                        ContentModel::Elements(Regex::alt([a.clone(), b.clone()]))
                    }
                    // PCDATA and element content cannot be unioned in a
                    // DTD; fall back to the element side (strictly looser
                    // outcomes are flagged through `merged_names`).
                    (ContentModel::Elements(a), ContentModel::Pcdata) => {
                        ContentModel::Elements(a.clone())
                    }
                    (ContentModel::Pcdata, ContentModel::Elements(b)) => {
                        ContentModel::Elements(b.clone())
                    }
                };
                dtd.types.insert(n, unioned);
            }
        }
    }
    // simplify every type (Example 4.3's "can be simplified to (D2)" step)
    let names: Vec<Name> = dtd.types.keys().collect();
    for n in names {
        if let Some(ContentModel::Elements(r)) = dtd.types.get(n) {
            let s = simplify(r);
            dtd.types.insert(n, ContentModel::Elements(s));
        }
    }
    // sort lexicographically, not by intern index: the index depends on
    // interning order and would differ from process to process
    merged_names.sort_by_key(|n| n.as_str());
    Merged { dtd, merged_names }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_dtd::parse::parse_compact_sdtd;
    use mix_relang::symbol::name;
    use mix_relang::{equivalent, parse_regex};

    #[test]
    fn example_4_3_merge_d4_to_d2() {
        // D4 (Example 3.4) → merged → simplified: professor requires ≥2
        // publications, the journal constraint is lost, and the merge is
        // signalled on `publication`.
        let d4 = parse_compact_sdtd(
            "{<withJournals : professor*, gradStudent*>\
              <professor : firstName, lastName, publication*, publication^1, \
                           publication*, publication^2, publication*, teaches>\
              <gradStudent : firstName, lastName, publication*, publication^1, \
                           publication*, publication^2, publication*>\
              <publication : title, author+, (journal | conference)>\
              <publication^1 : title, author+, journal>\
              <publication^2 : title, author+, journal>\
              <teaches : EMPTY> <journal : EMPTY> <conference : EMPTY>}",
        )
        .unwrap();
        let m = merge(&d4);
        assert_eq!(m.merged_names, vec![name("publication")]);
        let prof = m.dtd.get(name("professor")).unwrap().regex().unwrap();
        assert!(
            equivalent(
                prof,
                &parse_regex(
                    "firstName, lastName, publication, publication, publication*, teaches"
                )
                .unwrap()
            ),
            "professor merged to {prof}"
        );
        // the publication type is the union of the two images
        let publ = m.dtd.get(name("publication")).unwrap().regex().unwrap();
        assert!(equivalent(
            publ,
            &parse_regex("title, author+, (journal | conference)").unwrap()
        ));
        // the simplifier renders the "at least two" constraint compactly
        assert_eq!(
            prof.to_string(),
            "firstName, lastName, publication, publication+, teaches"
        );
    }

    #[test]
    fn no_merge_for_single_specializations() {
        let sd = parse_compact_sdtd("{<v : a*> <a : PCDATA>}").unwrap();
        let m = merge(&sd);
        assert!(m.merged_names.is_empty());
        assert_eq!(m.dtd.doc_type, name("v"));
    }

    #[test]
    fn equivalent_specializations_still_signal() {
        let sd = parse_compact_sdtd("{<v : a^1, a> <a : b?> <a^1 : b?> <b : EMPTY>}").unwrap();
        let m = merge(&sd);
        assert_eq!(m.merged_names, vec![name("a")]);
        let a = m.dtd.get(name("a")).unwrap().regex().unwrap();
        assert!(equivalent(a, &parse_regex("b?").unwrap()));
    }

    #[test]
    fn root_type_image_drops_tags() {
        let sd = parse_compact_sdtd("{<v : p^1, p^2> <p^1 : PCDATA> <p^2 : PCDATA>}").unwrap();
        let m = merge(&sd);
        let v = m.dtd.get(name("v")).unwrap().regex().unwrap();
        assert!(equivalent(v, &parse_regex("p, p").unwrap()));
        assert_eq!(m.merged_names, vec![name("p")]);
    }
}
