//! The regular-expression AST used for DTD content models.
//!
//! A DTD type (Definition 2.2) is a regular expression over element names;
//! an s-DTD type (Definition 3.8) is a *tagged* regular expression over
//! tagged names. Both are represented by [`Regex`], whose leaves are
//! [`Sym`]s (an untagged name is `n^0`).
//!
//! All construction goes through the smart constructors ([`Regex::concat`],
//! [`Regex::alt`], …) which enforce the invariant that [`Regex::Empty`]
//! (the paper's `fail`, the empty language) only ever appears as the
//! top-level node, and that `Concat`/`Alt` are flattened and never unary.

use crate::symbol::{Name, Sym, Tag};
use std::collections::BTreeSet;
use std::fmt;

/// A regular expression over tagged element names.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// The empty language — the paper's `fail`.
    Empty,
    /// The empty sequence `ε`.
    Epsilon,
    /// A single (tagged) name.
    Sym(Sym),
    /// Concatenation `r1, r2, …` (always ≥ 2 entries, none `Epsilon`/`Empty`,
    /// none itself a `Concat`).
    Concat(Vec<Regex>),
    /// Union `r1 | r2 | …` (always ≥ 2 entries, none `Empty`, none itself an
    /// `Alt`).
    Alt(Vec<Regex>),
    /// Kleene closure `r*`.
    Star(Box<Regex>),
    /// `r+ = r, r*`.
    Plus(Box<Regex>),
    /// `r? = r | ε`.
    Opt(Box<Regex>),
}

impl Regex {
    /// A single untagged name.
    pub fn name(n: Name) -> Regex {
        Regex::Sym(n.untagged())
    }

    /// A single tagged name.
    pub fn sym(s: Sym) -> Regex {
        Regex::Sym(s)
    }

    /// Smart concatenation: flattens, drops `ε`, propagates `Empty`.
    pub fn concat(parts: impl IntoIterator<Item = Regex>) -> Regex {
        let mut out: Vec<Regex> = Vec::new();
        for p in parts {
            match p {
                Regex::Empty => return Regex::Empty,
                Regex::Epsilon => {}
                Regex::Concat(v) => out.extend(v),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Epsilon,
            1 => out.pop().expect("len checked"),
            _ => Regex::Concat(out),
        }
    }

    /// Smart union: flattens, drops `Empty`, deduplicates structurally, and
    /// canonicalizes an `ε` branch into `?` (`r | ε` becomes `r?`).
    ///
    /// This is the paper's `∥` operator extended to n-ary unions: a union
    /// with every branch `fail` is `fail`; `fail` branches are absorbed.
    pub fn alt(parts: impl IntoIterator<Item = Regex>) -> Regex {
        let mut out: Vec<Regex> = Vec::new();
        let mut has_epsilon = false;
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Epsilon => has_epsilon = true,
                Regex::Alt(v) => {
                    for x in v {
                        if !out.contains(&x) {
                            out.push(x);
                        }
                    }
                }
                other => {
                    if !out.contains(&other) {
                        out.push(other);
                    }
                }
            }
        }
        let core = match out.len() {
            0 => {
                return if has_epsilon {
                    Regex::Epsilon
                } else {
                    Regex::Empty
                }
            }
            1 => out.pop().expect("len checked"),
            _ => Regex::Alt(out),
        };
        if has_epsilon {
            Regex::opt(core)
        } else {
            core
        }
    }

    /// Smart Kleene star.
    pub fn star(r: Regex) -> Regex {
        match r {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            Regex::Star(inner) => Regex::Star(inner),
            Regex::Plus(inner) | Regex::Opt(inner) => Regex::Star(inner),
            other => Regex::Star(Box::new(other)),
        }
    }

    /// Smart `+`.
    pub fn plus(r: Regex) -> Regex {
        match r {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Star(inner) => Regex::Star(inner),
            Regex::Plus(inner) => Regex::Plus(inner),
            Regex::Opt(inner) => Regex::Star(inner),
            other => Regex::Plus(Box::new(other)),
        }
    }

    /// Smart `?`.
    pub fn opt(r: Regex) -> Regex {
        match r {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            Regex::Star(inner) => Regex::Star(inner),
            Regex::Plus(inner) => Regex::Star(inner),
            Regex::Opt(inner) => Regex::Opt(inner),
            other => Regex::Opt(Box::new(other)),
        }
    }

    /// Binary concatenation convenience.
    pub fn then(self, other: Regex) -> Regex {
        Regex::concat([self, other])
    }

    /// Binary union convenience.
    pub fn or(self, other: Regex) -> Regex {
        Regex::alt([self, other])
    }

    /// Whether this regex *is* the empty language.
    ///
    /// Because smart constructors propagate `Empty`, the check is structural.
    pub fn is_empty_lang(&self) -> bool {
        matches!(self, Regex::Empty)
    }

    /// The paper's *nullable* test: does `L(r)` contain the empty sequence?
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Sym(_) => false,
            Regex::Epsilon | Regex::Star(_) | Regex::Opt(_) => true,
            Regex::Concat(v) => v.iter().all(Regex::nullable),
            Regex::Alt(v) => v.iter().any(Regex::nullable),
            Regex::Plus(r) => r.nullable(),
        }
    }

    /// All symbols occurring in the regex, in sorted order.
    pub fn syms(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        self.collect_syms(&mut out);
        out
    }

    fn collect_syms(&self, out: &mut BTreeSet<Sym>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Sym(s) => {
                out.insert(*s);
            }
            Regex::Concat(v) | Regex::Alt(v) => {
                for r in v {
                    r.collect_syms(out);
                }
            }
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) => r.collect_syms(out),
        }
    }

    /// All distinct *names* (tag projected out) occurring in the regex.
    pub fn names(&self) -> BTreeSet<Name> {
        self.syms().into_iter().map(Sym::image).collect()
    }

    /// Distinct symbols in first-appearance (left-to-right) order — used
    /// for human-oriented DTD displays.
    pub fn syms_in_order(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        fn walk(r: &Regex, out: &mut Vec<Sym>) {
            match r {
                Regex::Empty | Regex::Epsilon => {}
                Regex::Sym(s) => {
                    if !out.contains(s) {
                        out.push(*s);
                    }
                }
                Regex::Concat(v) | Regex::Alt(v) => {
                    for x in v {
                        walk(x, out);
                    }
                }
                Regex::Star(x) | Regex::Plus(x) | Regex::Opt(x) => walk(x, out),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Whether `s` occurs as a leaf.
    pub fn contains_sym(&self, s: Sym) -> bool {
        match self {
            Regex::Empty | Regex::Epsilon => false,
            Regex::Sym(x) => *x == s,
            Regex::Concat(v) | Regex::Alt(v) => v.iter().any(|r| r.contains_sym(s)),
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) => r.contains_sym(s),
        }
    }

    /// Rebuilds the regex with every leaf replaced by `f(leaf)`.
    ///
    /// Used for the *image* operation (drop tags, Definition 3.9) and for
    /// the *one-level extension* substitution (Definition 4.3).
    pub fn map_syms(&self, f: &mut impl FnMut(Sym) -> Regex) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Sym(s) => f(*s),
            Regex::Concat(v) => Regex::concat(v.iter().map(|r| r.map_syms(f))),
            Regex::Alt(v) => Regex::alt(v.iter().map(|r| r.map_syms(f))),
            Regex::Star(r) => Regex::star(r.map_syms(f)),
            Regex::Plus(r) => Regex::plus(r.map_syms(f)),
            Regex::Opt(r) => Regex::opt(r.map_syms(f)),
        }
    }

    /// The image of a tagged regular expression: every `n^T` becomes `n^0`
    /// (Definition 3.9).
    pub fn image(&self) -> Regex {
        self.map_syms(&mut |s| Regex::Sym(s.name.untagged()))
    }

    /// Replaces every occurrence of name `n` (any tag) with `n^t`.
    pub fn retag_name(&self, n: Name, t: Tag) -> Regex {
        self.map_syms(&mut |s| {
            if s.name == n {
                Regex::Sym(n.tagged(t))
            } else {
                Regex::Sym(s)
            }
        })
    }

    /// Number of AST nodes — used to bound simplification work.
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Sym(_) => 1,
            Regex::Concat(v) | Regex::Alt(v) => 1 + v.iter().map(Regex::size).sum::<usize>(),
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) => 1 + r.size(),
        }
    }

    /// A regex matching exactly the given word.
    pub fn word(w: &[Sym]) -> Regex {
        Regex::concat(w.iter().map(|&s| Regex::Sym(s)))
    }
}

impl fmt::Debug for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    fn a() -> Regex {
        Regex::Sym(sym("a"))
    }
    fn b() -> Regex {
        Regex::Sym(sym("b"))
    }

    #[test]
    fn concat_unit_laws() {
        assert_eq!(Regex::concat([Regex::Epsilon, a()]), a());
        assert_eq!(Regex::concat([a(), Regex::Epsilon]), a());
        assert_eq!(Regex::concat([] as [Regex; 0]), Regex::Epsilon);
        assert_eq!(Regex::concat([Regex::Empty, a()]), Regex::Empty);
    }

    #[test]
    fn concat_flattens() {
        let r = Regex::concat([a().then(b()), a()]);
        match r {
            Regex::Concat(v) => assert_eq!(v.len(), 3),
            other => panic!("expected flat concat, got {other:?}"),
        }
    }

    #[test]
    fn alt_absorbs_empty_and_dedups() {
        assert_eq!(Regex::alt([Regex::Empty, a()]), a());
        assert_eq!(Regex::alt([a(), a()]), a());
        assert_eq!(Regex::alt([] as [Regex; 0]), Regex::Empty);
        let r = Regex::alt([a().or(b()), a()]);
        match r {
            Regex::Alt(v) => assert_eq!(v.len(), 2),
            other => panic!("expected 2-way alt, got {other:?}"),
        }
    }

    #[test]
    fn star_collapses() {
        assert_eq!(Regex::star(Regex::Epsilon), Regex::Epsilon);
        assert_eq!(Regex::star(Regex::Empty), Regex::Epsilon);
        assert_eq!(Regex::star(Regex::star(a())), Regex::star(a()));
        assert_eq!(Regex::star(Regex::plus(a())), Regex::star(a()));
        assert_eq!(Regex::star(Regex::opt(a())), Regex::star(a()));
    }

    #[test]
    fn plus_opt_collapse() {
        assert_eq!(Regex::plus(Regex::opt(a())), Regex::star(a()));
        assert_eq!(Regex::opt(Regex::plus(a())), Regex::star(a()));
        assert_eq!(Regex::plus(Regex::star(a())), Regex::star(a()));
        assert_eq!(Regex::opt(Regex::opt(a())), Regex::opt(a()));
        assert_eq!(Regex::plus(Regex::Empty), Regex::Empty);
        assert_eq!(Regex::opt(Regex::Empty), Regex::Epsilon);
    }

    #[test]
    fn nullable_cases() {
        assert!(Regex::Epsilon.nullable());
        assert!(!a().nullable());
        assert!(Regex::star(a()).nullable());
        assert!(!Regex::plus(a()).nullable());
        assert!(Regex::opt(a()).nullable());
        assert!(!a().then(Regex::star(b())).nullable());
        assert!(Regex::opt(a()).then(Regex::star(b())).nullable());
        assert!(a().or(Regex::Epsilon).nullable());
    }

    #[test]
    fn image_drops_tags() {
        let n = crate::symbol::name("j");
        let r = Regex::sym(n.tagged(2)).then(Regex::name(n));
        let img = r.image();
        assert_eq!(img, Regex::name(n).then(Regex::name(n)));
    }

    #[test]
    fn syms_and_names() {
        let n = crate::symbol::name("x");
        let r = Regex::sym(n.tagged(1)).or(Regex::name(n));
        assert_eq!(r.syms().len(), 2);
        assert_eq!(r.names().len(), 1);
    }

    #[test]
    fn empty_never_nested() {
        // Smart constructors must keep Empty at top level only.
        let r = Regex::alt([
            Regex::concat([a(), Regex::Empty]),
            Regex::star(Regex::Empty),
        ]);
        // concat propagated Empty; star(Empty) = Epsilon; alt absorbs Empty.
        assert_eq!(r, Regex::Epsilon);
    }
}
