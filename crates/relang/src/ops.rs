//! Language-level operations on regexes: membership, emptiness, inclusion,
//! equivalence, and counting. These are the decision procedures behind the
//! paper's tightness notions (Definitions 3.2–3.4).

use crate::ast::Regex;
use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::pool::{self, ReId};
use crate::symbol::Sym;

/// Does `word ∈ L(r)`?
pub fn matches(r: &Regex, word: &[Sym]) -> bool {
    Nfa::from_regex(r).accepts(word)
}

/// Is `L(r)` empty?
///
/// Thanks to smart-constructor normalization this is structural, but we keep
/// a defensive automaton fallback for regexes built by other means.
pub fn language_is_empty(r: &Regex) -> bool {
    if r.is_empty_lang() {
        return true;
    }
    Dfa::from_regex(r).language_is_empty()
}

/// The sorted union of the symbols of `a` and `b` — the alphabet both
/// automata must share for product constructions to be meaningful.
pub fn shared_alphabet(a: &Regex, b: &Regex) -> Vec<Sym> {
    let mut alpha: Vec<Sym> = a.syms().into_iter().collect();
    for s in b.syms() {
        if !alpha.contains(&s) {
            alpha.push(s);
        }
    }
    alpha.sort();
    alpha
}

/// Is `L(a) ⊆ L(b)` — i.e. is the type `a` *tighter than* the type `b`
/// (Definition 3.3)?
///
/// ```
/// use mix_relang::{parse_regex, is_subset};
/// let refined = parse_regex("p, p, p*").unwrap();
/// let original = parse_regex("p+").unwrap();
/// assert!(is_subset(&refined, &original));
/// assert!(!is_subset(&original, &refined));
/// ```
pub fn is_subset(a: &Regex, b: &Regex) -> bool {
    crate::memo::memoized_subset(a, b)
}

/// Is `L(a) ⊆ L(b)`, computed directly without touching the process-wide
/// memo tables. The property tests use this as the ground truth the
/// memoized path is checked against.
pub fn is_subset_uncached(a: &Regex, b: &Regex) -> bool {
    if a.is_empty_lang() {
        return true;
    }
    let alpha = shared_alphabet(a, b);
    let da = Dfa::from_nfa(&Nfa::from_regex(a), &alpha);
    let db = Dfa::from_nfa(&Nfa::from_regex(b), &alpha);
    da.product(&db.complement()).language_is_empty()
}

/// Is `L(a) = L(b)`?
pub fn equivalent(a: &Regex, b: &Regex) -> bool {
    is_subset(a, b) && is_subset(b, a)
}

/// Is `L(a) = L(b)`, bypassing the memo tables (see [`is_subset_uncached`])?
pub fn equivalent_uncached(a: &Regex, b: &Regex) -> bool {
    is_subset_uncached(a, b) && is_subset_uncached(b, a)
}

/// Is `L(a) ⊆ L(b)`, for pool-interned ids ([`crate::pool`]). The memo
/// probe hashes two `u32`s; `a == b` is a free structural fast path.
pub fn is_subset_id(a: ReId, b: ReId) -> bool {
    crate::memo::memoized_subset_id(a, b)
}

/// Is `L(a) = L(b)`, for pool-interned ids?
pub fn equivalent_id(a: ReId, b: ReId) -> bool {
    a == b || (is_subset_id(a, b) && is_subset_id(b, a))
}

/// The image (tag-erasure, Definition 3.8) of `r`, memoized in the regex
/// pool so repeated tightness checks against the same specialized type
/// don't re-walk it. Falls back to [`Regex::image`] in boxed-baseline
/// mode.
pub fn image_cached(r: &Regex) -> Regex {
    if pool::boxed_baseline() {
        return r.image();
    }
    pool::to_regex(pool::image_id(pool::intern(r)))
}

/// Applies a symbol substitution through the pool (shared subterms are
/// rewritten once). Falls back to the boxed [`Regex::map_syms`] in
/// boxed-baseline mode. The substitution must map symbols to symbols —
/// the retag/rename loops in the mediator core are exactly that shape.
pub fn map_syms_cached(r: &Regex, f: &mut impl FnMut(Sym) -> Sym) -> Regex {
    if pool::boxed_baseline() {
        return r.map_syms(&mut |s| Regex::Sym(f(s)));
    }
    let id = pool::map_syms_id(pool::intern(r), &mut |s| pool::sym_id(f(s)));
    pool::to_regex(id)
}

/// Is `L(a) ⊊ L(b)`?
pub fn is_proper_subset(a: &Regex, b: &Regex) -> bool {
    is_subset(a, b) && !is_subset(b, a)
}

/// Counts the words of `L(r)` of each length `0..=max_len` (saturating).
pub fn count_words_by_len(r: &Regex, max_len: usize) -> Vec<u128> {
    Dfa::from_regex(r).count_words_by_len(max_len)
}

/// Total number of words of length ≤ `max_len` (saturating).
pub fn count_words_upto(r: &Regex, max_len: usize) -> u128 {
    count_words_by_len(r, max_len)
        .into_iter()
        .fold(0u128, |a, b| a.saturating_add(b))
}

/// Enumerates up to `cap` words of length ≤ `max_len`.
pub fn enumerate_words(r: &Regex, max_len: usize, cap: usize) -> Vec<Vec<Sym>> {
    Dfa::from_regex(r).enumerate_words(max_len, cap)
}

/// Length of the shortest word in `L(r)`, or `None` if the language is
/// empty. Used by the document sampler to steer generation toward finite
/// documents.
pub fn min_word_len(r: &Regex) -> Option<usize> {
    match r {
        Regex::Empty => None,
        Regex::Epsilon => Some(0),
        Regex::Sym(_) => Some(1),
        Regex::Concat(v) => {
            let mut total = 0usize;
            for x in v {
                total += min_word_len(x)?;
            }
            Some(total)
        }
        Regex::Alt(v) => v.iter().filter_map(min_word_len).min(),
        Regex::Star(_) | Regex::Opt(_) => Some(0),
        Regex::Plus(x) => min_word_len(x),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;
    use crate::symbol::sym;

    fn r(s: &str) -> Regex {
        parse_regex(s).unwrap()
    }

    #[test]
    fn subset_basics() {
        assert!(is_subset(&r("a"), &r("a | b")));
        assert!(!is_subset(&r("a | b"), &r("a")));
        assert!(is_subset(&r("a, a"), &r("a*")));
        assert!(is_subset(&r("a+"), &r("a*")));
        assert!(!is_subset(&r("a*"), &r("a+")));
    }

    #[test]
    fn subset_with_disjoint_alphabets() {
        assert!(!is_subset(&r("a"), &r("b")));
        assert!(is_subset(&Regex::Empty, &r("b")));
    }

    #[test]
    fn equivalence_laws() {
        assert!(equivalent(&r("(a, b) | (a, c)"), &r("a, (b | c)")));
        assert!(equivalent(&r("a*, a"), &r("a+")));
        assert!(equivalent(&r("a*, a*"), &r("a*")));
        assert!(equivalent(&r("(a | b)*"), &r("(a*, b*)*")));
        assert!(!equivalent(&r("a?"), &r("a+")));
    }

    #[test]
    fn paper_example_3_1_refinement_is_tighter() {
        // publication+ refined to "at least two" is a proper subset.
        let refined = r("publication, publication, publication*");
        let original = r("publication+");
        assert!(is_proper_subset(&refined, &original));
    }

    #[test]
    fn paper_t6_t7_t8_chain_is_strictly_decreasing() {
        // Example 3.5: (prolog | conclusion)* is less tight than
        // prolog, (prolog | conclusion)*, conclusion, etc. We model T6 ⊋ T7 ⊋ T8
        // as progressively constrained sequences of the recursive view.
        let t6 = r("(prolog | conclusion)*");
        let t7 = r("(prolog, (prolog | conclusion)*, conclusion)?");
        let t8 = r("(prolog, (prolog, (prolog | conclusion)*, conclusion)?, conclusion)?");
        assert!(is_proper_subset(&t7, &t6));
        assert!(is_proper_subset(&t8, &t7));
    }

    #[test]
    fn counting() {
        assert_eq!(count_words_upto(&r("a?"), 4), 2);
        assert_eq!(count_words_upto(&r("(a | b)*"), 3), 1 + 2 + 4 + 8);
        assert_eq!(count_words_upto(&Regex::Empty, 5), 0);
    }

    #[test]
    fn min_word_lengths() {
        assert_eq!(min_word_len(&r("a, b, c")), Some(3));
        assert_eq!(min_word_len(&r("a*")), Some(0));
        assert_eq!(min_word_len(&r("a+ | b")), Some(1));
        assert_eq!(min_word_len(&Regex::Empty), None);
        assert_eq!(min_word_len(&r("(a, b)+ | c?")), Some(0));
    }

    #[test]
    fn matches_and_enumerate_agree() {
        let re = r("title, author+, (journal | conference)");
        for w in enumerate_words(&re, 4, 1000) {
            assert!(matches(&re, &w));
        }
        assert_eq!(
            enumerate_words(&re, 3, 1000).len(),
            2 // title author journal | title author conference
        );
    }

    #[test]
    fn tagged_inclusion_respects_tags() {
        let a = r("j^1");
        let b = r("j");
        assert!(!is_subset(&a, &b));
        assert!(is_subset(&a.image(), &b));
    }

    #[test]
    fn empty_language_via_automaton() {
        // A regex that is empty but not structurally `Empty` cannot be built
        // through smart constructors; emulate via product check instead.
        assert!(language_is_empty(&Regex::Empty));
        assert!(!language_is_empty(&r("a?")));
        let _ = sym("unused");
    }
}
