//! Property tier for the satisfiability analyzer (the PR 10 soundness
//! contract): `Unsat` is a *proof*, never a guess. A query the analyzer
//! would prune returns the empty view on every document conforming to
//! the source DTD, and a pruning federation answers byte-identically to
//! an unpruned one while spending zero fetches on its `Unsat` members.

use mix::dtd::generate::{seeded_dtd, DtdGenConfig};
use mix::dtd::sample::{DocConfig, DocSampler};
use mix::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn doc_cfg() -> DocConfig {
    DocConfig {
        max_nodes: 60,
        ..DocConfig::default()
    }
}

// -- the federation.rs harness, with fetch counting -------------------------

const SITE_DTD: &str = "{<site : entry*> <entry : PCDATA>}";

fn site_doc(tag: &str, entries: usize) -> Document {
    let body: String = (0..entries)
        .map(|i| format!("<entry>{tag}{i}</entry>"))
        .collect();
    parse_document(&format!("<site>{body}</site>")).unwrap()
}

/// An [`XmlSource`] that counts its fetches, so a test can prove a
/// pruned member never touched the source.
struct CountingSource {
    inner: XmlSource,
    fetches: Arc<AtomicUsize>,
}

impl CountingSource {
    fn new(tag: &str, entries: usize) -> (CountingSource, Arc<AtomicUsize>) {
        let fetches = Arc::new(AtomicUsize::new(0));
        let inner = XmlSource::new(parse_compact(SITE_DTD).unwrap(), site_doc(tag, entries))
            .expect("site doc validates");
        (
            CountingSource {
                inner,
                fetches: Arc::clone(&fetches),
            },
            fetches,
        )
    }
}

impl Wrapper for CountingSource {
    fn dtd(&self) -> &Dtd {
        self.inner.dtd()
    }

    fn fetch(&self) -> Result<Document, SourceError> {
        self.fetches.fetch_add(1, Ordering::SeqCst);
        self.inner.fetch()
    }
}

/// The satisfiable member query of the federation harness.
fn sat_query() -> Query {
    parse_query("all = SELECT X WHERE <site> X:<entry/> </site>").unwrap()
}

/// Provably unsatisfiable against the site DTD: `<entry>` is PCDATA, so
/// a child step under it never matches.
fn unsat_query() -> Query {
    parse_query("all = SELECT X WHERE <site> <entry> X:<deep/> </entry> </site>").unwrap()
}

/// Builds a federated union mediator over counted site sources; member
/// `i` gets the unsatisfiable query iff `unsat[i]`.
fn counted_union(
    config: ProcessorConfig,
    registry: Registry,
    members: &[(usize, bool)],
) -> (Mediator, Vec<Arc<AtomicUsize>>) {
    let mut m = Mediator::with_registry(config, registry);
    let mut counters = Vec::new();
    let mut parts = Vec::new();
    for (i, &(entries, is_unsat)) in members.iter().enumerate() {
        let site = format!("site{i}");
        let (source, fetches) = CountingSource::new(&site, entries);
        m.add_source(&site, Arc::new(source));
        counters.push(fetches);
        parts.push((site, if is_unsat { unsat_query() } else { sat_query() }));
    }
    let refs: Vec<(&str, Query)> = parts.iter().map(|(s, q)| (s.as_str(), q.clone())).collect();
    m.register_union_view("all", &refs)
        .expect("union registers");
    (m, counters)
}

fn render(doc: &Document) -> String {
    write_document(doc, WriteConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness of `Unsat` against random DTDs: queries generated for
    /// one DTD are checked against another (cross-pairing makes `Unsat`
    /// common — root mismatches, absent tags), and whenever the analyzer
    /// says `Unsat`, the naive evaluator returns the empty view on every
    /// sampled conforming document.
    #[test]
    fn unsat_means_empty_on_every_conforming_document(
        home_seed in 0u64..200,
        target_seed in 0u64..200,
        q_seed in 0u64..500,
    ) {
        let home = seeded_dtd(home_seed, &DtdGenConfig::default());
        let target = seeded_dtd(target_seed, &DtdGenConfig::default());
        let mut rng = StdRng::seed_from_u64(q_seed);
        let q = mix::xmas::gen::random_query(&home, &mut rng, &mix::xmas::gen::QueryGenConfig::default());
        let verdict = check_sat(&q, &target);
        if !verdict.is_unsat() {
            return;
        }
        // an `Unsat` whose query does not even normalize (e.g. X != X)
        // never reaches an evaluator; the claim is vacuous there
        let Ok(nq) = normalize(&q, &target) else { return };
        let sampler = DocSampler::new(&target, doc_cfg()).expect("generator guarantees docs");
        for _ in 0..12 {
            let doc = sampler.sample(&mut rng);
            let view = evaluate(&nq, &doc);
            prop_assert!(
                view.root.children().is_empty(),
                "UNSOUND prune (home_seed={home_seed}, target_seed={target_seed}, \
                 q_seed={q_seed}): {verdict}\nquery:\n{q}\ndoc:\n{}\nview:\n{}",
                render(&doc),
                render(&view),
            );
        }
    }

    /// The memoized verdict agrees with the direct one — the cache layer
    /// (which the mediators and wrappers actually call) never changes an
    /// answer, only its cost.
    #[test]
    fn memoized_verdicts_agree_with_direct_checks(
        home_seed in 0u64..120,
        target_seed in 0u64..120,
        q_seed in 0u64..300,
    ) {
        let home = seeded_dtd(home_seed, &DtdGenConfig::default());
        let target = seeded_dtd(target_seed, &DtdGenConfig::default());
        let mut rng = StdRng::seed_from_u64(q_seed);
        let q = mix::xmas::gen::random_query(&home, &mut rng, &mix::xmas::gen::QueryGenConfig::default());
        let direct = check_sat(&q, &target);
        let cache = SatCache::new();
        prop_assert_eq!(cache.verdict(&q, &target), direct.clone());
        // and a second (now cached) lookup is stable
        prop_assert_eq!(cache.verdict(&q, &target), direct);
    }

    /// A pruning federation answers byte-identically to an unpruned one
    /// over any member mix, its report stays clean, every `Unsat` member
    /// costs zero fetches, and `sat_pruned_total` counts exactly them.
    #[test]
    fn pruned_federation_is_byte_identical_to_unpruned(
        // each code packs (entry count, unsat?): entries = code % 4,
        // the member gets the unsatisfiable query iff code >= 4
        codes in prop::collection::vec(0usize..8, 1..6),
    ) {
        let members: Vec<(usize, bool)> =
            codes.iter().map(|&c| (c % 4, c >= 4)).collect();
        let registry = Registry::new();
        let (pruned, pruned_fetches) =
            counted_union(ProcessorConfig::default(), registry.clone(), &members);
        let (reference, reference_fetches) = counted_union(
            ProcessorConfig { use_sat_pruning: false, ..ProcessorConfig::default() },
            Registry::new(),
            &members,
        );

        let (ref_doc, ref_report) = reference.materialize_with_report(name("all")).unwrap();
        let (doc, report) = pruned.materialize_with_report(name("all")).unwrap();

        prop_assert_eq!(render(&doc), render(&ref_doc), "pruning changed the answer bytes");
        prop_assert!(report.is_clean(), "a pruned member must not look degraded: {}", report);
        prop_assert!(ref_report.is_clean());

        let unsat_members = members.iter().filter(|&&(_, u)| u).count() as u64;
        for (i, &(_, is_unsat)) in members.iter().enumerate() {
            let fetched = pruned_fetches[i].load(Ordering::SeqCst);
            if is_unsat {
                prop_assert_eq!(fetched, 0, "Unsat member {} was fetched", i);
            } else {
                prop_assert_eq!(fetched, reference_fetches[i].load(Ordering::SeqCst),
                    "Sat member {} fetch count diverged", i);
            }
        }
        prop_assert_eq!(
            registry.snapshot().counters.get("sat_pruned_total").copied().unwrap_or(0),
            unsat_members,
            "sat_pruned_total must count exactly the skipped members"
        );
    }
}
