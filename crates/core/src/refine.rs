//! The type-refinement algorithm of Section 4.1.
//!
//! `refine(r, n)` rewrites a content-model regex into one describing
//! exactly the sequences of `L(r)` that contain at least one occurrence of
//! `n` — with that witness occurrence *retagged* as `n^T` so later
//! refinements (for a different condition on the same name, Example 4.2)
//! must pick a *different* occurrence.
//!
//! The paper's special operators `⊗` and `∥` extend concatenation and
//! union with a `fail` value; in this codebase `fail` is [`Regex::Empty`]
//! and the smart constructors [`Regex::concat`] / [`Regex::alt`] implement
//! exactly the `⊗` / `∥` propagation rules, so the algorithm reads off the
//! paper nearly verbatim.

use mix_relang::ast::Regex;
use mix_relang::pool::{self, ReId, ReNode};
use mix_relang::symbol::{Name, Tag};

/// `refine(r, {n₁|…|n_k}^T)`: all sequences of `L(r)` containing at least
/// one *untagged* occurrence of some `nᵢ`, with the witness occurrence
/// retagged to `nᵢ^T`.
///
/// Generalizes the paper's single-name refinement to the disjunctive name
/// tests of pick-element queries (`professor | gradStudent`). With
/// `tag = 0` the witness keeps its name untagged (plain DTD refinement, as
/// in Example 4.1).
///
/// Returns [`Regex::Empty`] — the paper's `fail` — when no sequence
/// qualifies.
///
/// ```
/// use mix_infer::refine::refine1;
/// use mix_relang::{parse_regex, equivalent, name};
/// // Example 4.1: refine((n,(j|c)*), j) = n, (j|c)*, j, (j|c)*
/// let r = parse_regex("n, (j | c)*").unwrap();
/// let refined = refine1(&r, name("j"), 0);
/// assert!(equivalent(&refined, &parse_regex("n, (j | c)*, j, (j | c)*").unwrap()));
/// ```
pub fn refine(r: &Regex, names: &[Name], tag: Tag) -> Regex {
    if pool::boxed_baseline() {
        return refine_boxed(r, names, tag);
    }
    pool::to_regex(refine_id(pool::intern(r), names, tag))
}

/// [`refine`] over pool ids — the hot path. The `Concat` case of the
/// boxed algorithm clones every sibling once per branch (O(n²) child
/// copies); here siblings are `Copy` ids and shared subterms are
/// rewritten once per distinct node.
pub fn refine_id(r: ReId, names: &[Name], tag: Tag) -> ReId {
    match pool::node(r) {
        ReNode::Empty | ReNode::Epsilon => ReId::EMPTY,
        ReNode::Sym(s) => {
            if s.tag == 0 && names.contains(&s.name) {
                pool::sym_id(s.name.tagged(tag))
            } else {
                ReId::EMPTY
            }
        }
        ReNode::Concat(v) => pool::alt_ids(
            (0..v.len())
                .map(|i| {
                    pool::concat_ids(
                        v.iter()
                            .enumerate()
                            .map(|(j, &x)| if i == j { refine_id(x, names, tag) } else { x })
                            .collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>(),
        ),
        ReNode::Alt(v) => pool::alt_ids(
            v.iter()
                .map(|&x| refine_id(x, names, tag))
                .collect::<Vec<_>>(),
        ),
        ReNode::Star(g) | ReNode::Plus(g) => {
            pool::concat_ids([pool::star_id(g), refine_id(g, names, tag), pool::star_id(g)])
        }
        ReNode::Opt(g) => refine_id(g, names, tag),
    }
}

/// The seed boxed implementation, kept verbatim as the benchmark
/// baseline (see [`mix_relang::set_boxed_baseline`]).
fn refine_boxed(r: &Regex, names: &[Name], tag: Tag) -> Regex {
    match r {
        Regex::Empty | Regex::Epsilon => Regex::Empty,
        Regex::Sym(s) => {
            // Base cases: an untagged occurrence of a requested name is the
            // witness; everything else fails (Definition 4.2's tagged base
            // case — occurrences claimed by an earlier condition, i.e.
            // already tagged, cannot be re-used).
            if s.tag == 0 && names.contains(&s.name) {
                Regex::Sym(s.name.tagged(tag))
            } else {
                Regex::Empty
            }
        }
        Regex::Concat(v) => {
            // (refine(r1), r2, …) ∥ (r1, refine(r2), …) ∥ …
            Regex::alt((0..v.len()).map(|i| {
                Regex::concat(v.iter().enumerate().map(|(j, x)| {
                    if i == j {
                        refine(x, names, tag)
                    } else {
                        x.clone()
                    }
                }))
            }))
        }
        Regex::Alt(v) => Regex::alt(v.iter().map(|x| refine(x, names, tag))),
        Regex::Star(g) => {
            // g* ⊗ refine(g) ⊗ g*
            Regex::concat([
                Regex::star((**g).clone()),
                refine(g, names, tag),
                Regex::star((**g).clone()),
            ])
        }
        Regex::Plus(g) => {
            // r+ = r, r*; the witness iteration makes the "+" implicit.
            Regex::concat([
                Regex::star((**g).clone()),
                refine(g, names, tag),
                Regex::star((**g).clone()),
            ])
        }
        Regex::Opt(g) => {
            // refine(g) ∥ fail = refine(g): the option must be taken.
            refine(g, names, tag)
        }
    }
}

/// Single-name convenience wrapper.
pub fn refine1(r: &Regex, n: Name, tag: Tag) -> Regex {
    refine(r, &[n], tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_relang::symbol::name;
    use mix_relang::{equivalent, is_subset, matches, parse_regex};

    fn r(s: &str) -> Regex {
        parse_regex(s).unwrap()
    }

    #[test]
    fn example_4_1_professor_journal() {
        // refine(n,(j|c)*, j) = n, (j|c)*, j, (j|c)*
        let out = refine1(&r("n, (j | c)*"), name("j"), 0);
        assert!(
            equivalent(&out, &r("n, (j | c)*, j, (j | c)*")),
            "got {out}"
        );
    }

    #[test]
    fn example_4_2_two_tagged_journals() {
        // First refinement with j^1, then j^2: the two witnesses must be
        // distinct occurrences; the result is the union of interleavings.
        let step1 = refine1(&r("n, (j | c)*"), name("j"), 1);
        assert!(equivalent(&step1.image(), &r("n, (j | c)*, j, (j | c)*")));
        let step2 = refine1(&step1, name("j"), 2);
        assert!(!step2.is_empty_lang());
        // Image: sequences with at least two j's.
        assert!(equivalent(
            &step2.image(),
            &r("n, (j | c)*, j, (j | c)*, j, (j | c)*")
        ));
        // And the tagged witnesses appear in both orders.
        let j1 = name("j").tagged(1);
        let j2 = name("j").tagged(2);
        let n = name("n").untagged();
        assert!(matches(&step2, &[n, j1, j2]));
        assert!(matches(&step2, &[n, j2, j1]));
        assert!(matches(&step2, &[n, j2, name("c").untagged(), j1]));
        assert!(!matches(&step2, &[n, j1]));
    }

    #[test]
    fn refinement_is_the_containing_sublanguage() {
        // For untagged refinement: L(refine(r, n)) = {w ∈ L(r) : n ∈ w}.
        for (src, n) in [
            ("a*", "a"),
            ("(a | b)*", "b"),
            ("a?, b, c*", "c"),
            ("title, author+, (journal | conference)", "journal"),
            ("(a, b)+", "a"),
        ] {
            let re = r(src);
            let out = refine1(&re, name(n), 0);
            assert!(is_subset(&out, &re), "refine({src},{n}) ⊆ {src}");
            // every word of `out` contains n; checked via: out ∩ "no n" = ∅
            for w in mix_relang::enumerate_words(&out, 5, 200) {
                assert!(
                    w.iter().any(|s| s.name == name(n)),
                    "word {w:?} of refine({src},{n}) lacks {n}"
                );
            }
            // every word of `re` containing n is kept
            for w in mix_relang::enumerate_words(&re, 5, 200) {
                if w.iter().any(|s| s.name == name(n)) {
                    assert!(matches(&out, &w), "lost word {w:?} of {src}");
                }
            }
        }
    }

    #[test]
    fn fail_cases() {
        assert!(refine1(&r("a, b"), name("z"), 0).is_empty_lang());
        assert!(refine1(&Regex::Epsilon, name("a"), 0).is_empty_lang());
        assert!(refine1(&Regex::Empty, name("a"), 0).is_empty_lang());
        // opt must be taken: refine(a?, a) = a (not a?)
        let out = refine1(&r("a?"), name("a"), 0);
        assert!(equivalent(&out, &r("a")));
    }

    #[test]
    fn disjunctive_name_test() {
        // refine with {professor, gradStudent} on a department-like model
        let out = refine(
            &r("name, professor*, gradStudent*"),
            &[name("professor"), name("gradStudent")],
            7,
        );
        assert!(!out.is_empty_lang());
        // image = words with at least one professor or gradStudent
        let img = out.image();
        assert!(matches(
            &img,
            &[name("name").untagged(), name("professor").untagged()]
        ));
        assert!(matches(
            &img,
            &[name("name").untagged(), name("gradStudent").untagged()]
        ));
        assert!(!matches(&img, &[name("name").untagged()]));
        // the witness is tagged with 7
        assert!(matches(
            &out,
            &[name("name").untagged(), name("professor").tagged(7)]
        ));
    }

    #[test]
    fn tagged_occurrences_are_not_reusable() {
        // r = j^1 alone: no untagged j left to refine.
        let out = refine1(&r("j^1"), name("j"), 2);
        assert!(out.is_empty_lang());
        // r = j^1, j: only the second occurrence can be the witness.
        let out = refine1(&r("j^1, j"), name("j"), 2);
        let j1 = name("j").tagged(1);
        let j2 = name("j").tagged(2);
        assert!(matches(&out, &[j1, j2]));
        assert!(!matches(&out, &[j2, j1]));
    }

    #[test]
    fn plus_keeps_at_least_one_iteration() {
        let out = refine1(&r("(a, b)+"), name("a"), 0);
        assert!(equivalent(&out, &r("(a, b)+")));
        // b-only? impossible: every iteration has an a — refine is valid here.
    }

    #[test]
    fn star_refinement_forces_an_iteration() {
        let out = refine1(&r("(a | b)*"), name("a"), 0);
        assert!(!matches(&out, &[]));
        assert!(!matches(&out, &[mix_relang::sym("b")]));
        assert!(matches(&out, &[mix_relang::sym("b"), mix_relang::sym("a")]));
    }
}
