//! The [`Registry`]: owner of all instruments, spans, and events.
//!
//! A registry handle is an `Option<Arc<…>>` — cloning is one refcount
//! bump, and the **no-op** registry ([`Registry::noop`]) is `None` all
//! the way down: no allocation, every operation a single branch. That is
//! the zero-cost-when-disabled contract the X17 bench measures.
//!
//! Instrument handles ([`Counter`], [`Gauge`], [`Histogram`]) are looked
//! up (or created) under a short registry mutex **once**, then held by
//! the instrumented object; the hot path touches only the shared atomic.
//! Metric names follow the Prometheus convention (`snake_case`, unit
//! suffix, `_total` for counters) and may carry a label set inline:
//! `source_retries_total{source="site0"}`.

use crate::clock::Clock;
use crate::event::{EventRing, EVENT_RING_CAPACITY};
use crate::hist::HistCore;
use crate::snapshot::{EventSnapshot, HistSnapshot, Snapshot};
use crate::span::{self, SpanRing, TraceScope, SPAN_RING_CAPACITY};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

struct Inner {
    clock: Clock,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistCore>>>,
    spans: SpanRing,
    events: EventRing,
    next_trace: AtomicU64,
}

/// A cloneable handle to one observability domain (or a no-op).
#[derive(Clone)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::noop()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Registry {
    fn with_clock(clock: Clock) -> Registry {
        Registry {
            inner: Some(Arc::new(Inner {
                clock,
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                spans: SpanRing::new(SPAN_RING_CAPACITY),
                events: EventRing::new(EVENT_RING_CAPACITY),
                next_trace: AtomicU64::new(1),
            })),
        }
    }

    /// An enabled registry on the real (monotonic) clock.
    pub fn new() -> Registry {
        Registry::with_clock(Clock::real())
    }

    /// An enabled registry on a manual clock starting at 0 ns — every
    /// timestamp is then deterministic (the golden exposition uses this).
    pub fn with_manual_clock() -> Registry {
        Registry::with_clock(Clock::manual())
    }

    /// The no-op registry: records nothing, allocates nothing.
    pub fn noop() -> Registry {
        Registry { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current registry-clock time in nanoseconds (0 when no-op).
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_ns())
    }

    /// Advances a manual clock; ignored on a real clock or no-op.
    pub fn advance_clock_ns(&self, delta: u64) {
        if let Some(i) = &self.inner {
            i.clock.advance_ns(delta);
        }
    }

    /// The counter named `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.counters
                    .lock()
                    .unwrap()
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// The gauge named `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.gauges
                    .lock()
                    .unwrap()
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// The histogram named `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram {
            core: self.inner.as_ref().map(|i| {
                Arc::clone(
                    i.histograms
                        .lock()
                        .unwrap()
                        .entry(name.to_string())
                        .or_insert_with(|| Arc::new(HistCore::new())),
                )
            }),
            registry: self.clone(),
        }
    }

    /// Allocates a fresh trace id and installs it as this thread's
    /// current trace until the guard drops. Spans recorded meanwhile
    /// (on this thread, or on workers that [`span::set_current_trace`]
    /// the returned id) belong to this trace.
    pub fn begin_trace(&self) -> (u64, TraceScope) {
        match &self.inner {
            None => (0, span::set_current_trace(span::current_trace())),
            Some(i) => {
                let id = i.next_trace.fetch_add(1, Relaxed);
                (id, span::set_current_trace(id))
            }
        }
    }

    /// Opens a span for `stage` on the current trace; it is recorded
    /// with its duration when the guard drops.
    pub fn span(&self, stage: &str) -> SpanGuard {
        SpanGuard {
            inner: self.inner.as_ref().map(|i| OpenSpan {
                registry: Arc::clone(i),
                stage: i.spans.intern(stage),
                trace: span::current_trace(),
                start_ns: i.clock.now_ns(),
            }),
        }
    }

    /// Records a completed span directly (for pre-measured durations).
    pub fn record_span(&self, stage: &str, trace: u64, start_ns: u64, dur_ns: u64) {
        if let Some(i) = &self.inner {
            let stage = i.spans.intern(stage);
            i.spans.record(trace, stage, start_ns, dur_ns);
        }
    }

    /// Appends a timestamped event (kept in a small capped ring).
    pub fn event(&self, kind: &str, detail: impl Into<String>) {
        if let Some(i) = &self.inner {
            i.events.push(EventSnapshot {
                at_ns: i.clock.now_ns(),
                kind: kind.to_string(),
                detail: detail.into(),
            });
        }
    }

    /// Exports everything as plain data. Empty for a no-op registry.
    /// `obs_spans_dropped_total` / `obs_events_dropped_total` counters
    /// appear when the rings have overflowed.
    pub fn snapshot(&self) -> Snapshot {
        let Some(i) = &self.inner else {
            return Snapshot::default();
        };
        let mut snap = Snapshot::default();
        for (name, c) in i.counters.lock().unwrap().iter() {
            snap.counters.insert(name.clone(), c.load(Relaxed));
        }
        for (name, g) in i.gauges.lock().unwrap().iter() {
            snap.gauges.insert(name.clone(), g.load(Relaxed));
        }
        for (name, h) in i.histograms.lock().unwrap().iter() {
            let buckets: Vec<(u64, u64)> = h
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(idx, b)| {
                    let n = b.load(Relaxed);
                    (n > 0).then(|| (crate::hist::bucket_le(idx), n))
                })
                .collect();
            snap.histograms.insert(
                name.clone(),
                HistSnapshot::from_parts(buckets, h.sum.load(Relaxed)),
            );
        }
        snap.spans = i.spans.snapshot();
        let spans_dropped = i.spans.total().saturating_sub(snap.spans.len() as u64);
        if spans_dropped > 0 {
            snap.counters
                .insert("obs_spans_dropped_total".into(), spans_dropped);
        }
        let (events, events_dropped) = i.events.snapshot();
        snap.events = events;
        if events_dropped > 0 {
            snap.counters
                .insert("obs_events_dropped_total".into(), events_dropped);
        }
        snap
    }
}

/// A monotonic count. Cloneable; all clones share the same cell.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached counter that records nothing.
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Relaxed);
        }
    }

    /// The current count (0 when no-op).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Relaxed))
    }
}

/// An instantaneous level. Cloneable; all clones share the same cell.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A detached gauge that records nothing.
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Relaxed);
        }
    }

    /// Adjusts the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(delta, Relaxed);
        }
    }

    /// The current level (0 when no-op).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Relaxed))
    }
}

/// A log₂-bucketed distribution (see [`crate::hist`]).
#[derive(Clone)]
pub struct Histogram {
    core: Option<Arc<HistCore>>,
    registry: Registry,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::noop()
    }
}

impl Histogram {
    /// A detached histogram that records nothing.
    pub fn noop() -> Histogram {
        Histogram {
            core: None,
            registry: Registry::noop(),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        if let Some(core) = &self.core {
            core.observe(value);
        }
    }

    /// Starts timing on the registry clock; the elapsed nanoseconds are
    /// recorded when the returned timer drops (or [`HistTimer::stop`]s).
    pub fn start(&self) -> HistTimer {
        HistTimer {
            hist: self.core.is_some().then(|| self.clone()),
            start_ns: self.registry.now_ns(),
        }
    }
}

/// Times one operation against a [`Histogram`].
#[must_use = "the duration is recorded when this timer drops"]
pub struct HistTimer {
    hist: Option<Histogram>,
    start_ns: u64,
}

impl HistTimer {
    /// Records now and returns the measured duration in nanoseconds.
    pub fn stop(mut self) -> u64 {
        self.finish()
    }

    fn finish(&mut self) -> u64 {
        match self.hist.take() {
            None => 0,
            Some(h) => {
                let dur = h.registry.now_ns().saturating_sub(self.start_ns);
                h.observe(dur);
                dur
            }
        }
    }
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        self.finish();
    }
}

struct OpenSpan {
    registry: Arc<Inner>,
    stage: u64,
    trace: u64,
    start_ns: u64,
}

/// An open pipeline stage; recorded into the span ring on drop.
#[must_use = "the span is recorded when this guard drops"]
pub struct SpanGuard {
    inner: Option<OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.inner.take() {
            let dur = open.registry.clock.now_ns().saturating_sub(open.start_ns);
            open.registry
                .spans
                .record(open.trace, open.stage, open.start_ns, dur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_and_survive_reregistration() {
        let reg = Registry::new();
        let a = reg.counter("hits_total");
        let b = reg.counter("hits_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.snapshot().counters["hits_total"], 3);
    }

    #[test]
    fn noop_registry_records_nothing() {
        let reg = Registry::noop();
        assert!(!reg.is_enabled());
        let c = reg.counter("x_total");
        c.inc();
        assert_eq!(c.get(), 0);
        reg.gauge("g").set(9);
        reg.histogram("h").observe(5);
        reg.event("k", "d");
        let (id, _scope) = reg.begin_trace();
        assert_eq!(id, 0);
        drop(reg.span("stage"));
        assert_eq!(reg.snapshot(), Snapshot::default());
    }

    #[test]
    fn manual_clock_drives_timers_spans_and_events() {
        let reg = Registry::with_manual_clock();
        let h = reg.histogram("latency_ns");
        let t = h.start();
        reg.advance_clock_ns(1000);
        assert_eq!(t.stop(), 1000);

        let (trace, _scope) = reg.begin_trace();
        let span = reg.span("query");
        reg.advance_clock_ns(500);
        drop(span);
        reg.event("done", "all good");

        let snap = reg.snapshot();
        assert_eq!(snap.histograms["latency_ns"].count, 1);
        assert_eq!(snap.histograms["latency_ns"].sum, 1000);
        assert_eq!(snap.histograms["latency_ns"].p50, 1023);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].trace, trace);
        assert_eq!(snap.spans[0].stage, "query");
        assert_eq!(snap.spans[0].start_ns, 1000);
        assert_eq!(snap.spans[0].dur_ns, 500);
        assert_eq!(snap.events[0].at_ns, 1500);
        assert_eq!(snap.events[0].kind, "done");
    }

    #[test]
    fn trace_ids_are_fresh_and_scoped() {
        let reg = Registry::new();
        let (a, scope_a) = reg.begin_trace();
        assert_eq!(span::current_trace(), a);
        let (b, scope_b) = reg.begin_trace();
        assert!(b > a);
        assert_eq!(span::current_trace(), b);
        drop(scope_b);
        assert_eq!(span::current_trace(), a);
        drop(scope_a);
        assert_eq!(span::current_trace(), 0);
    }

    #[test]
    fn dropped_span_and_event_counts_surface_in_snapshots() {
        let reg = Registry::with_manual_clock();
        for i in 0..(SPAN_RING_CAPACITY as u64 + 7) {
            reg.record_span("s", 0, i, 1);
        }
        for i in 0..(EVENT_RING_CAPACITY + 3) {
            reg.event("e", format!("{i}"));
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counters["obs_spans_dropped_total"], 7);
        assert_eq!(snap.counters["obs_events_dropped_total"], 3);
        assert_eq!(snap.spans.len(), SPAN_RING_CAPACITY);
        assert_eq!(snap.events.len(), EVENT_RING_CAPACITY);
    }

    #[test]
    fn eight_thread_hammer_never_loses_counts() {
        let reg = Registry::new();
        let c = reg.counter("hammer_total");
        let h = reg.histogram("hammer_ns");
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.observe((t as u64) * PER_THREAD + i);
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
        let snap = reg.snapshot();
        assert_eq!(
            snap.histograms["hammer_ns"].count,
            THREADS as u64 * PER_THREAD
        );
    }
}
